//! Span-tree capture: a causal, per-thread execution trace.
//!
//! The flat [`crate::trace`] sink answers *how long* each named region
//! took (every span feeds the metrics timer of the same name). This
//! module answers *why* and *on which thread*: while a capture is
//! active, every span records a begin/end event pair — with a
//! process-unique span ID, a logical parent link, and the dense index
//! of the recording thread — into a lock-free-to-contend per-thread
//! segment buffer. [`capture_take`] drains the buffers into a
//! [`SpanTrace`], which serializes to two formats:
//!
//! * **JSONL** ([`SpanTrace::to_jsonl`]) — one self-describing JSON
//!   object per completed span, parseable line-by-line with
//!   [`crate::json`], consistent with the stderr event sink's
//!   one-object-per-line convention;
//! * **Chrome Trace Event JSON** ([`SpanTrace::to_chrome`]) — loadable
//!   in Perfetto or `chrome://tracing`, with balanced `ph:"B"`/`"E"`
//!   pairs per thread and the span ID/parent carried in `args` so the
//!   file round-trips losslessly through [`SpanTrace::from_chrome`].
//!
//! Parent links are *logical*, not positional: a span opened on a rayon
//! worker under an adopted [`crate::trace::TraceContext`] records the
//! context's span as its parent even though that parent lives on a
//! different OS thread. The Chrome writer therefore distinguishes the
//! logical tree (carried in `args`) from the per-thread *stack* nesting
//! (the B/E bracketing, computed from the nearest same-thread logical
//! ancestor), which is what the timeline UI renders.
//!
//! Analysis helpers ([`SpanTrace::self_time`], [`SpanTrace::folded`],
//! [`SpanTrace::critical_paths`]) back the `hotwire trace` subcommand.
//!
//! Everything that records is behind the `telemetry` feature; the data
//! model, writers, parsers, and analysis are feature-independent so a
//! no-telemetry build can still *read* traces produced elsewhere.

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;

/// One completed span in a captured trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span ID (assigned at begin; never 0).
    pub id: u64,
    /// Logical parent span ID — the enclosing span on the opening
    /// thread, or the adopted [`crate::trace::TraceContext`] on a rayon
    /// worker. `None` for roots.
    pub parent: Option<u64>,
    /// Span name — the same dotted name as the metrics timer it feeds.
    pub name: String,
    /// Dense capture-local index of the recording OS thread.
    pub tid: u64,
    /// Begin time in microseconds since the capture started.
    pub start_us: f64,
    /// Wall duration in microseconds.
    pub dur_us: f64,
    /// Attributes attached via [`crate::trace::span_with`], e.g. the
    /// Picard iteration index. Keys `id` and `parent` are reserved for
    /// the Chrome `args` encoding.
    pub args: Vec<(String, Json)>,
}

/// A drained capture: completed spans sorted by `(start_us, id)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTrace {
    /// Whether the producing binary had the `telemetry` feature; a
    /// no-telemetry build always yields `false` and zero spans.
    pub telemetry: bool,
    /// Completed spans, sorted by begin time then ID.
    pub spans: Vec<SpanRecord>,
}

/// Per-span-name aggregate for the self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct NameSummary {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Summed wall duration in microseconds.
    pub total_us: f64,
    /// Summed self time: duration minus the duration of direct logical
    /// children, clamped at zero per span (children running in parallel
    /// on rayon workers can overlap their parent's wall time).
    pub self_us: f64,
}

/// One slowest-child chain under a matching root span; see
/// [`SpanTrace::critical_paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The matching root span (e.g. one `coupled.iteration`).
    pub root: SpanRecord,
    /// The chain of slowest direct children, outermost first.
    pub steps: Vec<SpanRecord>,
}

impl SpanTrace {
    /// Renders the JSONL form: a header object, then one JSON object
    /// per span (`id`, `parent`, `name`, `tid`, `start_us`, `dur_us`,
    /// plus a nested `args` object when attributes are present).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::object([
            ("schema", Json::from("hotwire-spans")),
            ("version", Json::from(1_u64)),
            ("telemetry", Json::from(self.telemetry)),
            ("spans", Json::from(self.spans.len())),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for s in &self.spans {
            let mut pairs = vec![("id".to_owned(), Json::from(s.id))];
            if let Some(p) = s.parent {
                pairs.push(("parent".to_owned(), Json::from(p)));
            }
            pairs.push(("name".to_owned(), Json::from(s.name.as_str())));
            pairs.push(("tid".to_owned(), Json::from(s.tid)));
            pairs.push(("start_us".to_owned(), Json::Num(s.start_us)));
            pairs.push(("dur_us".to_owned(), Json::Num(s.dur_us)));
            if !s.args.is_empty() {
                pairs.push((
                    "args".to_owned(),
                    Json::Obj(s.args.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
                ));
            }
            out.push_str(&Json::Obj(pairs).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL form. Lines that are not span objects (the
    /// header, interleaved event lines) are skipped; malformed JSON or
    /// a span object missing a required key is an error.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut telemetry = true;
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = crate::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if v.get("schema").is_some() {
                telemetry = v.get("telemetry").and_then(Json::as_bool).unwrap_or(true);
                continue;
            }
            if v.get("dur_us").is_none() {
                continue; // not a span line (e.g. a stray log event)
            }
            let need = |key: &str| {
                v.get(key)
                    .cloned()
                    .ok_or_else(|| format!("line {}: span object missing `{key}`", i + 1))
            };
            spans.push(SpanRecord {
                id: need("id")?
                    .as_u64()
                    .ok_or_else(|| format!("line {}: `id` is not a u64", i + 1))?,
                parent: v.get("parent").and_then(Json::as_u64),
                name: need("name")?
                    .as_str()
                    .ok_or_else(|| format!("line {}: `name` is not a string", i + 1))?
                    .to_owned(),
                tid: v.get("tid").and_then(Json::as_u64).unwrap_or(0),
                start_us: need("start_us")?
                    .as_f64()
                    .ok_or_else(|| format!("line {}: `start_us` is not a number", i + 1))?,
                dur_us: need("dur_us")?
                    .as_f64()
                    .ok_or_else(|| format!("line {}: `dur_us` is not a number", i + 1))?,
                args: v
                    .get("args")
                    .and_then(Json::as_object)
                    .map(<[(String, Json)]>::to_vec)
                    .unwrap_or_default(),
            });
        }
        sort_spans(&mut spans);
        Ok(Self { telemetry, spans })
    }

    /// Renders the Chrome Trace Event form (the JSON Object Format with
    /// a `traceEvents` array), loadable in Perfetto/`chrome://tracing`.
    ///
    /// Every span becomes one `ph:"B"`/`ph:"E"` pair on its recording
    /// thread; the pairs are emitted structurally (a depth-first walk
    /// of the per-thread stack nesting), so they are balanced per `tid`
    /// by construction. `B` events carry `args.id`/`args.parent` (plus
    /// user attributes), which makes [`SpanTrace::from_chrome`] an
    /// exact inverse. Timestamps are microseconds.
    #[must_use]
    pub fn to_chrome(&self) -> Json {
        let n = self.spans.len();
        let by_id: HashMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        // Per-thread stack nesting: each span brackets under its
        // nearest logical ancestor *on the same thread* (a rayon
        // worker's spans must not bracket under another thread's).
        let mut kids: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots_by_tid: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let mut up = s.parent;
            let mut hops = 0usize;
            let mut stack_parent = None;
            while let Some(pid) = up {
                hops += 1;
                if hops > n {
                    break; // defensive: parent cycle in hand-edited input
                }
                match by_id.get(&pid) {
                    Some(&j) if self.spans[j].tid == s.tid => {
                        stack_parent = Some(j);
                        break;
                    }
                    Some(&j) => up = self.spans[j].parent,
                    None => break,
                }
            }
            match stack_parent {
                Some(j) => kids[j].push(i),
                None => roots_by_tid.entry(s.tid).or_default().push(i),
            }
        }
        let by_start = |list: &mut Vec<usize>| {
            list.sort_by(|&a, &b| {
                self.spans[a]
                    .start_us
                    .total_cmp(&self.spans[b].start_us)
                    .then(self.spans[a].id.cmp(&self.spans[b].id))
            });
        };
        for list in &mut kids {
            by_start(list);
        }

        let mut events = vec![Json::object([
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1_u64)),
            ("tid", Json::from(0_u64)),
            ("args", Json::object([("name", Json::from("hotwire"))])),
        ])];
        for &tid in roots_by_tid.keys() {
            events.push(Json::object([
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(1_u64)),
                ("tid", Json::from(tid)),
                (
                    "args",
                    Json::object([("name", Json::from(format!("thread-{tid}")))]),
                ),
            ]));
        }

        enum Walk {
            Open(usize),
            Close(usize),
        }
        for roots in roots_by_tid.values_mut() {
            by_start(roots);
            let mut work: Vec<Walk> = roots.iter().rev().map(|&i| Walk::Open(i)).collect();
            while let Some(item) = work.pop() {
                match item {
                    Walk::Open(i) => {
                        let s = &self.spans[i];
                        let mut args = vec![("id".to_owned(), Json::from(s.id))];
                        if let Some(p) = s.parent {
                            args.push(("parent".to_owned(), Json::from(p)));
                        }
                        args.extend(s.args.iter().map(|(k, v)| (k.clone(), v.clone())));
                        events.push(Json::object([
                            ("name", Json::from(s.name.as_str())),
                            ("cat", Json::from("hotwire")),
                            ("ph", Json::from("B")),
                            ("ts", Json::Num(s.start_us)),
                            ("pid", Json::from(1_u64)),
                            ("tid", Json::from(s.tid)),
                            ("args", Json::Obj(args)),
                        ]));
                        work.push(Walk::Close(i));
                        for &c in kids[i].iter().rev() {
                            work.push(Walk::Open(c));
                        }
                    }
                    Walk::Close(i) => {
                        let s = &self.spans[i];
                        events.push(Json::object([
                            ("name", Json::from(s.name.as_str())),
                            ("ph", Json::from("E")),
                            ("ts", Json::Num(s.start_us + s.dur_us)),
                            ("pid", Json::from(1_u64)),
                            ("tid", Json::from(s.tid)),
                        ]));
                    }
                }
            }
        }

        Json::object([
            ("displayTimeUnit", Json::from("ms")),
            (
                "otherData",
                Json::object([("telemetry", Json::from(self.telemetry))]),
            ),
            ("traceEvents", Json::Arr(events)),
        ])
    }

    /// Parses a Chrome Trace Event value (either the object format with
    /// `traceEvents` or a bare event array), reconstructing the span
    /// tree from a per-thread `B`/`E` stack.
    ///
    /// Errors on an `E` without a matching `B` on the same thread, a
    /// name mismatch between a pair, an end before its begin, or begin
    /// events left open at the end of the array — i.e. success implies
    /// the trace is balanced.
    pub fn from_chrome(v: &Json) -> Result<Self, String> {
        let (events, telemetry) = match v {
            Json::Arr(events) => (events.as_slice(), true),
            other => (
                other
                    .get("traceEvents")
                    .and_then(Json::as_array)
                    .ok_or("chrome trace: missing `traceEvents` array")?,
                other
                    .get("otherData")
                    .and_then(|d| d.get("telemetry"))
                    .and_then(Json::as_bool)
                    .unwrap_or(true),
            ),
        };
        // Events without an explicit args.id get fresh IDs above every
        // explicit one, so synthesized IDs never collide.
        let mut next_id = events
            .iter()
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_u64)
            })
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let mut stacks: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        let mut spans = Vec::new();
        for (i, e) in events.iter().enumerate() {
            let ph = e
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing `ph`"))?;
            let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
            match ph {
                "B" => {
                    let name = e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {i}: B event missing `name`"))?;
                    let ts = e
                        .get("ts")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: B event missing `ts`"))?;
                    let args = e.get("args").and_then(Json::as_object).unwrap_or(&[]);
                    let explicit = |key: &str| {
                        args.iter()
                            .find(|(k, _)| k == key)
                            .and_then(|(_, v)| v.as_u64())
                    };
                    let id = explicit("id").unwrap_or_else(|| {
                        let id = next_id;
                        next_id = next_id.saturating_add(1);
                        id
                    });
                    let stack = stacks.entry(tid).or_default();
                    let parent = explicit("parent").or_else(|| stack.last().map(|p| p.id));
                    stack.push(SpanRecord {
                        id,
                        parent,
                        name: name.to_owned(),
                        tid,
                        start_us: ts,
                        dur_us: 0.0,
                        args: args
                            .iter()
                            .filter(|(k, _)| k != "id" && k != "parent")
                            .cloned()
                            .collect(),
                    });
                }
                "E" => {
                    let ts = e
                        .get("ts")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: E event missing `ts`"))?;
                    let mut done = stacks
                        .get_mut(&tid)
                        .and_then(Vec::pop)
                        .ok_or_else(|| format!("event {i}: E on tid {tid} without an open B"))?;
                    if let Some(name) = e.get("name").and_then(Json::as_str) {
                        if name != done.name {
                            return Err(format!(
                                "event {i}: E named `{name}` closes B named `{}`",
                                done.name
                            ));
                        }
                    }
                    if ts < done.start_us {
                        return Err(format!(
                            "event {i}: span `{}` ends before it begins",
                            done.name
                        ));
                    }
                    done.dur_us = ts - done.start_us;
                    spans.push(done);
                }
                // Metadata and phases this writer never emits (counters,
                // complete events, flows) are skipped, not errors.
                _ => {}
            }
        }
        for (tid, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!(
                    "unbalanced trace: {} B event(s) never closed on tid {tid}",
                    stack.len()
                ));
            }
        }
        sort_spans(&mut spans);
        Ok(Self { telemetry, spans })
    }

    /// Parses either format: whole-text Chrome Trace Event JSON (object
    /// with `traceEvents`, or a bare event array), else line-based
    /// JSONL.
    pub fn parse(text: &str) -> Result<Self, String> {
        if let Ok(v) = crate::json::parse(text) {
            if matches!(v, Json::Arr(_)) || v.get("traceEvents").is_some() {
                return Self::from_chrome(&v);
            }
        }
        Self::from_jsonl(text)
    }

    /// Aggregates per-name totals and self time, sorted by descending
    /// self time (ties by name).
    ///
    /// Self time subtracts the durations of *direct logical children*
    /// from each span and clamps at zero — children that ran in
    /// parallel on rayon workers can sum past their parent's wall time,
    /// and that surplus is concurrency, not self work.
    #[must_use]
    pub fn self_time(&self) -> Vec<NameSummary> {
        let mut child_sum: HashMap<u64, f64> = HashMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                *child_sum.entry(p).or_insert(0.0) += s.dur_us;
            }
        }
        let mut by_name: BTreeMap<&str, NameSummary> = BTreeMap::new();
        for s in &self.spans {
            let own = (s.dur_us - child_sum.get(&s.id).copied().unwrap_or(0.0)).max(0.0);
            let entry = by_name
                .entry(s.name.as_str())
                .or_insert_with(|| NameSummary {
                    name: s.name.clone(),
                    count: 0,
                    total_us: 0.0,
                    self_us: 0.0,
                });
            entry.count += 1;
            entry.total_us += s.dur_us;
            entry.self_us += own;
        }
        let mut rows: Vec<NameSummary> = by_name.into_values().collect();
        rows.sort_by(|a, b| {
            b.self_us
                .total_cmp(&a.self_us)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// Folded-stack lines for flamegraph tools (inferno, speedscope):
    /// `root;child;leaf` stacks keyed by the logical parent chain, with
    /// integer self-microsecond weights. Zero-weight stacks are
    /// dropped. Sorted by descending weight (ties by stack).
    #[must_use]
    pub fn folded(&self) -> Vec<(String, u64)> {
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut child_sum: HashMap<u64, f64> = HashMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                *child_sum.entry(p).or_insert(0.0) += s.dur_us;
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let own = (s.dur_us - child_sum.get(&s.id).copied().unwrap_or(0.0))
                .max(0.0)
                .round() as u64;
            if own == 0 {
                continue;
            }
            let mut chain = vec![s.name.as_str()];
            let mut up = s.parent;
            let mut hops = 0usize;
            while let Some(pid) = up {
                hops += 1;
                if hops > self.spans.len() {
                    break; // defensive: parent cycle in hand-edited input
                }
                match by_id.get(&pid) {
                    Some(p) => {
                        chain.push(p.name.as_str());
                        up = p.parent;
                    }
                    None => break,
                }
            }
            chain.reverse();
            *stacks.entry(chain.join(";")).or_insert(0) += own;
        }
        let mut rows: Vec<(String, u64)> = stacks.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// For every span named `root_name` (e.g. `coupled.iteration`),
    /// extracts the slowest-child chain: repeatedly descend into the
    /// longest-duration direct logical child. This is the critical path
    /// of each Picard iteration — the work that bounded its wall time.
    #[must_use]
    pub fn critical_paths(&self, root_name: &str) -> Vec<CriticalPath> {
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                children.entry(p).or_default().push(s);
            }
        }
        self.spans
            .iter()
            .filter(|s| s.name == root_name)
            .map(|root| {
                let mut steps = Vec::new();
                let mut cur = root.id;
                let mut hops = 0usize;
                while let Some(kids) = children.get(&cur) {
                    hops += 1;
                    if hops > self.spans.len() {
                        break; // defensive: parent cycle in hand-edited input
                    }
                    let Some(best) = kids
                        .iter()
                        .copied()
                        .max_by(|a, b| a.dur_us.total_cmp(&b.dur_us).then_with(|| b.id.cmp(&a.id)))
                    else {
                        break;
                    };
                    steps.push(best.clone());
                    cur = best.id;
                }
                CriticalPath {
                    root: root.clone(),
                    steps,
                }
            })
            .collect()
    }
}

fn sort_spans(spans: &mut [SpanRecord]) {
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
}

/// The recording side: per-thread buffers and the process-global
/// capture flag. `crate::trace` calls [`begin`]/[`end`] from the span
/// guard; everything here is private to the crate.
#[cfg(feature = "telemetry")]
pub(crate) mod cap {
    use super::{sort_spans, SpanRecord, SpanTrace};
    use crate::json::Json;
    use crate::sync::{AtomicU64, AtomicU8, Ordering};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Instant;

    /// 1 while a capture is recording. Purely a sampling gate: span
    /// guards that saw 0 at open simply don't record, and the drain
    /// discards any half pair a racing guard produced.
    static RECORDING: AtomicU8 = AtomicU8::new(0);
    /// Next span ID; IDs start at 1 and never repeat within a process.
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
    /// Next dense thread index, assigned at first record per thread.
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);

    enum RawEvent {
        Begin {
            id: u64,
            parent: Option<u64>,
            name: &'static str,
            at: Instant,
            args: Vec<(String, Json)>,
        },
        End {
            id: u64,
            at: Instant,
        },
    }

    struct ThreadBuffer {
        tid: u64,
        events: Mutex<Vec<RawEvent>>,
    }

    struct Shared {
        epoch: Mutex<Option<Instant>>,
        buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shared() -> &'static Shared {
        static SHARED: OnceLock<Shared> = OnceLock::new();
        SHARED.get_or_init(|| Shared {
            epoch: Mutex::new(None),
            buffers: Mutex::new(Vec::new()),
        })
    }

    thread_local! {
        /// This thread's buffer handle. The registry keeps a second
        /// `Arc`; when the thread exits and drops this one, the next
        /// `start()` prunes the dead buffer by strong count.
        static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
    }

    pub fn active() -> bool {
        // SAFETY(ordering): RECORDING is a self-contained sampling
        // gate; no memory is published through it. Recorders stamp
        // events with their own `Instant` and the drain pairs or
        // discards them, so a stale read costs at most one span at a
        // capture boundary. The loom model
        // `trace_capture_drain_is_complete_and_balanced` exercises
        // recording racing a drain.
        RECORDING.load(Ordering::Relaxed) == 1
    }

    fn with_local<R>(f: impl FnOnce(&ThreadBuffer) -> R) -> R {
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let buf = slot.get_or_insert_with(|| {
                // SAFETY(ordering): pure unique-index allocation; the
                // fetch_add's atomicity alone guarantees distinct tids
                // and nothing else is published through this counter.
                let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                let buf = Arc::new(ThreadBuffer {
                    tid,
                    events: Mutex::new(Vec::new()),
                });
                lock(&shared().buffers).push(Arc::clone(&buf));
                buf
            });
            f(buf)
        })
    }

    /// Records a begin event and returns the new span's ID. The hot
    /// path touches only this thread's own buffer mutex — uncontended
    /// except while a drain is in progress.
    pub fn begin(
        name: &'static str,
        parent: Option<u64>,
        args: Vec<(String, Json)>,
        at: Instant,
    ) -> u64 {
        // SAFETY(ordering): pure unique-ID allocation; atomicity alone
        // guarantees uniqueness and no other memory rides on the edge.
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        with_local(|buf| {
            lock(&buf.events).push(RawEvent::Begin {
                id,
                parent,
                name,
                at,
                args,
            });
        });
        id
    }

    /// Records the end event for a span begun during a capture. Called
    /// unconditionally once a span holds an ID — if the capture was
    /// drained in between, the orphan end is discarded by the next
    /// assembly rather than lost mid-pair.
    pub fn end(id: u64, at: Instant) {
        with_local(|buf| lock(&buf.events).push(RawEvent::End { id, at }));
    }

    /// Starts (or restarts) the capture: prunes buffers of exited
    /// threads, clears the rest, stamps the epoch, raises the flag.
    pub fn start() {
        {
            let mut buffers = lock(&shared().buffers);
            buffers.retain(|b| Arc::strong_count(b) > 1);
            for b in buffers.iter() {
                lock(&b.events).clear();
            }
        }
        *lock(&shared().epoch) = Some(Instant::now());
        // SAFETY(ordering): sampling gate only — see `active`. The
        // epoch is published under its own mutex, and event timestamps
        // are clamped to it at assembly, so a recorder that races the
        // flag cannot produce a nonsensical time.
        RECORDING.store(1, Ordering::Relaxed);
    }

    /// Stops the capture and assembles the trace. Spans still open at
    /// drain time are closed at the drain instant (their end events,
    /// arriving later, are discarded as orphans by the next assembly).
    pub fn take() -> SpanTrace {
        // SAFETY(ordering): sampling gate only — see `active`.
        RECORDING.store(0, Ordering::Relaxed);
        let drained_at = Instant::now();
        let Some(epoch) = lock(&shared().epoch).take() else {
            return SpanTrace {
                telemetry: true,
                spans: Vec::new(),
            };
        };
        let mut all: Vec<(u64, RawEvent)> = Vec::new();
        {
            let buffers = lock(&shared().buffers);
            for b in buffers.iter() {
                let events = std::mem::take(&mut *lock(&b.events));
                all.extend(events.into_iter().map(|e| (b.tid, e)));
            }
        }
        let us = |at: Instant| {
            at.checked_duration_since(epoch)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e6
        };
        let mut open: BTreeMap<u64, SpanRecord> = BTreeMap::new();
        let mut ends: Vec<(u64, Instant)> = Vec::new();
        for (tid, e) in all {
            match e {
                RawEvent::Begin {
                    id,
                    parent,
                    name,
                    at,
                    args,
                } => {
                    open.insert(
                        id,
                        SpanRecord {
                            id,
                            parent,
                            name: name.to_owned(),
                            tid,
                            start_us: us(at),
                            dur_us: 0.0,
                            args,
                        },
                    );
                }
                RawEvent::End { id, at } => ends.push((id, at)),
            }
        }
        let mut spans = Vec::with_capacity(open.len());
        for (id, at) in ends {
            // Orphan ends (begin drained by a previous capture) have no
            // entry here and are dropped.
            if let Some(mut r) = open.remove(&id) {
                r.dur_us = (us(at) - r.start_us).max(0.0);
                spans.push(r);
            }
        }
        for (_, mut r) in open {
            r.dur_us = (us(drained_at) - r.start_us).max(0.0);
            spans.push(r);
        }
        sort_spans(&mut spans);
        SpanTrace {
            telemetry: true,
            spans,
        }
    }
}

/// Starts (or restarts) the process-global span capture. From here
/// until [`capture_take`], every [`crate::trace::span`] records a
/// begin/end pair into its thread's buffer. No-op without `telemetry`.
pub fn capture_start() {
    #[cfg(feature = "telemetry")]
    cap::start();
}

/// `true` while a capture is recording.
#[must_use]
pub fn capture_active() -> bool {
    #[cfg(feature = "telemetry")]
    {
        cap::active()
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

/// Stops the capture and drains every thread's buffer into a
/// [`SpanTrace`]. Spans still open are closed at the drain instant.
/// Without `telemetry` this returns an empty trace with
/// `telemetry: false`.
#[must_use]
pub fn capture_take() -> SpanTrace {
    #[cfg(feature = "telemetry")]
    {
        cap::take()
    }
    #[cfg(not(feature = "telemetry"))]
    SpanTrace::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-thread trace: main runs `root` [0, 1000] with
    /// children `stage_a` [0, 400] and `stage_b` [400, 1000]; a worker
    /// runs `task` [450, 550] twice with logical parent `stage_b`.
    fn sample() -> SpanTrace {
        let span = |id, parent, name: &str, tid, start_us: f64, dur_us: f64| SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            tid,
            start_us,
            dur_us,
            args: Vec::new(),
        };
        let mut t = SpanTrace {
            telemetry: true,
            spans: vec![
                span(1, None, "root", 0, 0.0, 1000.0),
                span(2, Some(1), "stage_a", 0, 0.0, 400.0),
                span(3, Some(1), "stage_b", 0, 400.0, 600.0),
                span(4, Some(3), "task", 1, 450.0, 100.0),
                span(5, Some(3), "task", 1, 560.0, 50.0),
            ],
        };
        t.spans[3].args = vec![("index".to_owned(), Json::from(0_u64))];
        t
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample();
        let back = SpanTrace::from_jsonl(&t.to_jsonl()).expect("parses");
        assert_eq!(back, t);
        // And through the auto-detecting entry point.
        assert_eq!(SpanTrace::parse(&t.to_jsonl()).expect("parses"), t);
    }

    #[test]
    fn chrome_round_trips_and_balances() {
        let t = sample();
        let chrome = t.to_chrome();
        // Balanced B/E per tid, checked the pedestrian way.
        let events = chrome
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
        for e in events {
            let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => *depth.entry(tid).or_insert(0) += 1,
                Some("E") => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E before B on tid {tid}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
        // Lossless: text round trip through the parser.
        let text = chrome.to_pretty_string();
        let back = SpanTrace::parse(&text).expect("chrome parses");
        assert_eq!(back, t);
    }

    #[test]
    fn chrome_parser_rejects_unbalanced_input() {
        let missing_end = r#"{"traceEvents":[
            {"ph":"B","name":"a","ts":0,"tid":0},
            {"ph":"B","name":"b","ts":1,"tid":0},
            {"ph":"E","name":"b","ts":2,"tid":0}
        ]}"#;
        let v = crate::json::parse(missing_end).expect("valid json");
        let err = SpanTrace::from_chrome(&v).expect_err("unbalanced");
        assert!(err.contains("never closed"), "{err}");

        let orphan_end = r#"{"traceEvents":[{"ph":"E","name":"a","ts":2,"tid":3}]}"#;
        let v = crate::json::parse(orphan_end).expect("valid json");
        let err = SpanTrace::from_chrome(&v).expect_err("orphan end");
        assert!(err.contains("without an open B"), "{err}");
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let t = sample();
        let rows = t.self_time();
        let get = |name: &str| rows.iter().find(|r| r.name == name).expect(name);
        // root: 1000 - (400 + 600) = 0 self.
        assert!((get("root").self_us - 0.0).abs() < 1e-9);
        // stage_b: 600 - (100 + 50) = 450 self.
        assert!((get("stage_b").self_us - 450.0).abs() < 1e-9);
        assert_eq!(get("task").count, 2);
        assert!((get("task").total_us - 150.0).abs() < 1e-9);
        // Sorted by descending self time.
        assert!(rows.windows(2).all(|w| w[0].self_us >= w[1].self_us));
    }

    #[test]
    fn folded_stacks_follow_logical_parents() {
        let t = sample();
        let folded = t.folded();
        let get = |stack: &str| {
            folded
                .iter()
                .find(|(s, _)| s == stack)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        // The worker's spans fold under the cross-thread logical chain.
        assert_eq!(get("root;stage_b;task"), 150);
        assert_eq!(get("root;stage_b"), 450);
        assert_eq!(get("root;stage_a"), 400);
        // root has zero self time, so no bare "root" line.
        assert!(folded.iter().all(|(s, _)| s != "root"));
    }

    #[test]
    fn critical_path_descends_into_slowest_children() {
        let t = sample();
        let paths = t.critical_paths("root");
        assert_eq!(paths.len(), 1);
        let names: Vec<&str> = paths[0].steps.iter().map(|s| s.name.as_str()).collect();
        // stage_b (600) beats stage_a (400); task#4 (100) beats #5 (50).
        assert_eq!(names, ["stage_b", "task"]);
        assert_eq!(paths[0].steps[1].id, 4);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn capture_records_nested_and_cross_thread_spans() {
        // Capture state is process-global; serialize with the other
        // registry-touching tests.
        let _guard = crate::metrics::testutil::lock();
        capture_start();
        {
            let _root = crate::trace::span("cap.root");
            {
                let _child = crate::trace::span_with(
                    "cap.child",
                    &[("iteration", crate::trace::FieldValue::U64(7))],
                );
            }
            let ctx = crate::trace::context();
            std::thread::spawn(move || {
                let _adopt = ctx.adopt();
                let _task = crate::trace::span("cap.task");
            })
            .join()
            .map_err(|_| "worker panicked")
            .expect("worker thread joins");
        }
        let t = capture_take();
        assert!(t.telemetry);
        assert!(!capture_active());
        let find = |name: &str| t.spans.iter().find(|s| s.name == name).expect(name);
        let root = find("cap.root");
        let child = find("cap.child");
        let task = find("cap.task");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        // Cross-thread adoption: same logical parent, different thread.
        assert_eq!(task.parent, Some(root.id));
        assert_ne!(task.tid, root.tid);
        assert_eq!(
            child.args,
            vec![("iteration".to_owned(), Json::from(7_u64))]
        );
        assert!(root.dur_us >= child.dur_us);
        // Nothing records once the capture is drained.
        {
            let _late = crate::trace::span("cap.late");
        }
        assert!(capture_take().spans.is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn open_spans_are_closed_at_drain_time() {
        let _guard = crate::metrics::testutil::lock();
        capture_start();
        let still_open = crate::trace::span("cap.open");
        let t = capture_take();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "cap.open");
        assert!(t.spans[0].dur_us >= 0.0);
        drop(still_open); // its orphan end is discarded by the next take
        capture_start();
        assert!(capture_take().spans.is_empty());
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn capture_is_inert_without_telemetry() {
        capture_start();
        assert!(!capture_active());
        let _span = crate::trace::span("noop");
        let t = capture_take();
        assert!(!t.telemetry);
        assert!(t.spans.is_empty());
    }
}
