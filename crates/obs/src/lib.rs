//! Observability for the hotwire workspace: metrics, tracing, JSON.
//!
//! The solver stack (sparse MNA factorizations, sweep fan-outs, the
//! coupled Picard loop) is the hot path of the repository; this crate
//! makes it inspectable without making it slower:
//!
//! * [`metrics`] — a process-global, rayon-safe registry of atomic
//!   counters, gauges, and wall-time histograms. Recording is lock-free
//!   (`fetch_add` on pre-registered cells); [`metrics::snapshot`]
//!   freezes everything into a serializable [`metrics::MetricsSnapshot`].
//! * [`histogram`] — the log-linear (HDR-style) bucketing behind every
//!   timer: lock-free recording, count-exact merging, and p50/p90/p99
//!   quantile estimates with a documented `1/32` relative-error bound.
//! * [`prom`] — Prometheus text-exposition (version 0.0.4) rendering of
//!   a snapshot, for `hotwire serve` and anything else that scrapes.
//! * [`trace`] — structured spans and events with a text or JSONL sink
//!   on stderr, levelled like conventional loggers (`error` … `trace`).
//!   Span entry/exit feeds the metrics timers, so `--metrics-out` and
//!   `--log-format json` describe the same execution. [`trace::context`]
//!   / [`TraceContext::adopt`] carry the logical span across rayon
//!   thread boundaries.
//! * [`spantree`] — parallelism-aware span-tree capture: while a
//!   capture is active every span records begin/end events (ID, logical
//!   parent, thread index) into per-thread buffers, drained into a
//!   [`SpanTrace`] with JSONL and Chrome Trace Event (Perfetto)
//!   exports plus self-time, folded-stack, and critical-path analysis
//!   for the `hotwire trace` subcommand.
//! * [`health`] — numerical-health math: Hager/Higham 1-norm
//!   condition estimation against an existing factorization, the
//!   Picard convergence-rate fit and early classification
//!   (converging / stagnated / oscillating / diverging), the
//!   [`HealthReport`] summary, and the `health.*` metric-name catalog.
//! * [`recorder`] — the flight recorder: a fixed-memory ring of recent
//!   structured events (stage transitions, residuals, health samples,
//!   per-request lines) that is always on at bounded cost, frozen into
//!   a diagnostic bundle ([`recorder::bundle`]) on error exits, panics,
//!   or SIGUSR1 for offline analysis by `hotwire doctor`.
//! * [`json`] — a small dependency-free JSON value type with a writer
//!   and parser. The workspace's `serde` is an offline no-op shim
//!   (see `shims/README.md`), so report files, snapshots, and the
//!   convergence traces serialize through this module instead.
//!
//! Everything that records is behind the default-on `telemetry`
//! feature; compiled without it, the recording API collapses to empty
//! inline functions and zero-sized guard types, so instrumented crates
//! keep a single call-site style with no runtime cost. The [`json`]
//! module is feature-independent.
//!
//! ```
//! let solves = hotwire_obs::metrics::counter("doc.solves");
//! solves.inc();
//! let snap = hotwire_obs::metrics::snapshot();
//! # #[cfg(feature = "telemetry")]
//! assert!(snap.counters.get("doc.solves").copied().unwrap_or(0) >= 1);
//! let text = snap.to_json().to_string();
//! let back = hotwire_obs::json::parse(&text).unwrap();
//! assert_eq!(snap, hotwire_obs::metrics::MetricsSnapshot::from_json(&back).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod recorder;
pub mod spantree;
pub mod stopwatch;
#[cfg(feature = "telemetry")]
pub(crate) mod sync;
pub mod trace;

pub use health::{ConvergenceClass, HealthReport, PicardHealth};
pub use json::Json;
pub use metrics::MetricsSnapshot;
pub use recorder::FlightEvent;
pub use spantree::{SpanRecord, SpanTrace};
pub use stopwatch::Stopwatch;
pub use trace::{FieldValue, Level, LogConfig, LogFormat, TraceContext};
