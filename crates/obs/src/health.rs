//! Numerical-health assessment: condition estimation, convergence-rate
//! fitting, and the `health.*` metric catalog.
//!
//! The solver stack can fail in ways a residual history alone cannot
//! explain — a near-singular MNA matrix, pivot growth eating the
//! factorization's accuracy, a Picard loop that is oscillating rather
//! than contracting. This module holds the *math* of diagnosing those
//! failures; the instrumented crates (`hotwire-circuit`,
//! `hotwire-coupled`) call it and publish the results through the
//! metrics registry under the names in [`names`], and the coupled
//! engine attaches a [`HealthReport`] to every report and diagnostic
//! bundle (see [`crate::recorder`]).
//!
//! Everything here is feature-independent pure arithmetic: the
//! `telemetry` feature gates *recording*, not *assessment*, so a
//! `--no-default-features` build still classifies its own convergence.
//!
//! # Condition estimation
//!
//! [`condest_1norm`] is Hager's 1-norm power iteration in the form
//! popularized by Higham (the LAPACK `xLACON` kernel): it estimates
//! ‖A⁻¹‖₁ from a handful of solves with an existing factorization of
//! `A` and `Aᵀ`, never forming the inverse. The estimate is a **lower
//! bound** on the true condition number; in practice it is within a
//! small factor (the property tests in `tests/health_properties.rs`
//! pin [`CONDEST_UNDERESTIMATE_FACTOR`]).

use crate::json::Json;

/// Documented worst-case slack of [`condest_1norm`] on the random
/// grid-like matrices the property tests generate: the estimate is an
/// exact lower bound (`est ≤ κ₁`) and is asserted to stay within this
/// multiplicative factor of the true 1-norm condition number
/// (`est ≥ κ₁ / CONDEST_UNDERESTIMATE_FACTOR`). Hager's iteration has
/// adversarial counterexamples far worse than this, but they do not
/// arise from diagonally-dominant MNA stamps.
pub const CONDEST_UNDERESTIMATE_FACTOR: f64 = 10.0;

/// Hager iterations before giving up; Higham reports the iteration
/// almost always converges in 2, and LAPACK caps at 5.
const CONDEST_MAX_ITERS: usize = 5;

/// Estimates the 1-norm condition number κ₁(A) = ‖A‖₁‖A⁻¹‖₁ of an
/// already-factored `n × n` matrix via Hager/Higham power iteration on
/// ‖A⁻¹‖₁.
///
/// `anorm_1` is ‖A‖₁ of the stamped matrix (cheap: max column absolute
/// sum). `solve(b, x)` must write `x = A⁻¹b` and `solve_transposed(b,
/// x)` must write `x = A⁻ᵀb`, both reusing the factorization — the
/// whole estimate costs O(few solves), no refactorization.
///
/// Returns `0.0` for an empty matrix, `f64::INFINITY` when a solve
/// produces non-finite values (numerically singular), and otherwise a
/// lower bound on κ₁ (see [`CONDEST_UNDERESTIMATE_FACTOR`]).
pub fn condest_1norm(
    n: usize,
    anorm_1: f64,
    mut solve: impl FnMut(&[f64], &mut [f64]),
    mut solve_transposed: impl FnMut(&[f64], &mut [f64]),
) -> f64 {
    if n == 0 || anorm_1 == 0.0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut est = 0.0_f64;
    for iter in 0..CONDEST_MAX_ITERS {
        solve(&x, &mut y);
        let ynorm: f64 = y.iter().map(|v| v.abs()).sum();
        if !ynorm.is_finite() {
            return f64::INFINITY;
        }
        // The iteration is an ascent on ‖A⁻¹x‖₁ over the unit 1-norm
        // ball; once a step stops improving the previous estimate is
        // the answer.
        if iter > 0 && ynorm <= est {
            break;
        }
        est = ynorm;
        let xi: Vec<f64> = y
            .iter()
            .map(|&v| if v < 0.0 { -1.0 } else { 1.0 })
            .collect();
        solve_transposed(&xi, &mut z);
        if z.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        let (j, zmax) = z
            .iter()
            .enumerate()
            .fold((0, 0.0_f64), |(bj, bv), (i, &v)| {
                if v.abs() > bv {
                    (i, v.abs())
                } else {
                    (bj, bv)
                }
            });
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        // Optimality test: the subgradient certificate z attains its
        // max at the current vertex — no better e_j exists.
        if zmax <= ztx.abs() {
            break;
        }
        x.iter_mut().for_each(|v| *v = 0.0);
        x[j] = 1.0;
    }
    let kappa = est * anorm_1;
    if kappa.is_finite() {
        kappa
    } else {
        f64::INFINITY
    }
}

/// Early classification of a fixed-point iteration from its residual
/// (`delta`) history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvergenceClass {
    /// Deltas are contracting; the loop should reach tolerance.
    Converging,
    /// Deltas are flat — neither contracting nor growing. Raising the
    /// iteration cap will not help; the fixed point is out of reach at
    /// this damping/tolerance.
    Stagnated,
    /// Deltas alternate between growth and shrinkage around a flat
    /// trend — the classic overshooting signature; lower the damping.
    Oscillating,
    /// Deltas are growing; the iteration is moving away from the fixed
    /// point.
    Diverging,
    /// Not enough history to say (fewer than three deltas).
    Unknown,
}

impl ConvergenceClass {
    /// Stable lower-case label used in JSON, metrics, and `doctor`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Converging => "converging",
            Self::Stagnated => "stagnated",
            Self::Oscillating => "oscillating",
            Self::Diverging => "diverging",
            Self::Unknown => "unknown",
        }
    }

    /// Parses [`ConvergenceClass::label`] output (`None` otherwise).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "converging" => Some(Self::Converging),
            "stagnated" => Some(Self::Stagnated),
            "oscillating" => Some(Self::Oscillating),
            "diverging" => Some(Self::Diverging),
            "unknown" => Some(Self::Unknown),
            _ => None,
        }
    }
}

/// Fitted convergence-rate diagnosis of a Picard (fixed-point) loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PicardHealth {
    /// Fitted per-iteration contraction factor: the geometric mean of
    /// consecutive delta ratios over the recent window. `< 1` is
    /// contracting, `≈ 1` stagnating, `> 1` growing; `0` when fewer
    /// than two deltas exist.
    pub contraction: f64,
    /// Iterations still needed to bring the last delta under tolerance
    /// at the fitted rate; `None` unless the loop is classified
    /// [`ConvergenceClass::Converging`] and is not there yet.
    pub predicted_iterations: Option<u64>,
    /// The early classification.
    pub class: ConvergenceClass,
}

/// Window of recent deltas the rate fit looks at; the start of a
/// Picard transient is deliberately forgotten.
const RATE_WINDOW: usize = 8;

/// Fits a contraction factor to a delta history and classifies the
/// iteration (see [`ConvergenceClass`]).
///
/// `deltas` is the per-iteration residual sequence (most recent last),
/// `tolerance` the loop's convergence threshold in the same units.
/// Non-positive deltas are treated as converged-scale noise.
#[must_use]
pub fn picard_rate(deltas: &[f64], tolerance: f64) -> PicardHealth {
    let window = &deltas[deltas.len().saturating_sub(RATE_WINDOW)..];
    let ratios: Vec<f64> = window
        .windows(2)
        .filter(|w| w[0] > 0.0 && w[1] > 0.0)
        .map(|w| w[1] / w[0])
        .collect();
    let last = window.last().copied().unwrap_or(0.0);
    if ratios.is_empty() {
        let class = if last > 0.0 && last <= tolerance {
            ConvergenceClass::Converging
        } else {
            ConvergenceClass::Unknown
        };
        return PicardHealth {
            contraction: 0.0,
            predicted_iterations: None,
            class,
        };
    }
    #[allow(clippy::cast_precision_loss)]
    let contraction = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    if last <= tolerance {
        return PicardHealth {
            contraction,
            predicted_iterations: None,
            class: ConvergenceClass::Converging,
        };
    }
    if ratios.len() < 2 {
        return PicardHealth {
            contraction,
            predicted_iterations: None,
            class: ConvergenceClass::Unknown,
        };
    }
    // Oscillation: the log-ratios keep changing sign (grow, shrink,
    // grow, …) while the overall trend is roughly flat.
    let flips = ratios
        .windows(2)
        .filter(|w| (w[0] > 1.0) != (w[1] > 1.0))
        .count();
    let class =
        if ratios.iter().rev().take(3).filter(|&&r| r > 1.0).count() == 3 || contraction > 1.2 {
            ConvergenceClass::Diverging
        } else if flips + 1 >= ratios.len() && (0.8..=1.25).contains(&contraction) {
            ConvergenceClass::Oscillating
        } else if (0.95..=1.05).contains(&contraction) {
            ConvergenceClass::Stagnated
        } else if contraction < 1.0 {
            ConvergenceClass::Converging
        } else {
            ConvergenceClass::Diverging
        };
    let predicted_iterations = if class == ConvergenceClass::Converging && contraction > 0.0 {
        let n = (tolerance / last).ln() / contraction.ln();
        if n.is_finite() && n > 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n.ceil().min(1e12) as u64)
        } else {
            None
        }
    } else {
        None
    };
    PicardHealth {
        contraction,
        predicted_iterations,
        class,
    }
}

/// A self-contained numerical-health summary: what the monitors saw
/// during one solver run.
///
/// Attached to `CoupledReport`, embedded in diagnostic bundles
/// ([`crate::recorder::bundle`]), and rendered by `hotwire doctor`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Fixed-point rate diagnosis.
    pub picard: PicardHealth,
    /// Iterations the loop actually ran.
    pub iterations: u64,
    /// Final delta (residual) of the loop, kelvin for the coupled
    /// engine.
    pub last_delta: f64,
    /// The convergence threshold the loop was aiming for.
    pub tolerance: f64,
    /// Hager/Higham κ₁ estimate of the most recently sampled
    /// electrical factorization, when one was computed.
    pub condition_estimate: Option<f64>,
    /// Worst post-solve relative residual ‖Ax−b‖∞/‖b‖∞ observed.
    pub residual_rel: Option<f64>,
    /// KCL current-conservation audit: worst per-node current
    /// imbalance relative to the total load current.
    pub kcl_imbalance_rel: Option<f64>,
    /// LU pivot-growth factor max|U| / max|A| of the sampled
    /// factorization.
    pub pivot_growth: Option<f64>,
}

impl HealthReport {
    /// Serializes to the bundle schema documented in
    /// `docs/OBSERVABILITY.md`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::from);
        Json::object([
            ("class", Json::from(self.picard.class.label())),
            ("contraction", Json::from(self.picard.contraction)),
            (
                "predicted_iterations",
                self.picard
                    .predicted_iterations
                    .map_or(Json::Null, Json::from),
            ),
            ("iterations", Json::from(self.iterations)),
            ("last_delta", Json::from(self.last_delta)),
            ("tolerance", Json::from(self.tolerance)),
            ("condition_estimate", opt(self.condition_estimate)),
            ("residual_rel", opt(self.residual_rel)),
            ("kcl_imbalance_rel", opt(self.kcl_imbalance_rel)),
            ("pivot_growth", opt(self.pivot_growth)),
        ])
    }

    /// Rebuilds a report from [`HealthReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let class = v
            .get("class")
            .and_then(Json::as_str)
            .and_then(ConvergenceClass::from_label)
            .ok_or("missing or unknown `class`")?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number `{key}`"))
        };
        let opt = |key: &str| v.get(key).and_then(Json::as_f64);
        Ok(Self {
            picard: PicardHealth {
                contraction: num("contraction")?,
                predicted_iterations: v.get("predicted_iterations").and_then(Json::as_u64),
                class,
            },
            iterations: v
                .get("iterations")
                .and_then(Json::as_u64)
                .ok_or("missing count `iterations`")?,
            last_delta: num("last_delta")?,
            tolerance: num("tolerance")?,
            condition_estimate: opt("condition_estimate"),
            residual_rel: opt("residual_rel"),
            kcl_imbalance_rel: opt("kcl_imbalance_rel"),
            pivot_growth: opt("pivot_growth"),
        })
    }
}

/// Registry names of the `health.*` metric family (catalog in
/// `docs/OBSERVABILITY.md`). Centralized so the instrumented crates,
/// the CI schema assertions, and the docs cannot drift apart.
pub mod names {
    /// Gauge: Hager/Higham κ₁ estimate of the sampled factorization.
    pub const COND_EST: &str = "health.cond_est";
    /// Counter: condition estimates computed (sampling, not per-solve).
    pub const COND_SAMPLES: &str = "health.cond_samples";
    /// Gauge: last post-solve relative residual ‖Ax−b‖∞/‖b‖∞.
    pub const RESIDUAL_REL: &str = "health.residual_rel";
    /// Counter: residual checks that exceeded the warn threshold.
    pub const RESIDUAL_WARN: &str = "health.residual_warn";
    /// Gauge: KCL audit — worst node imbalance / total load current.
    pub const KCL_IMBALANCE_REL: &str = "health.kcl_imbalance_rel";
    /// Counter: KCL audits that exceeded the warn threshold.
    pub const KCL_WARN: &str = "health.kcl_warn";
    /// Gauge: LU pivot growth max|U|/max|A| of the last factorization.
    pub const PIVOT_GROWTH: &str = "health.pivot_growth";
    /// Gauge: smallest |LDLᵀ pivot| of the last Cholesky factorization.
    pub const CHOL_MIN_PIVOT: &str = "health.chol_min_pivot";
    /// Gauge: fitted Picard contraction factor.
    pub const PICARD_CONTRACTION: &str = "health.picard.contraction";
    /// Gauge: predicted iterations-to-converge at the fitted rate.
    pub const PICARD_PREDICTED: &str = "health.picard.predicted_iters";
    /// Counter: iterations classified stagnated.
    pub const PICARD_STAGNATED: &str = "health.picard.stagnated";
    /// Counter: iterations classified oscillating.
    pub const PICARD_OSCILLATING: &str = "health.picard.oscillating";
    /// Counter: iterations classified diverging.
    pub const PICARD_DIVERGING: &str = "health.picard.diverging";
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-norm of a dense row-major `n × n` matrix.
    fn norm_1(a: &[Vec<f64>]) -> f64 {
        let n = a.len();
        (0..n)
            .map(|j| (0..n).map(|i| a[i][j].abs()).sum())
            .fold(0.0, f64::max)
    }

    /// Partially-pivoted Gaussian elimination solve, fine for the tiny
    /// well-conditioned fixtures below.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let n = a.len();
        let mut m: Vec<Vec<f64>> = a.to_vec();
        let mut x = b.to_vec();
        for k in 0..n {
            let p = (k..n)
                .max_by(|&i, &j| m[i][k].abs().total_cmp(&m[j][k].abs()))
                .unwrap();
            m.swap(k, p);
            x.swap(k, p);
            let (pivot_rows, rest) = m.split_at_mut(k + 1);
            let pivot = &pivot_rows[k];
            for (off, row) in rest.iter_mut().enumerate() {
                let f = row[k] / pivot[k];
                for (rj, &pj) in row[k..].iter_mut().zip(&pivot[k..]) {
                    *rj -= f * pj;
                }
                x[k + 1 + off] -= f * x[k];
            }
        }
        for i in (0..n).rev() {
            for j in i + 1..n {
                let xj = x[j];
                x[i] -= m[i][j] * xj;
            }
            x[i] /= m[i][i];
        }
        x
    }

    fn transpose(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = a.len();
        (0..n).map(|i| (0..n).map(|j| a[j][i]).collect()).collect()
    }

    fn exact_cond_1(a: &[Vec<f64>]) -> f64 {
        let n = a.len();
        // ‖A⁻¹‖₁ column by column.
        let inv_norm = (0..n)
            .map(|j| {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                dense_solve(a, &e).iter().map(|v| v.abs()).sum::<f64>()
            })
            .fold(0.0, f64::max);
        norm_1(a) * inv_norm
    }

    fn estimate(a: &[Vec<f64>]) -> f64 {
        let at = transpose(a);
        condest_1norm(
            a.len(),
            norm_1(a),
            |b, x| x.copy_from_slice(&dense_solve(a, b)),
            |b, x| x.copy_from_slice(&dense_solve(&at, b)),
        )
    }

    #[test]
    fn condest_is_exact_on_diagonal_matrices() {
        let a = vec![
            vec![4.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let est = estimate(&a);
        assert!((est - 8.0).abs() < 1e-12, "κ₁ = 4/0.5 = 8, got {est}");
    }

    #[test]
    fn condest_lower_bounds_and_tracks_the_exact_value() {
        let a = vec![
            vec![10.0, -1.0, 0.0, -2.0],
            vec![-1.0, 7.0, -3.0, 0.0],
            vec![0.0, -3.0, 9.0, -1.0],
            vec![-2.0, 0.0, -1.0, 6.0],
        ];
        let exact = exact_cond_1(&a);
        let est = estimate(&a);
        assert!(est <= exact * (1.0 + 1e-9), "est {est} > exact {exact}");
        assert!(
            est >= exact / CONDEST_UNDERESTIMATE_FACTOR,
            "est {est} too far below exact {exact}"
        );
    }

    #[test]
    fn condest_flags_singularity_as_infinite() {
        // Solve against a singular matrix yields non-finite values.
        let est = condest_1norm(2, 1.0, |_, x| x.fill(f64::NAN), |_, x| x.fill(f64::NAN));
        assert_eq!(est, f64::INFINITY);
        assert_eq!(condest_1norm(0, 0.0, |_, _| (), |_, _| ()), 0.0);
    }

    #[test]
    fn geometric_decay_is_converging_with_a_rate() {
        let deltas: Vec<f64> = (0..10).map(|i| 8.0 * 0.5_f64.powi(i)).collect();
        let h = picard_rate(&deltas, 1e-6);
        assert_eq!(h.class, ConvergenceClass::Converging);
        assert!((h.contraction - 0.5).abs() < 1e-9);
        // last delta 8·0.5⁹ ≈ 1.56e-2; (ln(1e-6/1.56e-2))/ln(0.5) ≈ 13.9.
        assert_eq!(h.predicted_iterations, Some(14));
    }

    #[test]
    fn flat_history_is_stagnated() {
        let deltas = vec![0.5, 0.505, 0.495, 0.5, 0.501, 0.499];
        let h = picard_rate(&deltas, 1e-6);
        assert!(
            matches!(
                h.class,
                ConvergenceClass::Stagnated | ConvergenceClass::Oscillating
            ),
            "{h:?}"
        );
        assert!(h.predicted_iterations.is_none());
    }

    #[test]
    fn growth_is_diverging() {
        let deltas: Vec<f64> = (0..8).map(|i| 0.1 * 1.9_f64.powi(i)).collect();
        let h = picard_rate(&deltas, 1e-6);
        assert_eq!(h.class, ConvergenceClass::Diverging);
        assert!(h.contraction > 1.5);
    }

    #[test]
    fn alternating_growth_is_oscillating() {
        let mut deltas = Vec::new();
        let mut d = 1.0;
        for i in 0..10 {
            d *= if i % 2 == 0 { 1.6 } else { 0.65 };
            deltas.push(d);
        }
        let h = picard_rate(&deltas, 1e-6);
        assert_eq!(h.class, ConvergenceClass::Oscillating, "{h:?}");
    }

    #[test]
    fn short_history_is_unknown_and_converged_is_converging() {
        assert_eq!(picard_rate(&[], 1e-6).class, ConvergenceClass::Unknown);
        assert_eq!(picard_rate(&[0.5], 1e-6).class, ConvergenceClass::Unknown);
        let h = picard_rate(&[0.5, 1e-9], 1e-6);
        assert_eq!(h.class, ConvergenceClass::Converging);
    }

    #[test]
    fn health_report_round_trips_through_json() {
        let report = HealthReport {
            picard: PicardHealth {
                contraction: 0.42,
                predicted_iterations: Some(7),
                class: ConvergenceClass::Converging,
            },
            iterations: 12,
            last_delta: 3.2e-4,
            tolerance: 1e-4,
            condition_estimate: Some(1.8e6),
            residual_rel: Some(4.4e-13),
            kcl_imbalance_rel: None,
            pivot_growth: Some(1.9),
        };
        let text = report.to_json().to_pretty_string();
        let back = HealthReport::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn class_labels_round_trip() {
        for class in [
            ConvergenceClass::Converging,
            ConvergenceClass::Stagnated,
            ConvergenceClass::Oscillating,
            ConvergenceClass::Diverging,
            ConvergenceClass::Unknown,
        ] {
            assert_eq!(ConvergenceClass::from_label(class.label()), Some(class));
        }
        assert_eq!(ConvergenceClass::from_label("nope"), None);
    }
}
