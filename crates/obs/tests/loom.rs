//! Interleaving models for the lock-free observability layer.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p hotwire-obs --release --test loom
//! ```
//!
//! Under `--cfg loom` the crate's atomics facade (`src/sync.rs`) routes
//! every counter cell, histogram bucket, and tracing flag through the
//! `loom` crate, so these models exercise the *real* recording paths.
//! The workspace `loom` is the offline stress shim (`shims/loom`): it
//! explores interleavings by seeded preemption injection rather than
//! exhaustively, so a pass here is corroborating evidence for the
//! `// SAFETY(ordering):` justifications in the source, not a proof.
//! Each model states the invariant its justification relies on.
#![cfg(loom)]

use std::sync::Mutex;
use std::time::Duration;

use hotwire_obs::metrics;
use hotwire_obs::trace::{self, Level, LogConfig, LogFormat};

/// The registry and the tracing flags are process-global; models must
/// not interleave with each other (`reset` in one would corrupt the
/// counts another is asserting on).
static MODEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MODEL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// HW004 invariant for `Counter::add` (metrics.rs `RELAXED`): relaxed
/// `fetch_add` loses no increment under any interleaving — quiescent
/// totals are exact, which is what the serial-vs-parallel determinism
/// tests assume.
#[test]
fn counter_increments_are_exact() {
    let _guard = lock();
    loom::model(|| {
        let c = metrics::counter("loom.counter");
        let before = metrics::snapshot().counter("loom.counter");
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = c.clone();
                loom::thread::spawn(move || {
                    for _ in 0..4 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(
            metrics::snapshot().counter("loom.counter"),
            before + 12,
            "a relaxed fetch_add dropped an increment"
        );
    });
}

/// In-flight snapshots are monotone: a counter read in one snapshot
/// never exceeds the same counter in a later snapshot (per-cell atomic
/// monotonicity is all the relaxed ordering must provide — the SAFETY
/// comment on `RELAXED` documents that cross-cell tearing is allowed).
#[test]
fn concurrent_snapshots_are_monotone() {
    let _guard = lock();
    loom::model(|| {
        let c = metrics::counter("loom.monotone");
        let writer = {
            let c = c.clone();
            loom::thread::spawn(move || {
                for _ in 0..8 {
                    c.inc();
                }
            })
        };
        let mut last = metrics::snapshot().counter("loom.monotone");
        for _ in 0..4 {
            let now = metrics::snapshot().counter("loom.monotone");
            assert!(now >= last, "snapshot went backwards: {now} < {last}");
            last = now;
        }
        writer.join().expect("model thread panicked");
    });
}

/// HW004 invariant for `AtomicHistogram::record`/`snapshot`
/// (histogram.rs): concurrent recording into a timer's histogram is
/// count-exact once quiescent — bucket totals equal the number of
/// observations, and the quantile estimates stay bracketed by min/max.
#[test]
fn timer_histogram_counts_are_exact() {
    let _guard = lock();
    loom::model(|| {
        let t = metrics::timer("loom.hist");
        let before = metrics::snapshot()
            .timers
            .get("loom.hist")
            .map_or(0, |s| s.count);
        let handles: Vec<_> = (1..=3u64)
            .map(|k| {
                let t = t.clone();
                loom::thread::spawn(move || {
                    for i in 0..4u64 {
                        t.observe(Duration::from_nanos(k * 1000 + i * 37));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        let stats = metrics::snapshot().timers["loom.hist"];
        assert_eq!(stats.count, before + 12, "lost a timer observation");
        assert!(
            stats.p50_ms <= stats.p90_ms && stats.p90_ms <= stats.p99_ms,
            "histogram quantiles out of order: {stats:?}"
        );
    });
}

/// Counter increments racing `metrics::reset` never panic and never
/// manufacture counts: afterwards the counter reads at most the number
/// of increments that ran (handles interned before the reset keep
/// recording into detached cells, as the `reset` docs state).
#[test]
fn reset_during_increments_is_safe() {
    let _guard = lock();
    loom::model(|| {
        metrics::reset();
        let c = metrics::counter("loom.reset");
        let writer = {
            let c = c.clone();
            loom::thread::spawn(move || {
                for _ in 0..6 {
                    c.inc();
                }
            })
        };
        metrics::reset();
        writer.join().expect("model thread panicked");
        let survived = metrics::snapshot().counter("loom.reset");
        assert!(survived <= 6, "reset manufactured counts: {survived}");
        // Re-interning after the reset observes a live cell again.
        metrics::counter("loom.reset").inc();
        let after = metrics::snapshot().counter("loom.reset");
        assert!(
            (1..=7).contains(&after),
            "re-interned counter out of range: {after}"
        );
    });
    metrics::reset();
}

/// HW004 invariant for the tracing flags (trace.rs `install`): LEVEL
/// and FORMAT are each self-contained, so however `init` calls
/// interleave with `enabled` reads, the level filter stays internally
/// consistent (enabling a verbose level implies every severer one) and
/// settles on the last writer once quiescent.
#[test]
fn trace_flags_never_tear() {
    let _guard = lock();
    loom::model(|| {
        let a = loom::thread::spawn(|| {
            trace::init(LogConfig {
                level: Level::Debug,
                format: LogFormat::Json,
            });
        });
        let b = loom::thread::spawn(|| {
            trace::init(LogConfig {
                level: Level::Warn,
                format: LogFormat::Text,
            });
        });
        for _ in 0..4 {
            // Whatever interleaving, the filter is monotone in severity.
            if trace::enabled(Level::Debug) {
                assert!(trace::enabled(Level::Warn) && trace::enabled(Level::Error));
            }
            if trace::enabled(Level::Warn) {
                assert!(trace::enabled(Level::Error));
            }
        }
        a.join().expect("model thread panicked");
        b.join().expect("model thread panicked");
        // Quiescent: last writer won; both installed configs enable Error.
        assert!(trace::enabled(Level::Error));
        assert!(!trace::enabled(Level::Trace));
        // Leave the sink quiet for whatever runs next.
        trace::init(LogConfig {
            level: Level::Error,
            format: LogFormat::Text,
        });
    });
}
