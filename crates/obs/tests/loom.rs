//! Interleaving models for the lock-free observability layer.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p hotwire-obs --release --test loom
//! ```
//!
//! Under `--cfg loom` the crate's atomics facade (`src/sync.rs`) routes
//! every counter cell, histogram bucket, and tracing flag through the
//! `loom` crate, so these models exercise the *real* recording paths.
//! The workspace `loom` is the offline stress shim (`shims/loom`): it
//! explores interleavings by seeded preemption injection rather than
//! exhaustively, so a pass here is corroborating evidence for the
//! `// SAFETY(ordering):` justifications in the source, not a proof.
//! Each model states the invariant its justification relies on.
#![cfg(loom)]

use std::sync::Mutex;
use std::time::Duration;

use hotwire_obs::trace::{self, Level, LogConfig, LogFormat};
use hotwire_obs::{metrics, recorder};
use hotwire_obs::{spantree, SpanTrace};

/// The registry and the tracing flags are process-global; models must
/// not interleave with each other (`reset` in one would corrupt the
/// counts another is asserting on).
static MODEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MODEL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// HW004 invariant for `Counter::add` (metrics.rs `RELAXED`): relaxed
/// `fetch_add` loses no increment under any interleaving — quiescent
/// totals are exact, which is what the serial-vs-parallel determinism
/// tests assume.
#[test]
fn counter_increments_are_exact() {
    let _guard = lock();
    loom::model(|| {
        let c = metrics::counter("loom.counter");
        let before = metrics::snapshot().counter("loom.counter");
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = c.clone();
                loom::thread::spawn(move || {
                    for _ in 0..4 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(
            metrics::snapshot().counter("loom.counter"),
            before + 12,
            "a relaxed fetch_add dropped an increment"
        );
    });
}

/// In-flight snapshots are monotone: a counter read in one snapshot
/// never exceeds the same counter in a later snapshot (per-cell atomic
/// monotonicity is all the relaxed ordering must provide — the SAFETY
/// comment on `RELAXED` documents that cross-cell tearing is allowed).
#[test]
fn concurrent_snapshots_are_monotone() {
    let _guard = lock();
    loom::model(|| {
        let c = metrics::counter("loom.monotone");
        let writer = {
            let c = c.clone();
            loom::thread::spawn(move || {
                for _ in 0..8 {
                    c.inc();
                }
            })
        };
        let mut last = metrics::snapshot().counter("loom.monotone");
        for _ in 0..4 {
            let now = metrics::snapshot().counter("loom.monotone");
            assert!(now >= last, "snapshot went backwards: {now} < {last}");
            last = now;
        }
        writer.join().expect("model thread panicked");
    });
}

/// HW004 invariant for `AtomicHistogram::record`/`snapshot`
/// (histogram.rs): concurrent recording into a timer's histogram is
/// count-exact once quiescent — bucket totals equal the number of
/// observations, and the quantile estimates stay bracketed by min/max.
#[test]
fn timer_histogram_counts_are_exact() {
    let _guard = lock();
    loom::model(|| {
        let t = metrics::timer("loom.hist");
        let before = metrics::snapshot()
            .timers
            .get("loom.hist")
            .map_or(0, |s| s.count);
        let handles: Vec<_> = (1..=3u64)
            .map(|k| {
                let t = t.clone();
                loom::thread::spawn(move || {
                    for i in 0..4u64 {
                        t.observe(Duration::from_nanos(k * 1000 + i * 37));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        let stats = metrics::snapshot().timers["loom.hist"];
        assert_eq!(stats.count, before + 12, "lost a timer observation");
        assert!(
            stats.p50_ms <= stats.p90_ms && stats.p90_ms <= stats.p99_ms,
            "histogram quantiles out of order: {stats:?}"
        );
    });
}

/// Counter increments racing `metrics::reset` never panic and never
/// manufacture counts: afterwards the counter reads at most the number
/// of increments that ran (handles interned before the reset keep
/// recording into detached cells, as the `reset` docs state).
#[test]
fn reset_during_increments_is_safe() {
    let _guard = lock();
    loom::model(|| {
        metrics::reset();
        let c = metrics::counter("loom.reset");
        let writer = {
            let c = c.clone();
            loom::thread::spawn(move || {
                for _ in 0..6 {
                    c.inc();
                }
            })
        };
        metrics::reset();
        writer.join().expect("model thread panicked");
        let survived = metrics::snapshot().counter("loom.reset");
        assert!(survived <= 6, "reset manufactured counts: {survived}");
        // Re-interning after the reset observes a live cell again.
        metrics::counter("loom.reset").inc();
        let after = metrics::snapshot().counter("loom.reset");
        assert!(
            (1..=7).contains(&after),
            "re-interned counter out of range: {after}"
        );
    });
    metrics::reset();
}

/// HW004 invariant for the span-capture gate (spantree.rs `RECORDING`,
/// `NEXT_SPAN_ID`, `NEXT_TID` — all relaxed): recorder threads racing a
/// drain never corrupt the trace. Every drained trace must be
/// well-formed on its own (unique IDs, non-negative durations, a Chrome
/// stream that parses back balanced), IDs never repeat across
/// consecutive drains, and a drain taken while quiescent is complete —
/// exactly the guarantees the SAFETY comments on those atomics claim.
#[test]
fn trace_capture_drain_is_complete_and_balanced() {
    let _guard = lock();

    fn assert_well_formed(t: &SpanTrace) -> Vec<u64> {
        let mut ids = Vec::new();
        for s in &t.spans {
            assert!(s.dur_us >= 0.0, "negative duration: {s:?}");
            ids.push(s.id);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate span IDs in one drain");
        // The Chrome writer must emit a balanced, exactly-invertible
        // stream for whatever the racing drain assembled.
        let back = SpanTrace::from_chrome(&t.to_chrome()).expect("chrome stream parses back");
        assert_eq!(&back, t, "chrome round trip changed the drained trace");
        ids
    }

    loom::model(|| {
        spantree::capture_start();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                loom::thread::spawn(|| {
                    for _ in 0..3 {
                        let _outer = trace::span("loom.capture.outer");
                        let _inner = trace::span("loom.capture.inner");
                    }
                })
            })
            .collect();
        // Drain while the recorders are mid-span, then restart: spans
        // cut in half by the race must be auto-closed in the first
        // drain and their late end events discarded by the second.
        let racing = spantree::capture_take();
        spantree::capture_start();
        for h in workers {
            h.join().expect("model thread panicked");
        }
        let rest = spantree::capture_take();

        let mut ids = assert_well_formed(&racing);
        ids.extend(assert_well_formed(&rest));
        let unique: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "a span ID leaked across drains");
        assert!(
            ids.len() <= 12,
            "two drains manufactured spans: {} > 12 begun",
            ids.len()
        );

        // Quiescent drain is complete: with no racing recorder, the
        // capture holds exactly what was opened, correctly nested.
        spantree::capture_start();
        {
            let _outer = trace::span("loom.capture.outer");
            let _inner = trace::span("loom.capture.inner");
        }
        let quiet = spantree::capture_take();
        assert_eq!(quiet.spans.len(), 2, "quiescent drain lost a span");
        let outer = quiet
            .spans
            .iter()
            .find(|s| s.name == "loom.capture.outer")
            .expect("outer span drained");
        let inner = quiet
            .spans
            .iter()
            .find(|s| s.name == "loom.capture.inner")
            .expect("inner span drained");
        assert_eq!(inner.parent, Some(outer.id), "nesting lost in the drain");
        assert_eq!(outer.parent, None);
    });
}

/// HW004 invariant for the tracing flags (trace.rs `install`): LEVEL
/// and FORMAT are each self-contained, so however `init` calls
/// interleave with `enabled` reads, the level filter stays internally
/// consistent (enabling a verbose level implies every severer one) and
/// settles on the last writer once quiescent.
#[test]
fn trace_flags_never_tear() {
    let _guard = lock();
    loom::model(|| {
        let a = loom::thread::spawn(|| {
            trace::init(LogConfig {
                level: Level::Debug,
                format: LogFormat::Json,
            });
        });
        let b = loom::thread::spawn(|| {
            trace::init(LogConfig {
                level: Level::Warn,
                format: LogFormat::Text,
            });
        });
        for _ in 0..4 {
            // Whatever interleaving, the filter is monotone in severity.
            if trace::enabled(Level::Debug) {
                assert!(trace::enabled(Level::Warn) && trace::enabled(Level::Error));
            }
            if trace::enabled(Level::Warn) {
                assert!(trace::enabled(Level::Error));
            }
        }
        a.join().expect("model thread panicked");
        b.join().expect("model thread panicked");
        // Quiescent: last writer won; both installed configs enable Error.
        assert!(trace::enabled(Level::Error));
        assert!(!trace::enabled(Level::Trace));
        // Leave the sink quiet for whatever runs next.
        trace::init(LogConfig {
            level: Level::Error,
            format: LogFormat::Text,
        });
    });
}

/// SAFETY(ordering) invariant for the flight recorder's head counter
/// (recorder.rs `RELAXED`): the single `fetch_add` hands out *unique*
/// sequence numbers under any interleaving, and since the payload is
/// published through each slot's Mutex, a drain after the writers join
/// observes every completed write exactly once, in sequence order.
#[test]
fn recorder_ring_writes_are_unique_and_fully_drained() {
    let _guard = lock();
    loom::model(|| {
        recorder::clear();
        let handles: Vec<_> = (0..3)
            .map(|w| {
                loom::thread::spawn(move || {
                    for i in 0..4 {
                        recorder::record("loom.ring", format_args!("writer {w} event {i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(recorder::recorded(), 12, "an increment was lost");
        // 12 « CAPACITY, so nothing wrapped: the drain must hold every
        // completed write exactly once.
        let events = recorder::snapshot_events();
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let distinct = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), distinct, "duplicate sequence numbers");
        assert_eq!(distinct, 12, "a completed write is missing from the drain");
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "drain is not in sequence order"
        );
        recorder::clear();
    });
}

/// A drain racing live writers must only see fully-published events:
/// the slot Mutex is the happens-before edge, so no snapshot can
/// observe a torn payload or a sequence number without its detail.
#[test]
fn recorder_drain_races_with_writers_without_tearing() {
    let _guard = lock();
    loom::model(|| {
        recorder::clear();
        let writer = loom::thread::spawn(|| {
            for i in 0..6 {
                recorder::record("loom.race", format_args!("event {i}"));
            }
        });
        // Drain mid-flight: whatever subset is visible is well-formed.
        let seen = recorder::snapshot_events();
        for e in &seen {
            assert_eq!(e.kind, "loom.race", "foreign event in a cleared ring");
            assert!(
                e.detail.starts_with("event "),
                "torn or partial payload: {e:?}"
            );
        }
        writer.join().expect("model thread panicked");
        assert_eq!(recorder::snapshot_events().len(), 6);
        recorder::clear();
    });
}
