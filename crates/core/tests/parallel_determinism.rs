//! The parallel sweep engine must be *bit-identical* to the serial
//! reference: same points, same order, same bits — CSV renderings byte
//! for byte. A single test fn sequences every thread-count change, so
//! there is no env-var race inside this binary.

use hotwire_core::rules::{DesignRuleSpec, DesignRuleTable};
use hotwire_core::sweep::{
    duty_cycle_sweep, duty_cycle_sweep_serial, j0_sweep, log_spaced, SweepPoint,
};
use hotwire_core::SelfConsistentProblem;
use hotwire_tech::{presets, Dielectric, Metal};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire_units::{CurrentDensity, Length};

fn fig2_problem() -> SelfConsistentProblem {
    let um = Length::from_micrometers;
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
        .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
        .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
        .phi(QUASI_1D_PHI)
        .duty_cycle(0.1)
        .build()
        .unwrap()
}

/// Renders sweep points the way the figure CSV exports do — full float
/// round-trip precision, so byte equality ⇔ bit equality.
fn sweep_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("duty_cycle,j_peak,j_rms,j_avg,t_metal,em_only_peak\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            p.duty_cycle,
            p.solution.j_peak.value(),
            p.solution.j_rms.value(),
            p.solution.j_avg.value(),
            p.solution.metal_temperature.value(),
            p.em_only_peak.value(),
        ));
    }
    out
}

#[test]
fn parallel_sweeps_are_bit_identical_to_serial() {
    // Force real multi-threading even on a single-core runner, so the
    // chunk-stitch ordering path is actually exercised.
    std::env::set_var("RAYON_NUM_THREADS", "4");

    let problem = fig2_problem();
    let rs = log_spaced(1e-4, 1.0, 21);

    // duty-cycle sweep: parallel vs the serial reference
    let par = duty_cycle_sweep(&problem, &rs).unwrap();
    let ser = duty_cycle_sweep_serial(&problem, &rs).unwrap();
    assert_eq!(par.len(), ser.len());
    assert_eq!(
        sweep_csv(&par).into_bytes(),
        sweep_csv(&ser).into_bytes(),
        "parallel duty-cycle sweep must be byte-identical to serial"
    );
    // Debug formatting round-trips f64 exactly — catches fields the CSV
    // doesn't render.
    assert_eq!(format!("{par:?}"), format!("{ser:?}"));

    // j₀ sweep: the flattened fan-out must regroup exactly like nested
    // serial sweeps.
    let j0s = [
        CurrentDensity::from_amps_per_cm2(6.0e5),
        CurrentDensity::from_amps_per_cm2(1.2e6),
        CurrentDensity::from_amps_per_cm2(1.8e6),
    ];
    let series = j0_sweep(&problem, &j0s, &rs).unwrap();
    assert_eq!(series.len(), j0s.len());
    for (s, &j0) in series.iter().zip(&j0s) {
        assert_eq!(s.j0, j0);
        let reference = duty_cycle_sweep_serial(&problem.with_design_rule_j0(j0), &rs).unwrap();
        assert_eq!(format!("{:?}", s.points), format!("{reference:?}"));
    }

    // design-rule table: 4 threads vs 1 thread, byte-identical CSV
    let tech = presets::ntrs_250nm();
    let spec = DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(6.0e5));
    let t4 = DesignRuleTable::generate(&spec).unwrap();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let t1 = DesignRuleTable::generate(&spec).unwrap();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert_eq!(
        t4.to_csv().into_bytes(),
        t1.to_csv().into_bytes(),
        "parallel table generation must be byte-identical to serial"
    );
    // (case, layer, dielectric) nesting order preserved
    let mut expected = Vec::new();
    for case in ["Signal Lines (r = 0.1)", "Power Lines (r = 1.0)"] {
        for layer in ["M5", "M6"] {
            for d in ["oxide", "HSQ", "polyimide"] {
                expected.push((case, layer, d));
            }
        }
    }
    let got: Vec<(&str, &str, &str)> = t4
        .entries
        .iter()
        .map(|e| (e.case.as_str(), e.layer.as_str(), e.dielectric.as_str()))
        .collect();
    assert_eq!(got, expected);
}
