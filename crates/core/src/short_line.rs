//! Thermally-short-line corrections — the caveat of the paper's §3.2.
//!
//! The baseline analysis assumes *thermally long* lines (`L ≫ λ`), whose
//! interior sits at the full self-heating plateau: the worst case, and
//! the right rule for global wiring. Inter-block wires of length
//! comparable to the healing length λ are cooled by their end vias and
//! run measurably cooler, so the same reliability goal admits a higher
//! current density. This module quantifies that relaxation by folding the
//! fin-model average-temperature correction into the self-consistent
//! heating constant.

use hotwire_thermal::fin::{healing_length, FinProfile};
use hotwire_thermal::impedance::InsulatorStack;
use hotwire_units::{Length, TemperatureDelta};

use crate::{CoreError, SelfConsistentProblem, SelfConsistentSolution};

/// The result of a short-line-corrected solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortLineSolution {
    /// The corrected self-consistent solution.
    pub solution: SelfConsistentSolution,
    /// The healing length λ of the line.
    pub healing_length: Length,
    /// The applied correction factor `⟨ΔT⟩/ΔT∞ ∈ (0, 1]`.
    pub correction: f64,
    /// Whether the line qualifies as thermally long (`L > 5λ`), in which
    /// case the correction is negligible and the baseline rule applies.
    pub thermally_long: bool,
}

/// Solves the self-consistent problem with the via-cooled (fin)
/// correction for a line of finite length.
///
/// The EM-limiting temperature of a short line is taken as the
/// *length-averaged* rise (void nucleation integrates damage along the
/// line); the effective heating constant becomes `κ·c(L/λ)` with
/// `c = 1 − tanh(L/2λ)/(L/2λ)`.
///
/// # Errors
///
/// Propagates fin-model and solver errors.
///
/// # Examples
///
/// ```
/// use hotwire_core::short_line::solve_with_fin_correction;
/// use hotwire_core::SelfConsistentProblem;
/// use hotwire_tech::{Dielectric, Metal};
/// use hotwire_thermal::impedance::{InsulatorStack, LineGeometry};
/// use hotwire_units::Length;
///
/// let um = Length::from_micrometers;
/// let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
/// // A 20 µm inter-block wire (λ-scale; λ ≈ 8 µm here) at a harsh duty
/// // cycle:
/// let problem = SelfConsistentProblem::builder()
///     .metal(Metal::copper())
///     .line(LineGeometry::new(um(1.0), um(0.5), um(20.0))?)
///     .stack(stack.clone())
///     .duty_cycle(0.01)
///     .build()?;
/// let long = problem.solve()?;
/// let short = solve_with_fin_correction(&problem, &stack)?;
/// assert!(!short.thermally_long);
/// // Via cooling buys extra current headroom:
/// assert!(short.solution.j_peak > long.j_peak);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_with_fin_correction(
    problem: &SelfConsistentProblem,
    stack: &InsulatorStack,
) -> Result<ShortLineSolution, CoreError> {
    // φ is already folded into the problem's heating constant; λ needs the
    // stack. Recover the spreading-consistent λ from the same stack with
    // the problem's implicit φ by matching the heating constant:
    // κ = t_m·W·Σ(t/k)/W_eff  ⇒  W_eff = t_m·W·Σ(t/k)/κ.
    let line = problem.line();
    let series = stack.series_resistance_thickness();
    if stack.is_empty() || series <= 0.0 {
        return Err(CoreError::SolveFailed {
            message: "short-line correction needs a non-empty insulator stack".to_owned(),
        });
    }
    let weff = line.cross_section().value() * series / problem.heating_constant();
    let phi = (Length::new(weff) - line.width()) / stack.total_thickness();
    let lambda = healing_length(problem.metal(), line, stack, phi.max(0.0))?;

    // The correction factor only depends on L/λ; use a unit plateau.
    let profile = FinProfile::new(TemperatureDelta::new(1.0), lambda, line.length())?;
    let correction = profile.short_line_correction();
    let thermally_long = profile.is_thermally_long(5.0);

    let corrected = problem.with_heating_constant(problem.heating_constant() * correction)?;
    Ok(ShortLineSolution {
        solution: corrected.solve()?,
        healing_length: lambda,
        correction,
        thermally_long,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::{Dielectric, Metal};
    use hotwire_thermal::impedance::LineGeometry;
    use hotwire_units::CurrentDensity;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn problem(length_um: f64) -> (SelfConsistentProblem, InsulatorStack) {
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let p = SelfConsistentProblem::builder()
            .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
            .line(LineGeometry::new(um(1.0), um(0.5), um(length_um)).unwrap())
            .stack(stack.clone())
            .phi(2.45)
            .duty_cycle(0.01)
            .build()
            .unwrap();
        (p, stack)
    }

    #[test]
    fn long_line_correction_is_negligible() {
        let (p, stack) = problem(5000.0);
        let base = p.solve().unwrap();
        let corrected = solve_with_fin_correction(&p, &stack).unwrap();
        assert!(corrected.thermally_long);
        assert!(corrected.correction > 0.95);
        let rel = (corrected.solution.j_peak.value() - base.j_peak.value()) / base.j_peak.value();
        assert!(rel < 0.05, "long lines keep the baseline rule (Δ = {rel})");
    }

    #[test]
    fn short_line_gains_headroom() {
        let (p, stack) = problem(15.0);
        let base = p.solve().unwrap();
        let corrected = solve_with_fin_correction(&p, &stack).unwrap();
        assert!(!corrected.thermally_long);
        assert!(corrected.correction < 0.7, "c = {}", corrected.correction);
        assert!(corrected.solution.j_peak > base.j_peak);
        assert!(corrected.solution.metal_temperature <= base.metal_temperature);
    }

    #[test]
    fn correction_monotone_in_length() {
        let mut prev_gain = f64::INFINITY;
        for l in [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0] {
            let (p, stack) = problem(l);
            let base = p.solve().unwrap();
            let corrected = solve_with_fin_correction(&p, &stack).unwrap();
            let gain = corrected.solution.j_peak.value() / base.j_peak.value();
            assert!(gain >= 1.0 - 1e-9);
            assert!(
                gain <= prev_gain + 1e-9,
                "shorter lines gain more: L = {l} µm gain {gain} vs prev {prev_gain}"
            );
            prev_gain = gain;
        }
    }

    #[test]
    fn healing_length_in_physical_range() {
        let (p, stack) = problem(100.0);
        let s = solve_with_fin_correction(&p, &stack).unwrap();
        let lam = s.healing_length.to_micrometers();
        assert!((5.0..400.0).contains(&lam), "λ = {lam} µm");
    }

    #[test]
    fn empty_stack_rejected() {
        let (p, _) = problem(100.0);
        assert!(solve_with_fin_correction(&p, &InsulatorStack::new()).is_err());
    }
}
