//! Design-rule table generation — the engine behind the paper's Tables
//! 2, 3, 4 (per-technology maximum allowed peak current densities) and
//! Table 7 (3-D array coupling).

use hotwire_tech::{Dielectric, Technology};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire_units::{CurrentDensity, Kelvin, Length};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{CoreError, SelfConsistentProblem, SelfConsistentSolution};

/// Builds the eq.-(15) insulator stack under a metallization level: ILD
/// slabs use the technology's inter-level dielectric, while the thickness
/// bands occupied by lower metal levels are treated as filled with the
/// candidate *intra-level* (gap-fill) dielectric — the worst-case
/// dielectric-only vertical path of the paper's quasi-1-D treatment.
///
/// # Errors
///
/// Returns [`CoreError::SolveFailed`] for an out-of-range layer index.
pub fn layer_stack(
    tech: &Technology,
    layer_index: usize,
    intra: &Dielectric,
) -> Result<InsulatorStack, CoreError> {
    if layer_index >= tech.layers().len() {
        return Err(CoreError::SolveFailed {
            message: format!(
                "layer index {layer_index} out of range for {}-level stack",
                tech.layers().len()
            ),
        });
    }
    let inter = tech.inter_level_dielectric();
    let mut stack = InsulatorStack::new();
    for lower in &tech.layers()[..layer_index] {
        stack = stack
            .with_layer(lower.ild_below(), inter)
            .with_layer(lower.thickness(), intra);
    }
    Ok(stack.with_layer(tech.layers()[layer_index].ild_below(), inter))
}

/// A labelled duty-cycle case (the paper's "Signal Lines (r = 0.1)" /
/// "Power Lines (r = 1.0)" blocks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DutyCycleCase {
    /// Human-readable label.
    pub label: String,
    /// The duty cycle.
    pub r: f64,
}

impl DutyCycleCase {
    /// The paper's signal-line case, r = 0.1.
    #[must_use]
    pub fn signal() -> Self {
        Self {
            label: "Signal Lines (r = 0.1)".to_owned(),
            r: 0.1,
        }
    }

    /// The paper's power-line case, r = 1.0.
    #[must_use]
    pub fn power() -> Self {
        Self {
            label: "Power Lines (r = 1.0)".to_owned(),
            r: 1.0,
        }
    }
}

/// Specification of a design-rule table run.
#[derive(Debug, Clone)]
pub struct DesignRuleSpec<'a> {
    /// The technology (geometry, metal, reference temperature).
    pub technology: &'a Technology,
    /// Names of the layers to tabulate (e.g. the top two global levels).
    pub layers: Vec<String>,
    /// Candidate intra-level dielectrics (Table 2's oxide/HSQ/polyimide
    /// columns).
    pub dielectrics: Vec<Dielectric>,
    /// Duty-cycle cases (signal/power blocks).
    pub duty_cycles: Vec<DutyCycleCase>,
    /// The EM design-rule density j₀ at the reference temperature.
    pub j0: CurrentDensity,
    /// Heat-spreading parameter φ (the paper uses its extracted 2.45).
    pub phi: f64,
    /// Line length for the thermally-long analysis (default 1 mm).
    pub line_length: Length,
}

impl<'a> DesignRuleSpec<'a> {
    /// A spec covering the technology's top `n_top` levels with the
    /// paper's standard dielectric set and signal/power duty cycles.
    #[must_use]
    pub fn paper_defaults(technology: &'a Technology, n_top: usize, j0: CurrentDensity) -> Self {
        let layers = technology
            .layers()
            .iter()
            .rev()
            .take(n_top)
            .rev()
            .map(|l| l.name().to_owned())
            .collect();
        Self {
            technology,
            layers,
            dielectrics: vec![
                Dielectric::oxide(),
                Dielectric::hsq(),
                Dielectric::polyimide(),
            ],
            duty_cycles: vec![DutyCycleCase::signal(), DutyCycleCase::power()],
            j0,
            phi: hotwire_thermal::impedance::QUASI_2D_PHI,
            line_length: Length::from_micrometers(1000.0),
        }
    }
}

/// One cell of a design-rule table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignRuleEntry {
    /// Technology name.
    pub technology: String,
    /// Metal layer name.
    pub layer: String,
    /// Intra-level dielectric name.
    pub dielectric: String,
    /// Duty-cycle case label.
    pub case: String,
    /// Duty cycle.
    pub r: f64,
    /// The self-consistent solution (j_peak etc.).
    pub solution: SelfConsistentSolution,
}

/// A generated design-rule table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignRuleTable {
    /// All computed entries, in (case, layer, dielectric) order.
    pub entries: Vec<DesignRuleEntry>,
}

impl DesignRuleTable {
    /// Generates the table for a spec. The case × layer × dielectric
    /// product is resolved up front (so unknown-layer errors surface
    /// deterministically before any solving), then every cell solves in
    /// parallel; entry order is the same (case, layer, dielectric)
    /// nesting the serial loop produced.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; unknown layer names produce
    /// [`CoreError::SolveFailed`].
    pub fn generate(spec: &DesignRuleSpec<'_>) -> Result<Self, CoreError> {
        let tech = spec.technology;
        let metal = tech.metal().clone().with_design_rule_j0(spec.j0);
        let mut cells = Vec::new();
        for case in &spec.duty_cycles {
            for layer_name in &spec.layers {
                let layer = tech
                    .layer(layer_name)
                    .ok_or_else(|| CoreError::SolveFailed {
                        message: format!("unknown layer `{layer_name}`"),
                    })?;
                for dielectric in &spec.dielectrics {
                    cells.push((case, layer_name, layer, dielectric));
                }
            }
        }
        let entries = cells
            .par_iter()
            .map(|&(case, layer_name, layer, dielectric)| {
                let stack = layer_stack(tech, layer.index(), dielectric)?;
                let line = LineGeometry::new(layer.width(), layer.thickness(), spec.line_length)?;
                let problem = SelfConsistentProblem::builder()
                    .metal(metal.clone())
                    .line(line)
                    .stack(stack)
                    .phi(spec.phi)
                    .duty_cycle(case.r)
                    .reference_temperature(tech.reference_temperature())
                    .build()?;
                Ok(DesignRuleEntry {
                    technology: tech.name().to_owned(),
                    layer: layer_name.clone(),
                    dielectric: dielectric.name().to_owned(),
                    case: case.label.clone(),
                    r: case.r,
                    solution: problem.solve()?,
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(Self { entries })
    }

    /// Looks an entry up by (case label, layer, dielectric).
    #[must_use]
    pub fn entry(&self, case: &str, layer: &str, dielectric: &str) -> Option<&DesignRuleEntry> {
        self.entries
            .iter()
            .find(|e| e.case == case && e.layer == layer && e.dielectric == dielectric)
    }

    /// The allowed peak density of an entry, in MA/cm² (convenience for
    /// table rendering and tests).
    #[must_use]
    pub fn j_peak_ma_cm2(&self, case: &str, layer: &str, dielectric: &str) -> Option<f64> {
        self.entry(case, layer, dielectric)
            .map(|e| e.solution.j_peak.to_mega_amps_per_cm2())
    }
}

impl DesignRuleTable {
    /// Renders the table as CSV (one row per entry), for spreadsheet
    /// import into a sign-off flow.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "technology,layer,dielectric,case,duty_cycle,metal_temperature_c,j_peak_ma_cm2,j_rms_ma_cm2,j_avg_ma_cm2\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},\"{}\",{},{:.4},{:.5},{:.5},{:.5}\n",
                e.technology,
                e.layer,
                e.dielectric,
                e.case,
                e.r,
                e.solution.metal_temperature.to_celsius().value(),
                e.solution.j_peak.to_mega_amps_per_cm2(),
                e.solution.j_rms.to_mega_amps_per_cm2(),
                e.solution.j_avg.to_mega_amps_per_cm2(),
            ));
        }
        out
    }
}

impl std::fmt::Display for DesignRuleTable {
    /// Renders the table in the paper's layout: one block per duty-cycle
    /// case, layers as rows, dielectrics as columns, j_peak in MA/cm².
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut cases: Vec<&str> = Vec::new();
        let mut layers: Vec<&str> = Vec::new();
        let mut dielectrics: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !cases.contains(&e.case.as_str()) {
                cases.push(&e.case);
            }
            if !layers.contains(&e.layer.as_str()) {
                layers.push(&e.layer);
            }
            if !dielectrics.contains(&e.dielectric.as_str()) {
                dielectrics.push(&e.dielectric);
            }
        }
        for case in &cases {
            writeln!(f, "{case}")?;
            write!(f, "{:<8}", "Metal")?;
            for d in &dielectrics {
                write!(f, "{d:>12}")?;
            }
            writeln!(f)?;
            for layer in &layers {
                if !self
                    .entries
                    .iter()
                    .any(|e| e.case == *case && e.layer == *layer)
                {
                    continue;
                }
                write!(f, "{layer:<8}")?;
                for d in &dielectrics {
                    match self.j_peak_ma_cm2(case, layer, d) {
                        Some(v) => write!(f, "{v:>12.3}")?,
                        None => write!(f, "{:>12}", "-")?,
                    }
                }
                writeln!(f)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The Table 7 comparison: allowed peak density for a line inside a dense
/// (all-lines-hot) array vs the same line isolated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayComparison {
    /// Allowed j_peak with all neighbours heated.
    pub j_peak_dense: CurrentDensity,
    /// Allowed j_peak for the isolated line.
    pub j_peak_isolated: CurrentDensity,
    /// Fractional reduction `1 − dense/isolated` (the paper reports
    /// ≈ 40 %).
    pub reduction: f64,
}

/// Solves the self-consistent problem twice with numerically extracted
/// heating constants — `rise_dense` and `rise_isolated` are the target
/// line's temperature rise per unit line power (K/(W/m)) from the
/// finite-volume array solver — and compares the allowed peak densities.
///
/// The conversion to the volumetric constant of eq. (18) is
/// `κ = rise · W_m · t_m` (line power = j²·ρ·W·t per meter).
///
/// # Errors
///
/// Propagates solver errors; rejects non-positive rises.
pub fn array_comparison(
    problem: &SelfConsistentProblem,
    rise_dense: f64,
    rise_isolated: f64,
) -> Result<ArrayComparison, CoreError> {
    if !(rise_dense > 0.0 && rise_isolated > 0.0) {
        return Err(CoreError::SolveFailed {
            message: "temperature rises must be positive".to_owned(),
        });
    }
    let line = problem.line();
    let area = line.cross_section().value();
    let dense = problem.with_heating_constant(rise_dense * area)?.solve()?;
    let isolated = problem
        .with_heating_constant(rise_isolated * area)?
        .solve()?;
    Ok(ArrayComparison {
        j_peak_dense: dense.j_peak,
        j_peak_isolated: isolated.j_peak,
        reduction: 1.0 - dense.j_peak / isolated.j_peak,
    })
}

/// Re-export of [`Kelvin`] used in rendered summaries (kept here so table
/// consumers need only this module).
pub type MetalTemperature = Kelvin;

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::presets;

    fn table_250nm(j0_a_cm2: f64) -> DesignRuleTable {
        let tech = presets::ntrs_250nm();
        let spec =
            DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(j0_a_cm2));
        DesignRuleTable::generate(&spec).unwrap()
    }

    #[test]
    fn dielectric_ordering_matches_table2() {
        // oxide > HSQ > polyimide for every (case, layer).
        let t = table_250nm(6.0e5);
        for case in ["Signal Lines (r = 0.1)", "Power Lines (r = 1.0)"] {
            for layer in ["M5", "M6"] {
                let ox = t.j_peak_ma_cm2(case, layer, "oxide").unwrap();
                let hsq = t.j_peak_ma_cm2(case, layer, "HSQ").unwrap();
                let poly = t.j_peak_ma_cm2(case, layer, "polyimide").unwrap();
                assert!(ox > hsq, "{case}/{layer}: oxide {ox} vs HSQ {hsq}");
                assert!(hsq > poly, "{case}/{layer}: HSQ {hsq} vs polyimide {poly}");
            }
        }
    }

    #[test]
    fn upper_levels_allow_less_current() {
        // Within a node, going up the metallization lowers j_peak.
        let t = table_250nm(6.0e5);
        for case in ["Signal Lines (r = 0.1)"] {
            for d in ["oxide", "HSQ", "polyimide"] {
                let m5 = t.j_peak_ma_cm2(case, "M5", d).unwrap();
                let m6 = t.j_peak_ma_cm2(case, "M6", d).unwrap();
                assert!(m6 < m5, "{case}/{d}: M6 {m6} must be < M5 {m5}");
            }
        }
    }

    #[test]
    fn signal_lines_allow_higher_peaks_than_power_lines() {
        let t = table_250nm(6.0e5);
        for layer in ["M5", "M6"] {
            for d in ["oxide", "HSQ", "polyimide"] {
                let sig = t.j_peak_ma_cm2("Signal Lines (r = 0.1)", layer, d).unwrap();
                let pow = t.j_peak_ma_cm2("Power Lines (r = 1.0)", layer, d).unwrap();
                assert!(sig > pow, "{layer}/{d}: signal {sig} vs power {pow}");
            }
        }
    }

    #[test]
    fn magnitudes_in_table2_range() {
        // Table 2's 0.25 µm block sits in the 0.7–6 MA/cm² decade.
        let t = table_250nm(6.0e5);
        for e in &t.entries {
            let j = e.solution.j_peak.to_mega_amps_per_cm2();
            assert!((0.2..20.0).contains(&j), "{}/{}: {j}", e.case, e.layer);
        }
    }

    #[test]
    fn higher_j0_raises_table3_over_table2() {
        let t2 = table_250nm(6.0e5);
        let t3 = table_250nm(1.8e6);
        for (a, b) in t2.entries.iter().zip(&t3.entries) {
            assert!(b.solution.j_peak > a.solution.j_peak);
            // but by less than the 3× j₀ ratio once heating bites (signal):
            if a.r < 1.0 {
                let gain = b.solution.j_peak / a.solution.j_peak;
                assert!(gain < 3.0, "gain = {gain}");
            }
        }
    }

    #[test]
    fn alcu_allows_less_than_copper_for_signal_lines() {
        // Table 4 vs Table 2 at the same j₀: AlCu's higher ρ means more
        // self-heating, so lower allowed peaks where heating matters.
        let cu = table_250nm(6.0e5);
        let tech = presets::ntrs_250nm_alcu();
        let spec =
            DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(6.0e5));
        let al = DesignRuleTable::generate(&spec).unwrap();
        for layer in ["M5", "M6"] {
            let j_cu = cu
                .j_peak_ma_cm2("Signal Lines (r = 0.1)", layer, "oxide")
                .unwrap();
            let j_al = al
                .j_peak_ma_cm2("Signal Lines (r = 0.1)", layer, "oxide")
                .unwrap();
            assert!(j_al < j_cu, "{layer}: AlCu {j_al} vs Cu {j_cu}");
        }
    }

    #[test]
    fn hundred_nm_node_tabulates_m7_m8() {
        let tech = presets::ntrs_100nm();
        let spec =
            DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(6.0e5));
        let t = DesignRuleTable::generate(&spec).unwrap();
        assert!(t.entry("Signal Lines (r = 0.1)", "M7", "oxide").is_some());
        assert!(t.entry("Signal Lines (r = 0.1)", "M8", "HSQ").is_some());
        assert_eq!(t.entries.len(), 2 * 2 * 3);
    }

    #[test]
    fn display_renders_blocks_and_columns() {
        let t = table_250nm(6.0e5);
        let s = t.to_string();
        assert!(s.contains("Signal Lines (r = 0.1)"));
        assert!(s.contains("Power Lines (r = 1.0)"));
        assert!(s.contains("oxide"));
        assert!(s.contains("M5"));
        assert!(s.contains("M6"));
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let t = table_250nm(6.0e5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), t.entries.len() + 1);
        assert!(lines[0].starts_with("technology,layer,dielectric"));
        assert!(lines[1].contains("ntrs-0.25um-cu"));
        for line in &lines[1..] {
            // the quoted case label contains no comma, so a naive split
            // sees exactly the 9 columns
            assert_eq!(line.split(',').count(), 9, "{line}");
        }
    }

    #[test]
    fn layer_stack_thickness_matches_technology() {
        let tech = presets::ntrs_250nm();
        let stack = layer_stack(&tech, 5, &Dielectric::hsq()).unwrap();
        let b = tech.underlying_dielectric_thickness(5);
        assert!((stack.total_thickness().value() - b.value()).abs() < 1e-15);
        assert!(layer_stack(&tech, 9, &Dielectric::hsq()).is_err());
    }

    #[test]
    fn lowk_gap_fill_raises_stack_resistance() {
        let tech = presets::ntrs_250nm();
        let ox = layer_stack(&tech, 5, &Dielectric::oxide()).unwrap();
        let poly = layer_stack(&tech, 5, &Dielectric::polyimide()).unwrap();
        assert!(poly.series_resistance_thickness() > ox.series_resistance_thickness());
    }

    #[test]
    fn array_comparison_reduction() {
        // With a dense-array rise ~2.4× the isolated one (the kind of ratio
        // the grid solver produces for Fig. 8 stacks), the allowed peak
        // drops by tens of percent — the Table 7 effect.
        let tech = presets::ntrs_250nm();
        let layer = tech.layer("M4").unwrap();
        let problem = SelfConsistentProblem::builder()
            .metal(tech.metal().clone())
            .line(
                LineGeometry::new(
                    layer.width(),
                    layer.thickness(),
                    Length::from_micrometers(1000.0),
                )
                .unwrap(),
            )
            .heating_constant(1e-12) // placeholder, overridden below
            .duty_cycle(0.1)
            .build()
            .unwrap();
        let cmp = array_comparison(&problem, 2.4, 1.0).unwrap();
        assert!(cmp.j_peak_dense < cmp.j_peak_isolated);
        assert!(
            cmp.reduction > 0.15 && cmp.reduction < 0.65,
            "reduction = {}",
            cmp.reduction
        );
        assert!(array_comparison(&problem, -1.0, 1.0).is_err());
    }
}
