//! The paper's primary contribution: **self-consistent electromigration +
//! self-heating design rules** for deep sub-micron interconnects
//! (Banerjee, Mehrotra, Sangiovanni-Vincentelli & Hu, DAC 1999).
//!
//! The central object is [`SelfConsistentProblem`], which solves the
//! paper's eq. (13)
//!
//! ```text
//! r·(T_m − T_ref)·k·W_eff / (ρ(T_m)·t_m·W_m·b)  =  j₀²·exp[(Q/k_B)(1/T_m − 1/T_ref)]
//! ```
//!
//! for the unique metal temperature `T_m` at which the line *simultaneously*
//! (a) meets its EM lifetime goal at the average current density it carries
//! and (b) sits at the steady self-heating temperature that current
//! produces. The corresponding maximum allowed peak / RMS / average current
//! densities follow from the duty-cycle identities (eqs. 4–5).
//!
//! On top of the solver:
//!
//! * [`sweep`] regenerates the paper's Fig. 2 and Fig. 3 (solutions vs
//!   duty cycle and vs j₀),
//! * [`rules`] generates Table 2/3/4-style design-rule grids for whole
//!   technologies and the Table 7 array-coupling comparison.
//!
//! # Examples
//!
//! ```
//! use hotwire_core::SelfConsistentProblem;
//! use hotwire_tech::{Dielectric, Metal};
//! use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
//! use hotwire_units::{Celsius, CurrentDensity, Length};
//!
//! // The paper's Fig. 2 configuration.
//! let um = Length::from_micrometers;
//! let problem = SelfConsistentProblem::builder()
//!     .metal(Metal::copper().with_design_rule_j0(
//!         CurrentDensity::from_amps_per_cm2(6.0e5),
//!     ))
//!     .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0))?)
//!     .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
//!     .phi(QUASI_1D_PHI)
//!     .duty_cycle(0.01)
//!     .build()?;
//! let sol = problem.solve()?;
//! // At r = 10⁻² the self-consistent j_peak is ≈ 2× below the EM-only j₀/r:
//! let em_only = problem.em_only_peak();
//! let ratio = sol.j_peak.value() / em_only.value();
//! assert!(ratio > 0.4 && ratio < 0.8, "ratio = {ratio}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// HW001 is fully enforced here (zero baseline entries): keep it that way
// at compile time, not just in `cargo xtask analyze`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod error;
mod problem;
pub mod rules;
pub mod short_line;
pub mod signoff;
pub mod sweep;

pub use error::CoreError;
pub use problem::{SelfConsistentProblem, SelfConsistentProblemBuilder, SelfConsistentSolution};
