//! Whole-netlist current-density sign-off: the composite rule a physical
//! design flow applies per net.
//!
//! For every net the flow knows (layer, drawn width, routed length, duty
//! cycle and the peak current density it actually carries), the sign-off
//! combines, in order of applicability:
//!
//! 1. the **self-consistent** thermally-aware rule of eq. (13) (the
//!    paper's contribution),
//! 2. the **thermally-short** fin relaxation for nets of λ scale
//!    ([`crate::short_line`], the paper's §3.2 caveat),
//! 3. the **Blech immortality** floor for very short jogs
//!    ([`hotwire_em::blech`]).
//!
//! The verdict reports which rule governed, so a violation message tells
//! the designer what physics to negotiate with.

use hotwire_em::blech::BlechModel;
use hotwire_tech::{Dielectric, Technology};
use hotwire_thermal::impedance::LineGeometry;
use hotwire_units::{CurrentDensity, Length};
use serde::{Deserialize, Serialize};

use crate::rules::layer_stack;
use crate::short_line::solve_with_fin_correction;
use crate::{CoreError, SelfConsistentProblem};

/// One net as the router sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Net name (for reporting).
    pub name: String,
    /// The metal layer the net is routed on.
    pub layer: String,
    /// Drawn width.
    pub width: Length,
    /// Routed length.
    pub length: Length,
    /// Duty cycle of its current waveform (use
    /// [`hotwire_em::CurrentStats::effective_duty_cycle`] for measured
    /// waveforms).
    pub duty_cycle: f64,
    /// The peak current density the net actually carries.
    pub j_peak: CurrentDensity,
}

/// Which physics set the binding limit for a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoverningRule {
    /// The thermally-long self-consistent rule (eq. 13).
    SelfConsistent,
    /// The fin-corrected (via-cooled) short-line rule.
    ThermallyShort,
    /// The Blech immortality floor (the net cannot fail by EM at all).
    BlechImmortal,
    /// The tree steady-state stress filter: peak tensile stress stays
    /// below the void-nucleation threshold, so the whole tree is
    /// immortal (generalizes `BlechImmortal` to junction trees).
    StressImmortal,
    /// The transient Korhonen wearout path: a void nucleates and the
    /// growth-to-failure time governs.
    StressWearout,
}

impl GoverningRule {
    /// A short fixed-width label for report tables, shared by every
    /// signoff front-end (`hotwire signoff`, `hotwire coupled-signoff`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SelfConsistent => "self-consistent",
            Self::ThermallyShort => "thermally-short",
            Self::BlechImmortal => "blech-immortal",
            Self::StressImmortal => "stress-immortal",
            Self::StressWearout => "stress-wearout",
        }
    }
}

/// The per-net verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetVerdict {
    /// The net this verdict is for.
    pub net: String,
    /// The binding allowed peak density after all relaxations.
    pub allowed_j_peak: CurrentDensity,
    /// Which rule produced that limit.
    pub governing: GoverningRule,
    /// Utilization `j_peak/allowed` (> 1 = violation).
    pub utilization: f64,
    /// The self-consistent metal temperature at the *allowed* density.
    pub metal_temperature: hotwire_units::Kelvin,
}

impl NetVerdict {
    /// `true` when the net meets its rule.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.utilization <= 1.0
    }
}

/// The failing verdicts of a batch, most over-stressed first — the
/// ranking every signoff report (CLI, coupled engine) presents.
#[must_use]
pub fn ranked_violations(verdicts: &[NetVerdict]) -> Vec<&NetVerdict> {
    let mut v: Vec<&NetVerdict> = verdicts.iter().filter(|v| !v.passes()).collect();
    v.sort_by(|a, b| b.utilization.total_cmp(&a.utilization));
    v
}

/// Sign-off configuration.
#[derive(Debug, Clone)]
pub struct SignoffConfig {
    /// Intra-level (gap-fill) dielectric of the process.
    pub intra_dielectric: Dielectric,
    /// EM design-rule density j₀ at the reference temperature.
    pub j0: CurrentDensity,
    /// Heat-spreading parameter φ.
    pub phi: f64,
    /// Blech critical product (None disables the immortality relaxation).
    pub blech: Option<BlechModel>,
}

impl SignoffConfig {
    /// The paper-faithful defaults for a Cu process: oxide gap fill,
    /// j₀ = 6×10⁵ A/cm², φ = 2.45, Cu Blech product.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            intra_dielectric: Dielectric::oxide(),
            j0: CurrentDensity::from_amps_per_cm2(6.0e5),
            phi: hotwire_thermal::impedance::QUASI_2D_PHI,
            blech: Some(BlechModel::copper()),
        }
    }
}

/// Signs off a list of nets against a technology.
///
/// # Errors
///
/// Propagates solver errors; unknown layers or invalid net geometry are
/// reported per the underlying builders.
pub fn signoff(
    tech: &Technology,
    config: &SignoffConfig,
    nets: &[NetSpec],
) -> Result<Vec<NetVerdict>, CoreError> {
    nets.iter()
        .map(|net| check_net(tech, config, net))
        .collect()
}

fn check_net(
    tech: &Technology,
    config: &SignoffConfig,
    net: &NetSpec,
) -> Result<NetVerdict, CoreError> {
    let layer = tech
        .layer(&net.layer)
        .ok_or_else(|| CoreError::SolveFailed {
            message: format!("net `{}`: unknown layer `{}`", net.name, net.layer),
        })?;
    let stack = layer_stack(tech, layer.index(), &config.intra_dielectric)?;
    let line = LineGeometry::new(net.width, layer.thickness(), net.length)?;
    let problem = SelfConsistentProblem::builder()
        .metal(tech.metal().clone().with_design_rule_j0(config.j0))
        .line(line)
        .stack(stack.clone())
        .phi(config.phi)
        .duty_cycle(net.duty_cycle)
        .reference_temperature(tech.reference_temperature())
        .build()?;

    // Baseline (thermally long) and fin-corrected limits.
    let base = problem.solve()?;
    let short = solve_with_fin_correction(&problem, &stack)?;
    let (mut allowed, mut governing, mut t_m) = if short.thermally_long {
        (
            base.j_peak,
            GoverningRule::SelfConsistent,
            base.metal_temperature,
        )
    } else {
        (
            short.solution.j_peak,
            GoverningRule::ThermallyShort,
            short.solution.metal_temperature,
        )
    };
    // Blech immortality floor (works on the average density: j_avg = r·j_peak).
    if let Some(blech) = &config.blech {
        let blech_peak = blech.immortality_density(net.length) / net.duty_cycle;
        if blech_peak > allowed {
            allowed = blech_peak;
            governing = GoverningRule::BlechImmortal;
            // an immortal net does not wear out; its temperature is set by
            // the heating at the *carried* density, not a wearout balance —
            // report the reference temperature as "no EM-limited T".
            t_m = tech.reference_temperature();
        }
    }
    Ok(NetVerdict {
        net: net.name.clone(),
        allowed_j_peak: allowed,
        governing,
        utilization: net.j_peak / allowed,
        metal_temperature: t_m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::presets;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn ma(v: f64) -> CurrentDensity {
        CurrentDensity::from_mega_amps_per_cm2(v)
    }

    fn nets() -> Vec<NetSpec> {
        vec![
            NetSpec {
                name: "global_bus".into(),
                layer: "M6".into(),
                width: um(1.2),
                length: um(4000.0),
                duty_cycle: 0.1,
                j_peak: ma(3.0),
            },
            NetSpec {
                name: "block_stub".into(),
                layer: "M3".into(),
                width: um(0.4),
                length: um(20.0),
                duty_cycle: 0.1,
                j_peak: ma(3.0),
            },
            NetSpec {
                name: "via_jog".into(),
                layer: "M2".into(),
                width: um(0.4),
                length: um(3.0),
                duty_cycle: 0.3,
                j_peak: ma(8.0),
            },
            NetSpec {
                name: "hot_power_strap".into(),
                layer: "M6".into(),
                width: um(2.4),
                length: um(5000.0),
                duty_cycle: 1.0,
                j_peak: ma(2.0),
            },
        ]
    }

    #[test]
    fn composite_rule_selects_the_right_physics() {
        let tech = presets::ntrs_250nm();
        let verdicts = signoff(&tech, &SignoffConfig::paper_defaults(), &nets()).unwrap();
        let by_name = |n: &str| verdicts.iter().find(|v| v.net == n).unwrap();

        // Long global bus: plain self-consistent rule, passing.
        let bus = by_name("global_bus");
        assert_eq!(bus.governing, GoverningRule::SelfConsistent);
        assert!(bus.passes(), "utilization {}", bus.utilization);

        // A 3 µm jog at high current: immortal by Blech.
        let jog = by_name("via_jog");
        assert_eq!(jog.governing, GoverningRule::BlechImmortal);
        assert!(jog.passes());

        // A power strap at 2 MA/cm² with r = 1: violates the unipolar rule.
        let strap = by_name("hot_power_strap");
        assert_eq!(strap.governing, GoverningRule::SelfConsistent);
        assert!(!strap.passes(), "utilization {}", strap.utilization);
    }

    #[test]
    fn short_stub_gets_at_least_the_long_line_allowance() {
        let tech = presets::ntrs_250nm();
        let config = SignoffConfig {
            blech: None, // isolate the fin effect
            ..SignoffConfig::paper_defaults()
        };
        let mut long_stub = nets()[1].clone();
        long_stub.length = um(5000.0);
        let short = &signoff(&tech, &config, &nets()[1..2]).unwrap()[0];
        let long = &signoff(&tech, &config, std::slice::from_ref(&long_stub)).unwrap()[0];
        assert!(short.allowed_j_peak >= long.allowed_j_peak);
        assert_eq!(long.governing, GoverningRule::SelfConsistent);
    }

    #[test]
    fn disabling_blech_removes_the_immortality_floor() {
        let tech = presets::ntrs_250nm();
        let with = signoff(&tech, &SignoffConfig::paper_defaults(), &nets()[2..3]).unwrap();
        let without = signoff(
            &tech,
            &SignoffConfig {
                blech: None,
                ..SignoffConfig::paper_defaults()
            },
            &nets()[2..3],
        )
        .unwrap();
        assert!(with[0].allowed_j_peak > without[0].allowed_j_peak);
        assert_ne!(without[0].governing, GoverningRule::BlechImmortal);
    }

    #[test]
    fn unknown_layer_reports_the_net() {
        let tech = presets::ntrs_250nm();
        let mut bad = nets();
        bad[0].layer = "M99".into();
        let err = signoff(&tech, &SignoffConfig::paper_defaults(), &bad).unwrap_err();
        assert!(err.to_string().contains("global_bus"));
    }

    #[test]
    fn lowk_config_tightens_every_thermal_verdict() {
        let tech = presets::ntrs_250nm();
        let ox = signoff(&tech, &SignoffConfig::paper_defaults(), &nets()).unwrap();
        let poly = signoff(
            &tech,
            &SignoffConfig {
                intra_dielectric: Dielectric::polyimide(),
                ..SignoffConfig::paper_defaults()
            },
            &nets(),
        )
        .unwrap();
        for (a, b) in ox.iter().zip(&poly) {
            if b.governing != GoverningRule::BlechImmortal {
                assert!(
                    b.allowed_j_peak <= a.allowed_j_peak,
                    "{}: low-k cannot relax a thermal rule",
                    a.net
                );
            }
        }
    }

    #[test]
    fn ranked_violations_sorts_failing_nets_only() {
        let mk = |name: &str, utilization: f64| NetVerdict {
            net: name.to_owned(),
            allowed_j_peak: CurrentDensity::from_mega_amps_per_cm2(1.0),
            governing: GoverningRule::SelfConsistent,
            utilization,
            metal_temperature: hotwire_units::Kelvin::new(400.0),
        };
        let verdicts = vec![mk("ok", 0.7), mk("worst", 2.5), mk("bad", 1.2)];
        let ranked = ranked_violations(&verdicts);
        let names: Vec<&str> = ranked.iter().map(|v| v.net.as_str()).collect();
        assert_eq!(names, ["worst", "bad"]);
        assert_eq!(GoverningRule::BlechImmortal.label(), "blech-immortal");
    }
}
