//! The self-consistent problem and its solver (eq. 13).

use hotwire_em::BlackModel;
use hotwire_tech::Metal;
use hotwire_thermal::impedance::{self_heating_constant, InsulatorStack, LineGeometry};
use hotwire_units::{Celsius, CurrentDensity, Kelvin, TemperatureDelta};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// A fully specified instance of the paper's eq. (13): one line, one
/// conduction path, one duty cycle, one EM reliability anchor.
///
/// Build with [`SelfConsistentProblem::builder`]; see the crate-level
/// example.
#[derive(Debug, Clone)]
pub struct SelfConsistentProblem {
    metal: Metal,
    black: BlackModel,
    line: LineGeometry,
    duty_cycle: f64,
    reference_temperature: Kelvin,
    /// ΔT = j_rms²·ρ(T)·κ; κ comes from the quasi-2-D closed form unless
    /// overridden by a numerically extracted array-coupling constant.
    heating_constant: f64,
}

/// The solution of eq. (13): the self-consistent metal temperature and the
/// maximum allowed current densities at it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfConsistentSolution {
    /// The self-consistent metal temperature `T_m`.
    pub metal_temperature: Kelvin,
    /// Self-heating rise `T_m − T_ref`.
    pub temperature_rise: TemperatureDelta,
    /// Maximum allowed peak current density.
    pub j_peak: CurrentDensity,
    /// Maximum allowed RMS current density (the self-heating driver).
    pub j_rms: CurrentDensity,
    /// Maximum allowed average current density (the EM driver).
    pub j_avg: CurrentDensity,
}

impl SelfConsistentProblem {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> SelfConsistentProblemBuilder {
        SelfConsistentProblemBuilder::default()
    }

    /// The line geometry.
    #[must_use]
    pub fn line(&self) -> LineGeometry {
        self.line
    }

    /// The conductor metal.
    #[must_use]
    pub fn metal(&self) -> &Metal {
        &self.metal
    }

    /// The duty cycle `r`.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// The chip reference temperature `T_ref`.
    #[must_use]
    pub fn reference_temperature(&self) -> Kelvin {
        self.reference_temperature
    }

    /// The Black's-law model in force (anchored at `T_ref`).
    #[must_use]
    pub fn black_model(&self) -> &BlackModel {
        &self.black
    }

    /// The volumetric heating constant κ in `ΔT = j_rms²·ρ(T_m)·κ`
    /// (units m³·K/W).
    #[must_use]
    pub fn heating_constant(&self) -> f64 {
        self.heating_constant
    }

    /// The EM-only peak density `j₀/r` — what a designer who ignores
    /// self-heating would allow (the upper dotted line of Fig. 2).
    #[must_use]
    pub fn em_only_peak(&self) -> CurrentDensity {
        self.black.params().design_rule_j0 / self.duty_cycle
    }

    /// Left-hand side of eq. (13) at a trial temperature:
    /// `r·j_rms²(T) = r·(T − T_ref)/(ρ(T)·κ)`.
    fn lhs(&self, t: Kelvin) -> f64 {
        let dt = t.value() - self.reference_temperature.value();
        let rho = self.metal.resistivity(t).value();
        self.duty_cycle * dt / (rho * self.heating_constant)
    }

    /// Solves eq. (13) by bisection on `g(T) = LHS(T) − RHS(T)` over
    /// `(T_ref, T_melt)`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::MeltLimited`] when the EM-allowed current would melt
    ///   the line before the heat balance closes (no root below melt).
    /// * [`CoreError::SolveFailed`] if the bracket is malformed (should
    ///   not occur for physical inputs).
    pub fn solve(&self) -> Result<SelfConsistentSolution, CoreError> {
        let t_ref = self.reference_temperature.value();
        let t_melt = self.metal.melting_point().value();
        let g = |t: f64| self.lhs(Kelvin::new(t)) - self.black.self_consistent_rhs(Kelvin::new(t));

        let mut lo = t_ref + 1e-9;
        let mut hi = t_melt;
        let g_lo = g(lo);
        let g_hi = g(hi);
        if g_lo > 0.0 {
            // Already balanced essentially at T_ref (vanishing heating).
            hi = lo;
        } else if g_hi < 0.0 {
            return Err(CoreError::MeltLimited {
                melting_point: t_melt,
            });
        } else {
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if g(mid) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if hi - lo < 1e-9 {
                    break;
                }
            }
        }
        let t_m = Kelvin::new(0.5 * (lo + hi));
        if !t_m.is_finite() {
            return Err(CoreError::SolveFailed {
                message: "bisection produced a non-finite temperature".to_owned(),
            });
        }
        let dt = t_m.value() - t_ref;
        let rho = self.metal.resistivity(t_m).value();
        let j_rms = CurrentDensity::new((dt.max(0.0) / (rho * self.heating_constant)).sqrt());
        // At the degenerate zero-heating corner, fall back to the EM bound.
        let j_rms = if dt <= 1e-12 {
            self.black.allowed_average_density(t_m) / self.duty_cycle.sqrt()
        } else {
            j_rms
        };
        let j_peak = j_rms / self.duty_cycle.sqrt();
        let j_avg = j_peak * self.duty_cycle;
        Ok(SelfConsistentSolution {
            metal_temperature: t_m,
            temperature_rise: TemperatureDelta::new(t_m.value() - t_ref),
            j_peak,
            j_rms,
            j_avg,
        })
    }

    /// Returns a copy with a different duty cycle (used by the sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDutyCycle`] unless `0 < r ≤ 1`.
    pub fn with_duty_cycle(&self, r: f64) -> Result<Self, CoreError> {
        if !(r > 0.0 && r <= 1.0) {
            return Err(CoreError::InvalidDutyCycle { value: r });
        }
        let mut p = self.clone();
        p.duty_cycle = r;
        Ok(p)
    }

    /// Returns a copy with a different design-rule density j₀ (the Fig. 3
    /// sweep).
    #[must_use]
    pub fn with_design_rule_j0(&self, j0: CurrentDensity) -> Self {
        let mut p = self.clone();
        p.metal = p.metal.with_design_rule_j0(j0);
        p.black = p.black.with_design_rule_j0(j0);
        p
    }

    /// Returns a copy whose heating constant is replaced by a numerically
    /// extracted value — the hook for the 3-D array coupling of eq. (18)
    /// (`ΔT = κ·j_rms²·ρ`, κ from the finite-volume array solver).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SolveFailed`] for a non-positive κ.
    pub fn with_heating_constant(&self, kappa: f64) -> Result<Self, CoreError> {
        if !(kappa > 0.0) || !kappa.is_finite() {
            return Err(CoreError::SolveFailed {
                message: format!("heating constant must be positive, got {kappa}"),
            });
        }
        let mut p = self.clone();
        p.heating_constant = kappa;
        Ok(p)
    }
}

/// Builder for [`SelfConsistentProblem`] (C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct SelfConsistentProblemBuilder {
    metal: Option<Metal>,
    line: Option<LineGeometry>,
    stack: Option<InsulatorStack>,
    phi: Option<f64>,
    duty_cycle: Option<f64>,
    reference_temperature: Option<Kelvin>,
    heating_constant: Option<f64>,
}

impl SelfConsistentProblemBuilder {
    /// Sets the conductor metal (including its EM parameters / j₀).
    #[must_use]
    pub fn metal(mut self, metal: Metal) -> Self {
        self.metal = Some(metal);
        self
    }

    /// Sets the line geometry.
    #[must_use]
    pub fn line(mut self, line: LineGeometry) -> Self {
        self.line = Some(line);
        self
    }

    /// Sets the insulator stack between the line and the substrate.
    #[must_use]
    pub fn stack(mut self, stack: InsulatorStack) -> Self {
        self.stack = Some(stack);
        self
    }

    /// Sets the heat-spreading parameter φ (eq. 14). Defaults to the
    /// quasi-2-D value 2.45 when a stack is given.
    #[must_use]
    pub fn phi(mut self, phi: f64) -> Self {
        self.phi = Some(phi);
        self
    }

    /// Sets the duty cycle `r`.
    #[must_use]
    pub fn duty_cycle(mut self, r: f64) -> Self {
        self.duty_cycle = Some(r);
        self
    }

    /// Sets the chip reference temperature (default 100 °C).
    #[must_use]
    pub fn reference_temperature(mut self, t: Kelvin) -> Self {
        self.reference_temperature = Some(t);
        self
    }

    /// Bypasses the closed-form conduction model with an explicit heating
    /// constant κ (`ΔT = κ·j_rms²·ρ`), e.g. extracted from the
    /// finite-volume array solver. When set, `stack`/`phi` are not
    /// required.
    #[must_use]
    pub fn heating_constant(mut self, kappa: f64) -> Self {
        self.heating_constant = Some(kappa);
        self
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Incomplete`] for missing metal/line/conduction-path.
    /// * [`CoreError::InvalidDutyCycle`] for `r ∉ (0, 1]`.
    /// * Propagates thermal-model errors from the κ computation.
    pub fn build(self) -> Result<SelfConsistentProblem, CoreError> {
        let metal = self.metal.ok_or(CoreError::Incomplete { field: "metal" })?;
        let line = self.line.ok_or(CoreError::Incomplete { field: "line" })?;
        let duty_cycle = self.duty_cycle.ok_or(CoreError::Incomplete {
            field: "duty_cycle",
        })?;
        if !(duty_cycle > 0.0 && duty_cycle <= 1.0) {
            return Err(CoreError::InvalidDutyCycle { value: duty_cycle });
        }
        let reference_temperature = self
            .reference_temperature
            .unwrap_or_else(|| Celsius::new(100.0).to_kelvin());
        let heating_constant = match self.heating_constant {
            Some(k) => {
                if !(k > 0.0) || !k.is_finite() {
                    return Err(CoreError::SolveFailed {
                        message: format!("heating constant must be positive, got {k}"),
                    });
                }
                k
            }
            None => {
                let stack = self.stack.ok_or(CoreError::Incomplete { field: "stack" })?;
                let phi = self.phi.unwrap_or(hotwire_thermal::impedance::QUASI_2D_PHI);
                self_heating_constant(line, &stack, phi)?
            }
        };
        let black = BlackModel::new(metal.em(), reference_temperature, hotwire_em::TEN_YEARS)?;
        Ok(SelfConsistentProblem {
            metal,
            black,
            line,
            duty_cycle,
            reference_temperature,
            heating_constant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::Dielectric;
    use hotwire_units::Length;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    /// The paper's Fig. 2 configuration: Cu, j₀ = 0.6 MA/cm²,
    /// t_ox = 3 µm, t_m = 0.5 µm, W_m = 3 µm, quasi-1-D spreading.
    fn fig2_problem(r: f64) -> SelfConsistentProblem {
        SelfConsistentProblem::builder()
            .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
            .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
            .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
            .phi(hotwire_thermal::impedance::QUASI_1D_PHI)
            .duty_cycle(r)
            .build()
            .unwrap()
    }

    #[test]
    fn dc_case_reduces_to_design_rule() {
        // At r = 1 and j₀ = 0.6 MA/cm², self-heating is negligible and the
        // solution collapses onto the EM design rule.
        let sol = fig2_problem(1.0).solve().unwrap();
        assert!(
            (sol.j_peak.to_mega_amps_per_cm2() - 0.6).abs() < 0.01,
            "j_peak = {}",
            sol.j_peak.to_mega_amps_per_cm2()
        );
        assert!(sol.temperature_rise.value() < 1.0);
        assert_eq!(sol.j_peak, sol.j_rms);
        assert_eq!(sol.j_peak, sol.j_avg);
    }

    #[test]
    fn paper_headline_factor_of_two_at_r_equals_1e_minus_2() {
        // "At r = 10⁻², the self-consistent j_peak is nearly 2 times smaller
        // than the j_peak obtained from EM constraint only."
        let p = fig2_problem(1e-2);
        let sol = p.solve().unwrap();
        let ratio = p.em_only_peak().value() / sol.j_peak.value();
        assert!(
            ratio > 1.4 && ratio < 2.4,
            "EM-only/self-consistent = {ratio:.2}"
        );
        // ...which per eq. (6) costs ~(ratio)² ≈ 3× in lifetime:
        let lifetime_penalty = ratio * ratio;
        assert!(lifetime_penalty > 2.0 && lifetime_penalty < 5.5);
    }

    #[test]
    fn temperature_and_peak_rise_as_duty_cycle_falls() {
        let mut prev_t = 0.0;
        let mut prev_jpeak = 0.0;
        for r in [1.0, 0.1, 0.01, 1e-3, 1e-4] {
            let sol = fig2_problem(r).solve().unwrap();
            assert!(
                sol.metal_temperature.value() >= prev_t - 1e-9,
                "T_m must rise as r falls"
            );
            assert!(
                sol.j_peak.value() > prev_jpeak,
                "j_peak must rise as r falls"
            );
            prev_t = sol.metal_temperature.value();
            prev_jpeak = sol.j_peak.value();
        }
        // Fig. 2's right edge: T_m climbs to the ~460–520 K range at r = 1e-4.
        assert!(prev_t > 430.0 && prev_t < 540.0, "T_m(r=1e-4) = {prev_t} K");
    }

    #[test]
    fn solution_satisfies_both_constraints() {
        // Verify the fixed point: the returned j actually (a) produces the
        // returned temperature through the heating model and (b) meets the
        // EM bound at that temperature.
        let p = fig2_problem(0.01);
        let sol = p.solve().unwrap();
        // (a) heating balance
        let rho = p.metal().resistivity(sol.metal_temperature).value();
        let dt = sol.j_rms.value().powi(2) * rho * p.heating_constant();
        assert!(
            (dt - sol.temperature_rise.value()).abs() < 0.01,
            "heating balance: {dt} vs {}",
            sol.temperature_rise.value()
        );
        // (b) EM bound
        let allowed = p
            .black_model()
            .allowed_average_density(sol.metal_temperature);
        assert!(
            (sol.j_avg.value() - allowed.value()).abs() / allowed.value() < 1e-3,
            "EM bound: {} vs {}",
            sol.j_avg.value(),
            allowed.value()
        );
    }

    #[test]
    fn higher_j0_gives_higher_temperature_and_peak() {
        let base = fig2_problem(0.1);
        let hot = base.with_design_rule_j0(CurrentDensity::from_amps_per_cm2(1.8e6));
        let s_base = base.solve().unwrap();
        let s_hot = hot.solve().unwrap();
        assert!(s_hot.metal_temperature > s_base.metal_temperature);
        assert!(s_hot.j_peak > s_base.j_peak);
        // Diminishing returns: 3× j₀ gives < 3× j_peak once heating bites.
        let gain = s_hot.j_peak.value() / s_base.j_peak.value();
        assert!(gain < 3.0, "gain = {gain}");
        assert!(gain > 1.2, "gain = {gain}");
    }

    #[test]
    fn worse_conduction_path_lowers_peak() {
        let oxide = fig2_problem(0.1);
        let poly = SelfConsistentProblem::builder()
            .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
            .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
            .stack(InsulatorStack::single(um(3.0), &Dielectric::polyimide()))
            .phi(hotwire_thermal::impedance::QUASI_1D_PHI)
            .duty_cycle(0.1)
            .build()
            .unwrap();
        let s_ox = oxide.solve().unwrap();
        let s_poly = poly.solve().unwrap();
        assert!(s_poly.j_peak < s_ox.j_peak);
        assert!(s_poly.metal_temperature > s_ox.metal_temperature);
    }

    #[test]
    fn heating_constant_override_matches_closed_form() {
        let p = fig2_problem(0.01);
        let q = p.with_heating_constant(p.heating_constant()).unwrap();
        let a = p.solve().unwrap();
        let b = q.solve().unwrap();
        assert!((a.j_peak.value() - b.j_peak.value()).abs() < 1.0);
        // Doubling κ (worse cooling) must lower j_peak.
        let worse = p.with_heating_constant(2.0 * p.heating_constant()).unwrap();
        assert!(worse.solve().unwrap().j_peak < a.j_peak);
    }

    #[test]
    fn builder_validation() {
        let b = SelfConsistentProblem::builder().duty_cycle(0.1);
        assert!(matches!(
            b.clone().build(),
            Err(CoreError::Incomplete { field: "metal" })
        ));
        let b = b.metal(Metal::copper());
        assert!(matches!(
            b.clone().build(),
            Err(CoreError::Incomplete { field: "line" })
        ));
        let b = b.line(LineGeometry::new(um(1.0), um(0.5), um(100.0)).unwrap());
        assert!(matches!(
            b.clone().build(),
            Err(CoreError::Incomplete { field: "stack" })
        ));
        let b = b.stack(InsulatorStack::single(um(1.0), &Dielectric::oxide()));
        assert!(b.clone().build().is_ok());
        assert!(matches!(
            b.clone().duty_cycle(0.0).build(),
            Err(CoreError::InvalidDutyCycle { .. })
        ));
        assert!(b.clone().heating_constant(-1.0).build().is_err());
    }

    #[test]
    fn with_duty_cycle_validates() {
        let p = fig2_problem(0.1);
        assert!(p.with_duty_cycle(1.5).is_err());
        assert!(p.with_duty_cycle(0.5).is_ok());
    }

    #[test]
    fn melt_limited_detected_for_absurd_j0() {
        // An enormous j₀ with a terrible conduction path cannot balance
        // below the melting point.
        let p = SelfConsistentProblem::builder()
            .metal(
                Metal::copper().with_design_rule_j0(CurrentDensity::from_mega_amps_per_cm2(5.0e4)),
            )
            .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
            .stack(InsulatorStack::single(um(10.0), &Dielectric::polyimide()))
            .phi(0.88)
            .duty_cycle(1.0)
            .build()
            .unwrap();
        assert!(matches!(p.solve(), Err(CoreError::MeltLimited { .. })));
    }

    #[test]
    fn default_phi_is_quasi_2d() {
        let p = SelfConsistentProblem::builder()
            .metal(Metal::copper())
            .line(LineGeometry::new(um(1.0), um(0.5), um(100.0)).unwrap())
            .stack(InsulatorStack::single(um(1.0), &Dielectric::oxide()))
            .duty_cycle(0.1)
            .build()
            .unwrap();
        let explicit = SelfConsistentProblem::builder()
            .metal(Metal::copper())
            .line(LineGeometry::new(um(1.0), um(0.5), um(100.0)).unwrap())
            .stack(InsulatorStack::single(um(1.0), &Dielectric::oxide()))
            .phi(hotwire_thermal::impedance::QUASI_2D_PHI)
            .duty_cycle(0.1)
            .build()
            .unwrap();
        assert!((p.heating_constant() - explicit.heating_constant()).abs() < 1e-20);
    }
}
