//! Parameter sweeps over the self-consistent solution — the generators
//! behind the paper's Fig. 2 (duty-cycle sweep) and Fig. 3 (j₀ sweep).
//!
//! Every sweep point is an independent fixed-point solve, so the sweeps
//! fan out across threads (`rayon`). Results are collected **in input
//! order** and each point's arithmetic is untouched, so parallel output
//! is bit-identical to the serial variants kept alongside
//! ([`duty_cycle_sweep_serial`]) — verified by the determinism tests in
//! `tests/parallel_determinism.rs`.

use hotwire_obs::metrics;
use hotwire_obs::trace as obs_trace;
use hotwire_units::CurrentDensity;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{CoreError, SelfConsistentProblem, SelfConsistentSolution};

/// One point of a duty-cycle sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The duty cycle of this point.
    pub duty_cycle: f64,
    /// The self-consistent solution.
    pub solution: SelfConsistentSolution,
    /// The EM-only reference `j₀/r` (Fig. 2's upper dotted line: what a
    /// design ignoring self-heating would allow).
    pub em_only_peak: CurrentDensity,
}

impl SweepPoint {
    /// The self-heating penalty `j_peak(self-consistent)/j_peak(EM only)`
    /// ∈ (0, 1] — monotonically decreasing in `1/r` per the paper.
    #[must_use]
    pub fn peak_penalty(&self) -> f64 {
        self.solution.j_peak / self.em_only_peak
    }
}

fn solve_point(
    problem: &SelfConsistentProblem,
    r: f64,
    ctx: obs_trace::TraceContext,
) -> Result<SweepPoint, CoreError> {
    // Counter and span live here, in the path shared by the serial and
    // parallel sweeps, so `sweep.points` and the `sweep.point_time`
    // count are identical however the fan-out is scheduled. Adopting
    // the batch context parents this point's span under the enclosing
    // `sweep.batch_time` span even on a rayon worker.
    let _ctx = ctx.adopt();
    metrics::counter("sweep.points").inc();
    let _t = obs_trace::span("sweep.point_time");
    let p = problem.with_duty_cycle(r)?;
    Ok(SweepPoint {
        duty_cycle: r,
        solution: p.solve()?,
        em_only_peak: p.em_only_peak(),
    })
}

/// Times one sweep fan-out (the `sweep.batch_time` span) and publishes
/// throughput gauges (`sweep.points_per_sec`, `sweep.workers`,
/// `sweep.utilization`). The batch's [`obs_trace::TraceContext`] is
/// handed to `f` so the per-point spans parent under the batch span
/// across the rayon fan-out. Compiles down to a plain call without the
/// `telemetry` feature.
fn with_batch_metrics<T>(
    points: usize,
    parallel: bool,
    f: impl FnOnce(obs_trace::TraceContext) -> T,
) -> T {
    #[cfg(feature = "telemetry")]
    {
        let busy_before_ms = metrics::snapshot()
            .timers
            .get("sweep.point_time")
            .map_or(0.0, |t| t.total_ms);
        let batch_span = obs_trace::span("sweep.batch_time");
        let ctx = obs_trace::context();
        let start = hotwire_obs::Stopwatch::start();
        let out = f(ctx);
        let wall = start.elapsed();
        drop(batch_span);
        let busy_s = (metrics::snapshot()
            .timers
            .get("sweep.point_time")
            .map_or(0.0, |t| t.total_ms)
            - busy_before_ms)
            / 1e3;
        let workers = if parallel {
            rayon::current_num_threads().max(1)
        } else {
            1
        };
        #[allow(clippy::cast_precision_loss)]
        let workers_f = workers as f64;
        metrics::gauge("sweep.workers").set(workers_f);
        let wall_s = wall.as_secs_f64();
        if wall_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            metrics::gauge("sweep.points_per_sec").set(points as f64 / wall_s);
            metrics::gauge("sweep.utilization")
                .set((busy_s / (wall_s * workers_f)).clamp(0.0, 1.0));
        }
        out
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (points, parallel);
        f(obs_trace::context())
    }
}

/// Solves the problem across a set of duty cycles (Fig. 2), one thread
/// per point; results come back in input order, bit-identical to
/// [`duty_cycle_sweep_serial`].
///
/// # Errors
///
/// Propagates solver errors ([`CoreError::MeltLimited`] etc.) and
/// [`CoreError::InvalidDutyCycle`] for out-of-range entries.
pub fn duty_cycle_sweep(
    problem: &SelfConsistentProblem,
    duty_cycles: &[f64],
) -> Result<Vec<SweepPoint>, CoreError> {
    with_batch_metrics(duty_cycles.len(), true, |ctx| {
        duty_cycles
            .par_iter()
            .map(|&r| solve_point(problem, r, ctx))
            .collect()
    })
}

/// The single-threaded reference implementation of [`duty_cycle_sweep`],
/// kept public so determinism tests (and debugging sessions) can compare
/// against the parallel path.
///
/// # Errors
///
/// Identical to [`duty_cycle_sweep`].
pub fn duty_cycle_sweep_serial(
    problem: &SelfConsistentProblem,
    duty_cycles: &[f64],
) -> Result<Vec<SweepPoint>, CoreError> {
    with_batch_metrics(duty_cycles.len(), false, |ctx| {
        duty_cycles
            .iter()
            .map(|&r| solve_point(problem, r, ctx))
            .collect()
    })
}

/// Logarithmically spaced duty cycles over `[lo, hi]` — the paper's
/// Fig. 2/3 x-axis (10⁻⁴ … 1).
///
/// # Panics
///
/// Panics in debug builds when `points < 2` or the bounds are
/// non-positive/reversed.
#[must_use]
pub fn log_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    debug_assert!(points >= 2);
    debug_assert!(lo > 0.0 && hi > lo);
    let l0 = lo.ln();
    let l1 = hi.ln();
    #[allow(clippy::cast_precision_loss)]
    (0..points)
        .map(|i| (l0 + (l1 - l0) * (i as f64) / (points as f64 - 1.0)).exp())
        .collect()
}

/// One series of a j₀ sweep: the duty-cycle sweep at a given design-rule
/// density (Fig. 3 plots several of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct J0Series {
    /// The design-rule density of this series.
    pub j0: CurrentDensity,
    /// The duty-cycle sweep at this j₀.
    pub points: Vec<SweepPoint>,
}

/// Sweeps both j₀ and the duty cycle (Fig. 3). The full j₀ × r product
/// is flattened into one parallel fan-out (rather than parallelizing
/// only the inner sweep), then regrouped per series in input order.
///
/// # Errors
///
/// Propagates solver errors.
pub fn j0_sweep(
    problem: &SelfConsistentProblem,
    j0_values: &[CurrentDensity],
    duty_cycles: &[f64],
) -> Result<Vec<J0Series>, CoreError> {
    let cells: Vec<(CurrentDensity, f64)> = j0_values
        .iter()
        .flat_map(|&j0| duty_cycles.iter().map(move |&r| (j0, r)))
        .collect();
    let solved: Vec<SweepPoint> = with_batch_metrics(cells.len(), true, |ctx| {
        cells
            .par_iter()
            .map(|&(j0, r)| solve_point(&problem.with_design_rule_j0(j0), r, ctx))
            .collect::<Result<_, CoreError>>()
    })?;
    let mut solved = solved.into_iter();
    Ok(j0_values
        .iter()
        .map(|&j0| J0Series {
            j0,
            points: solved.by_ref().take(duty_cycles.len()).collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::{Dielectric, Metal};
    use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
    use hotwire_units::Length;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn fig2_problem() -> SelfConsistentProblem {
        SelfConsistentProblem::builder()
            .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
            .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
            .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
            .phi(QUASI_1D_PHI)
            .duty_cycle(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn log_spacing_endpoints_and_monotone() {
        let rs = log_spaced(1e-4, 1.0, 9);
        assert_eq!(rs.len(), 9);
        assert!((rs[0] - 1e-4).abs() < 1e-12);
        assert!((rs[8] - 1.0).abs() < 1e-12);
        for w in rs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // log-uniform: constant ratio
        let ratio = rs[1] / rs[0];
        for w in rs.windows(2) {
            assert!((w[1] / w[0] - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn fig2_shape_penalty_decreases_with_duty_cycle() {
        let rs = log_spaced(1e-4, 1.0, 13);
        let points = duty_cycle_sweep(&fig2_problem(), &rs).unwrap();
        // The penalty j_peak,sc/j_peak,EM-only decreases monotonically as r
        // decreases (paper's second observation on Fig. 2).
        for w in points.windows(2) {
            assert!(
                w[0].peak_penalty() <= w[1].peak_penalty() + 1e-9,
                "penalty must shrink with r: {} then {}",
                w[0].peak_penalty(),
                w[1].peak_penalty()
            );
        }
        // And equals ~1 at r = 1 (no self-heating at j₀).
        let last = points.last().unwrap();
        assert!((last.peak_penalty() - 1.0).abs() < 0.02);
    }

    #[test]
    fn fig3_shape_j0_becomes_ineffective_at_small_r() {
        // "j₀ becomes increasingly ineffective in increasing j_peak as the
        // duty cycle r decreases."
        let j0s = [
            CurrentDensity::from_amps_per_cm2(6.0e5),
            CurrentDensity::from_amps_per_cm2(1.8e6),
        ];
        let rs = [1e-4, 1e-1];
        let series = j0_sweep(&fig2_problem(), &j0s, &rs).unwrap();
        let gain_small_r = series[1].points[0].solution.j_peak.value()
            / series[0].points[0].solution.j_peak.value();
        let gain_large_r = series[1].points[1].solution.j_peak.value()
            / series[0].points[1].solution.j_peak.value();
        assert!(
            gain_small_r < gain_large_r,
            "3× j₀ must buy less at r = 1e-4 ({gain_small_r:.2}×) than at r = 0.1 ({gain_large_r:.2}×)"
        );
        // Temperatures increase with j₀ everywhere.
        for (a, b) in series[0].points.iter().zip(&series[1].points) {
            assert!(b.solution.metal_temperature > a.solution.metal_temperature);
        }
    }

    #[test]
    fn sweep_propagates_bad_duty_cycle() {
        assert!(duty_cycle_sweep(&fig2_problem(), &[0.1, -1.0]).is_err());
    }
}
