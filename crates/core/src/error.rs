//! Error type for the self-consistent design-rule engine.

use hotwire_em::EmError;
use hotwire_thermal::ThermalError;

/// Errors produced by the self-consistent solver and table generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A builder field was missing or inconsistent.
    Incomplete {
        /// The missing/offending field.
        field: &'static str,
    },
    /// A duty cycle outside (0, 1].
    InvalidDutyCycle {
        /// The offending value.
        value: f64,
    },
    /// The EM-allowed current would heat the line past its melting point —
    /// eq. (13) has no solution below melt. The design is limited by
    /// thermal failure, not electromigration.
    MeltLimited {
        /// The metal melting point, K.
        melting_point: f64,
    },
    /// The root finder failed to bracket or converge (should not occur for
    /// physical inputs).
    SolveFailed {
        /// Description of the failure.
        message: String,
    },
    /// Error from the thermal substrate.
    Thermal(ThermalError),
    /// Error from the electromigration substrate.
    Em(EmError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Incomplete { field } => {
                write!(f, "self-consistent problem is missing `{field}`")
            }
            CoreError::InvalidDutyCycle { value } => {
                write!(f, "duty cycle must be in (0, 1], got {value}")
            }
            CoreError::MeltLimited { melting_point } => write!(
                f,
                "no self-consistent solution below the melting point ({melting_point} K); the line is melt-limited"
            ),
            CoreError::SolveFailed { message } => write!(f, "solve failed: {message}"),
            CoreError::Thermal(e) => write!(f, "thermal model: {e}"),
            CoreError::Em(e) => write!(f, "electromigration model: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Thermal(e) => Some(e),
            CoreError::Em(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for CoreError {
    fn from(e: ThermalError) -> Self {
        CoreError::Thermal(e)
    }
}

impl From<EmError> for CoreError {
    fn from(e: EmError) -> Self {
        CoreError::Em(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::Incomplete { field: "line" };
        assert_eq!(e.to_string(), "self-consistent problem is missing `line`");
        let e: CoreError = ThermalError::InvalidInput {
            message: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        let e = CoreError::InvalidDutyCycle { value: 0.0 };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("(0, 1]"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
