//! One module per paper artifact. Every `run()` prints the regenerated
//! rows/series in the paper's own layout plus the shape checks that must
//! hold.

pub mod ablation;
pub mod esd6;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod table1;
pub mod table7;
pub mod table8;
pub mod tables234;
pub mod tables56;

/// The identifiers accepted by the `repro` binary.
pub const ALL: &[&str] = &[
    "fig2", "fig3", "fig5", "fig7", "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "table8", "esd", "ablation",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns a human-readable message for unknown ids or propagated solver
/// failures.
pub fn run(id: &str) -> Result<(), String> {
    match id {
        "fig2" => fig2::run().map_err(|e| e.to_string()),
        "fig3" => fig3::run().map_err(|e| e.to_string()),
        "fig5" => fig5::run().map_err(|e| e.to_string()),
        "fig7" => fig7::run().map_err(|e| e.to_string()),
        "table1" => {
            table1::run();
            Ok(())
        }
        "table2" => tables234::run_table2().map_err(|e| e.to_string()),
        "table3" => tables234::run_table3().map_err(|e| e.to_string()),
        "table4" => tables234::run_table4().map_err(|e| e.to_string()),
        "table5" => tables56::run(0).map_err(|e| e.to_string()),
        "table6" => tables56::run(1).map_err(|e| e.to_string()),
        "table7" => table7::run().map_err(|e| e.to_string()),
        "table8" => {
            table8::run();
            Ok(())
        }
        "esd" => esd6::run().map_err(|e| e.to_string()),
        "ablation" => ablation::run().map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown experiment `{other}`; known: {}",
            ALL.join(", ")
        )),
    }
}
