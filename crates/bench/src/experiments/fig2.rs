//! Fig. 2 — self-consistent T_m and j_peak vs duty cycle for Cu at
//! j₀ = 0.6 MA/cm² (t_ox = 3 µm, t_m = 0.5 µm, W_m = 3 µm, quasi-1-D
//! spreading), with the EM-only `j₀/r` dotted reference.

use hotwire_core::sweep::{duty_cycle_sweep, log_spaced};
use hotwire_core::{CoreError, SelfConsistentProblem};
use hotwire_tech::{Dielectric, Metal};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire_units::{CurrentDensity, Length};

use crate::render_table;

/// The Fig. 2 problem instance (also reused by Fig. 3).
///
/// # Errors
///
/// Propagates builder errors (cannot occur for these static values).
pub fn fig2_problem() -> Result<SelfConsistentProblem, CoreError> {
    let um = Length::from_micrometers;
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
        .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0))?)
        .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
        .phi(QUASI_1D_PHI)
        .duty_cycle(0.1)
        .build()
}

/// Prints the Fig. 2 series.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run() -> Result<(), CoreError> {
    println!("Figure 2 — self-consistent solutions for T_m and j_peak vs duty cycle");
    println!("Cu, j0 = 0.6 MA/cm², t_ox = 3 µm, t_m = 0.5 µm, W_m = 3 µm, φ = 0.88\n");
    let problem = fig2_problem()?;
    let rs = log_spaced(1.0e-4, 1.0, 17);
    let points = duty_cycle_sweep(&problem, &rs)?;
    let header = vec![
        "r".to_owned(),
        "T_m [°C]".to_owned(),
        "j_peak,sc [MA/cm²]".to_owned(),
        "j0/r EM-only [MA/cm²]".to_owned(),
        "sc/EM-only".to_owned(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2e}", p.duty_cycle),
                format!("{:.1}", p.solution.metal_temperature.to_celsius().value()),
                format!("{:.3}", p.solution.j_peak.to_mega_amps_per_cm2()),
                format!("{:.3}", p.em_only_peak.to_mega_amps_per_cm2()),
                format!("{:.3}", p.peak_penalty()),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &rows));

    // The paper's quantitative callout at r = 1e-2.
    let p2 = problem.with_duty_cycle(1.0e-2)?;
    let s2 = p2.solve()?;
    let ratio = p2.em_only_peak() / s2.j_peak;
    println!(
        "\nshape check: at r = 1e-2, EM-only/self-consistent = {ratio:.2} \
         (paper: \"nearly 2 times smaller\"), lifetime penalty ≈ {:.1}× \
         (paper: \"nearly three times\")",
        ratio * ratio
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_runs() {
        run().unwrap();
    }

    #[test]
    fn headline_ratio_near_two() {
        let p = fig2_problem().unwrap().with_duty_cycle(1.0e-2).unwrap();
        let s = p.solve().unwrap();
        let ratio = p.em_only_peak() / s.j_peak;
        assert!(ratio > 1.4 && ratio < 2.4, "ratio = {ratio}");
    }
}
