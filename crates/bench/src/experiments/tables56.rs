//! Tables 5 and 6 — optimized interconnect and buffer parameters with the
//! resulting RMS and peak current densities, per metal layer, for the
//! 0.25 µm (Table 5) and 0.1 µm (Table 6, ε_r = 2.0 insulator)
//! technologies.

use hotwire_circuit::extract::extract_layer;
use hotwire_circuit::repeater::{optimal_design, simulate_repeater, RepeaterSimOptions};
use hotwire_circuit::CircuitError;
use hotwire_tech::{presets, Dielectric, Technology};

use crate::render_table;

fn technology(which: usize) -> Technology {
    match which {
        0 => presets::ntrs_250nm(),
        _ => {
            // Table 6's header: "Insulator dielectric constant = 2.0"
            presets::ntrs_100nm()
                .with_inter_level_dielectric(Dielectric::lowk2())
                .with_intra_level_dielectric(Dielectric::lowk2())
        }
    }
}

/// Runs Table 5 (`which = 0`) or Table 6 (`which = 1`).
///
/// # Errors
///
/// Propagates extraction/simulation errors.
pub fn run(which: usize) -> Result<(), CircuitError> {
    let tech = technology(which);
    let label = if which == 0 {
        "Table 5 — optimized buffers/interconnect, 0.25 µm Cu"
    } else {
        "Table 6 — optimized buffers/interconnect, 0.1 µm Cu, ε_r = 2.0"
    };
    println!(
        "{label}\n(per layer, simulated at the across-chip clock of {:.2} GHz)\n",
        tech.clock().to_gigahertz()
    );
    let header = vec![
        "layer".to_owned(),
        "r [kΩ/mm]".to_owned(),
        "c [fF/mm]".to_owned(),
        "coupling %".to_owned(),
        "l_opt [mm]".to_owned(),
        "s_opt".to_owned(),
        "j_rms [MA/cm²]".to_owned(),
        "j_peak [MA/cm²]".to_owned(),
        "r_eff".to_owned(),
    ];
    let mut rows = Vec::new();
    let n = tech.layers().len();
    // The top three layers carry the buffered global wiring.
    for index in (n.saturating_sub(3))..n {
        let layer = tech
            .layer_at(index)
            .map_err(|e| CircuitError::InvalidDevice {
                message: e.to_string(),
            })?;
        let ext = extract_layer(&tech, index)?;
        let design = optimal_design(&tech, index)?;
        let report = simulate_repeater(&tech, index, RepeaterSimOptions::default())?;
        rows.push(vec![
            layer.name().to_owned(),
            format!("{:.2}", ext.r.value() / 1.0e6), // Ω/m → kΩ/mm
            format!("{:.1}", ext.c_total().value() * 1.0e12), // F/m → fF/mm
            format!("{:.0}", ext.coupling_fraction() * 100.0),
            format!("{:.2}", design.l_opt.value() * 1.0e3),
            format!("{:.0}", design.s_opt),
            format!("{:.2}", report.j_rms().to_mega_amps_per_cm2()),
            format!("{:.2}", report.j_peak().to_mega_amps_per_cm2()),
            format!("{:.3}", report.effective_duty_cycle),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!(
        "\nshape checks: j_peak in the MA/cm² decade as in the paper; r_eff nearly \
         constant across layers; coupling a significant fraction of c; the \
         j_peak values here must sit below the corresponding Table 2 limits \
         (verified by tests/paper_pipeline.rs)."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn table5_runs() {
        super::run(0).unwrap();
    }

    #[test]
    fn table6_runs() {
        super::run(1).unwrap();
    }
}
