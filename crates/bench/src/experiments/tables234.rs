//! Tables 2, 3, 4 — maximum allowed peak current densities from the
//! self-consistent approach for the NTRS 0.25 µm (M5–M6) and 0.1 µm
//! (M7–M8) nodes, across dielectrics, for signal (r = 0.1) and power
//! (r = 1.0) lines.
//!
//! * Table 2: Cu, j₀ = 6×10⁵ A/cm²
//! * Table 3: Cu, j₀ = 1.8×10⁶ A/cm² ("more realistic for Cu EM")
//! * Table 4: AlCu, j₀ = 6×10⁵ A/cm²

use hotwire_core::rules::{DesignRuleSpec, DesignRuleTable};
use hotwire_core::CoreError;
use hotwire_tech::{presets, Technology};
use hotwire_units::CurrentDensity;

fn run_pair(
    title: &str,
    techs: [Technology; 2],
    j0: CurrentDensity,
) -> Result<[DesignRuleTable; 2], CoreError> {
    println!("{title}\n");
    let mut out = Vec::new();
    for tech in techs {
        println!("--- {} ---", tech.name());
        let spec = DesignRuleSpec::paper_defaults(&tech, 2, j0);
        let table = DesignRuleTable::generate(&spec)?;
        println!("{table}");
        out.push(table);
    }
    Ok(out.try_into().expect("two tables generated"))
}

fn shape_checks(tables: &[DesignRuleTable; 2]) {
    // The orderings the paper reads off these tables:
    for table in tables {
        let sig = "Signal Lines (r = 0.1)";
        let pow = "Power Lines (r = 1.0)";
        let layers: Vec<String> = {
            let mut v: Vec<String> = table.entries.iter().map(|e| e.layer.clone()).collect();
            v.dedup();
            v.sort();
            v.dedup();
            v
        };
        for layer in &layers {
            let ox = table.j_peak_ma_cm2(sig, layer, "oxide").unwrap();
            let hsq = table.j_peak_ma_cm2(sig, layer, "HSQ").unwrap();
            let poly = table.j_peak_ma_cm2(sig, layer, "polyimide").unwrap();
            assert!(ox > hsq && hsq > poly, "dielectric ordering at {layer}");
            let p_ox = table.j_peak_ma_cm2(pow, layer, "oxide").unwrap();
            assert!(ox > p_ox, "signal lines allow more than power lines");
        }
    }
    println!(
        "shape checks passed: oxide > HSQ > polyimide, upper level < lower level, \
         signal (r = 0.1) > power (r = 1.0) in every block."
    );
}

/// Table 2.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_table2() -> Result<(), CoreError> {
    let j0 = CurrentDensity::from_amps_per_cm2(6.0e5);
    let tables = run_pair(
        "Table 2 — max allowed j_peak [MA/cm²], Cu, j0 = 6e5 A/cm²",
        [presets::ntrs_250nm(), presets::ntrs_100nm()],
        j0,
    )?;
    shape_checks(&tables);
    Ok(())
}

/// Table 3.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_table3() -> Result<(), CoreError> {
    let j0 = CurrentDensity::from_amps_per_cm2(1.8e6);
    let tables = run_pair(
        "Table 3 — max allowed j_peak [MA/cm²], Cu, j0 = 1.8e6 A/cm² (realistic Cu EM)",
        [presets::ntrs_250nm(), presets::ntrs_100nm()],
        j0,
    )?;
    shape_checks(&tables);
    // Table 3 vs Table 2: 3× j0 helps, sub-linearly where heating bites.
    let j0_small = CurrentDensity::from_amps_per_cm2(6.0e5);
    let t250 = presets::ntrs_250nm();
    let t2 = DesignRuleTable::generate(&DesignRuleSpec::paper_defaults(&t250, 2, j0_small))?;
    let sig = "Signal Lines (r = 0.1)";
    let gain = tables[0].j_peak_ma_cm2(sig, "M6", "oxide").unwrap()
        / t2.j_peak_ma_cm2(sig, "M6", "oxide").unwrap();
    println!("shape check: 3× j0 yields {gain:.2}× j_peak on M6 signal lines (< 3 once heating matters).");
    Ok(())
}

/// Table 4.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_table4() -> Result<(), CoreError> {
    let j0 = CurrentDensity::from_amps_per_cm2(6.0e5);
    let tables = run_pair(
        "Table 4 — max allowed j_peak [MA/cm²], AlCu, j0 = 6e5 A/cm²",
        [presets::ntrs_250nm_alcu(), presets::ntrs_100nm_alcu()],
        j0,
    )?;
    shape_checks(&tables);
    // AlCu < Cu at the same j0 wherever self-heating matters.
    let t250 = presets::ntrs_250nm();
    let cu = DesignRuleTable::generate(&DesignRuleSpec::paper_defaults(&t250, 2, j0))?;
    let sig = "Signal Lines (r = 0.1)";
    let j_cu = cu.j_peak_ma_cm2(sig, "M6", "oxide").unwrap();
    let j_al = tables[0].j_peak_ma_cm2(sig, "M6", "oxide").unwrap();
    assert!(j_al < j_cu);
    println!(
        "shape check: AlCu M6 signal {j_al:.2} < Cu {j_cu:.2} MA/cm² (higher ρ ⇒ more self-heating)."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_run() {
        super::run_table2().unwrap();
        super::run_table3().unwrap();
        super::run_table4().unwrap();
    }
}
