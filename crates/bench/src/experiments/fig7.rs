//! Fig. 7 — current waveforms in the top-layer metal lines of the
//! 0.25 µm and 0.1 µm technologies, from transient simulation of the
//! optimally buffered stage.

use hotwire_circuit::repeater::{simulate_repeater, RepeaterSimOptions};
use hotwire_circuit::CircuitError;
use hotwire_tech::presets;

/// Prints ASCII renderings of the two current waveforms plus their
/// statistics.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run() -> Result<(), CircuitError> {
    println!("Figure 7 — repeater-output current waveforms, top metal layer\n");
    for tech in [presets::ntrs_250nm(), presets::ntrs_100nm()] {
        let top = tech.layers().len() - 1;
        let report = simulate_repeater(&tech, top, RepeaterSimOptions::default())?;
        println!(
            "{} / {} — one clock period ({:.2} ns), current density in the first wire segment:",
            tech.name(),
            tech.top_layer().name(),
            tech.clock().period().to_nanos()
        );
        print!("{}", ascii_waveform(&report.waveform, 64, 12));
        println!(
            "j_peak = {:.2} MA/cm², j_rms = {:.2} MA/cm², r_eff = {:.3}, slew = {:.3}\n",
            report.j_peak().to_mega_amps_per_cm2(),
            report.j_rms().to_mega_amps_per_cm2(),
            report.effective_duty_cycle,
            report.relative_slew
        );
    }
    println!(
        "shape check: one positive and one negative current excursion per period \
         (charge/discharge through the repeater), same relative shape across \
         technologies; the paper reports r_eff = 0.12 ± 0.01 with the key claim \
         being its invariance across layers and nodes."
    );
    Ok(())
}

/// Renders a sampled waveform as a `width`×`height` ASCII plot.
#[must_use]
pub fn ascii_waveform(w: &hotwire_em::SampledWaveform, width: usize, height: usize) -> String {
    let times = w.times();
    let densities = w.densities();
    let t0 = times[0].value();
    let t1 = times[times.len() - 1].value();
    let peak = densities
        .iter()
        .map(|d| d.value().abs())
        .fold(1e-300, f64::max);
    // resample to the plot width
    let mut cols = vec![0.0_f64; width];
    for (t, d) in times.iter().zip(densities) {
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let col = (((t.value() - t0) / (t1 - t0)) * (width as f64 - 1.0)).round() as usize;
        let v = d.value() / peak;
        if v.abs() > cols[col].abs() {
            cols[col] = v;
        }
    }
    let mut out = String::new();
    #[allow(clippy::cast_precision_loss)]
    for row in 0..height {
        let level = 1.0 - 2.0 * (row as f64 + 0.5) / height as f64; // +1 → −1
        let mut line = String::with_capacity(width + 2);
        for &v in &cols {
            let half = 1.0 / height as f64;
            let ch = if (v - level).abs() < half {
                '*'
            } else if level.abs() <= half {
                '-'
            } else {
                ' '
            };
            line.push(ch);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::{CurrentDensity, Seconds};

    #[test]
    fn ascii_plot_marks_peak_and_axis() {
        let w = hotwire_em::SampledWaveform::from_fn(Seconds::new(1.0e-9), 64, |t| {
            CurrentDensity::new(1.0e10 * (2.0 * std::f64::consts::PI * t.value() / 1.0e-9).sin())
        })
        .unwrap();
        let plot = ascii_waveform(&w, 32, 8);
        assert!(plot.contains('*'));
        assert!(plot.contains('-'));
        assert_eq!(plot.lines().count(), 8);
    }
}
