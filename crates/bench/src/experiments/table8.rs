//! Table 8 — the NTRS technology file (the *input* of the study). Echoes
//! the reconstructed presets in full, flagging the values honoured from
//! the legible fragments of the scanned table.

use hotwire_tech::presets;

use crate::render_table;

/// Prints the reconstructed Table 8.
pub fn run() {
    println!("Table 8 — reconstructed NTRS technology files (inputs; see DESIGN.md)\n");
    for tech in [presets::ntrs_250nm(), presets::ntrs_100nm()] {
        println!(
            "--- {} — Vdd {:.1} V, clock {:.2} GHz, T_ref {:.0} °C, metal {} ---",
            tech.name(),
            tech.vdd().value(),
            tech.clock().to_gigahertz(),
            tech.reference_temperature().to_celsius().value(),
            tech.metal().name()
        );
        let rho = tech.metal().resistivity(tech.reference_temperature());
        let header = vec![
            "layer".to_owned(),
            "W [µm]".to_owned(),
            "pitch [µm]".to_owned(),
            "t_m [µm]".to_owned(),
            "ILD below [µm]".to_owned(),
            "sheet ρ [Ω/□]".to_owned(),
            "b to substrate [µm]".to_owned(),
        ];
        let rows: Vec<Vec<String>> = tech
            .layers()
            .iter()
            .map(|l| {
                vec![
                    l.name().to_owned(),
                    format!("{:.2}", l.width().to_micrometers()),
                    format!("{:.2}", l.pitch().to_micrometers()),
                    format!("{:.2}", l.thickness().to_micrometers()),
                    format!("{:.2}", l.ild_below().to_micrometers()),
                    format!("{:.3}", l.sheet_resistance(rho).value()),
                    format!(
                        "{:.2}",
                        tech.underlying_dielectric_thickness(l.index())
                            .to_micrometers()
                    ),
                ]
            })
            .collect();
        print!("{}", render_table(&header, &rows));
        println!();
    }
    println!(
        "honoured scan fragments: M1 sheet ρ ≈ 0.085 Ω/□ at 0.1 µm; ILD fragments \
         0.65 µm (0.25 µm node) / 0.32 µm (0.1 µm node); global t_m 0.9 µm / 0.55 µm \
         family; remaining values from the public NTRS-97 roadmap."
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn table8_runs() {
        super::run();
    }
}
