//! Ablation studies over the design choices DESIGN.md calls out: the
//! heat-spreading parameter φ, the thermally-short-line correction, the
//! Blech immortality relaxation, and switching activity.

use hotwire_core::rules::{layer_stack, DesignRuleSpec, DesignRuleTable};
use hotwire_core::short_line::solve_with_fin_correction;
use hotwire_core::{CoreError, SelfConsistentProblem};
use hotwire_em::blech::BlechModel;
use hotwire_em::SampledWaveform;
use hotwire_tech::{presets, Dielectric};
use hotwire_thermal::impedance::{LineGeometry, QUASI_1D_PHI, QUASI_2D_PHI};
use hotwire_units::{CurrentDensity, Length, Seconds};

use crate::render_table;

/// Prints all ablations.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run() -> Result<(), CoreError> {
    phi_ablation()?;
    short_line_and_blech()?;
    activity_ablation();
    Ok(())
}

/// φ = 0.88 (quasi-1-D) vs 2.45 (the paper's extraction): how much
/// design-rule headroom does the measured heat spreading buy?
fn phi_ablation() -> Result<(), CoreError> {
    println!("Ablation A — heat-spreading parameter φ (0.88 vs 2.45)\n");
    let tech = presets::ntrs_100nm();
    let j0 = CurrentDensity::from_amps_per_cm2(1.8e6);
    let mut tables = Vec::new();
    for phi in [QUASI_1D_PHI, QUASI_2D_PHI] {
        let spec = DesignRuleSpec {
            phi,
            ..DesignRuleSpec::paper_defaults(&tech, 2, j0)
        };
        tables.push(DesignRuleTable::generate(&spec)?);
    }
    let header = vec![
        "layer/dielectric".to_owned(),
        "jpk @φ=0.88".to_owned(),
        "jpk @φ=2.45".to_owned(),
        "headroom".to_owned(),
    ];
    let mut rows = Vec::new();
    let sig = "Signal Lines (r = 0.1)";
    for layer in ["M7", "M8"] {
        for d in ["oxide", "polyimide"] {
            let a = tables[0].j_peak_ma_cm2(sig, layer, d).expect("generated");
            let b = tables[1].j_peak_ma_cm2(sig, layer, d).expect("generated");
            rows.push(vec![
                format!("{layer}/{d}"),
                format!("{a:.2}"),
                format!("{b:.2}"),
                format!("{:+.0} %", (b / a - 1.0) * 100.0),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
    println!(
        "\nreading: the measured quasi-2-D spreading justifies \"more aggressive \
         design rules\" (paper §3.2) — quantified above.\n"
    );
    Ok(())
}

/// Short-line fin correction and Blech immortality vs line length.
fn short_line_and_blech() -> Result<(), CoreError> {
    println!("Ablation B — length effects: fin correction × Blech immortality\n");
    let tech = presets::ntrs_250nm();
    let m4 = tech.layer("M4").expect("preset M4");
    let stack = layer_stack(&tech, m4.index(), &Dielectric::oxide())?;
    let blech = BlechModel::copper();
    let header = vec![
        "L [µm]".to_owned(),
        "baseline jpk [MA/cm²]".to_owned(),
        "fin-corrected [MA/cm²]".to_owned(),
        "Blech floor (j_avg) [MA/cm²]".to_owned(),
        "governing".to_owned(),
    ];
    let mut rows = Vec::new();
    for l_um in [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0] {
        let problem = SelfConsistentProblem::builder()
            .metal(
                tech.metal()
                    .clone()
                    .with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)),
            )
            .line(
                LineGeometry::new(m4.width(), m4.thickness(), Length::from_micrometers(l_um))
                    .map_err(CoreError::Thermal)?,
            )
            .stack(stack.clone())
            .duty_cycle(0.1)
            .build()?;
        let base = problem.solve()?;
        let fin = solve_with_fin_correction(&problem, &stack)?;
        let blech_floor = blech.immortality_density(Length::from_micrometers(l_um));
        // Blech works on the average density; express as the peak it implies.
        let blech_peak = blech_floor / 0.1;
        let governing = if blech_peak > fin.solution.j_peak {
            "immortal (Blech)"
        } else if fin.correction < 0.9 {
            "fin-corrected"
        } else {
            "baseline"
        };
        rows.push(vec![
            format!("{l_um:.0}"),
            format!("{:.2}", base.j_peak.to_mega_amps_per_cm2()),
            format!("{:.2}", fin.solution.j_peak.to_mega_amps_per_cm2()),
            format!("{:.2}", blech_floor.to_mega_amps_per_cm2()),
            governing.to_owned(),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!(
        "\nreading: sub-λ jogs are governed by Blech immortality, λ-scale wires \
         by via cooling, global wires by the paper's baseline rule.\n"
    );
    Ok(())
}

/// Switching activity vs effective duty cycle (and therefore the thermal
/// rule that applies).
fn activity_ablation() {
    println!("Ablation C — switching activity vs effective duty cycle\n");
    let header = vec![
        "toggle density".to_owned(),
        "r_eff".to_owned(),
        "j_rms / j_peak".to_owned(),
    ];
    let mut rows = Vec::new();
    for (label, stride) in [("every bit", 1usize), ("1 in 4", 4), ("1 in 16", 16)] {
        let bits: Vec<bool> = (0..64).map(|k| (k / stride) % 2 == 0).collect();
        let w = SampledWaveform::from_bit_stream(
            Seconds::from_nanos(1.0),
            &bits,
            0.25,
            CurrentDensity::from_mega_amps_per_cm2(3.0),
            64,
        )
        .expect("static parameters are valid");
        let stats = w.stats();
        rows.push(vec![
            label.to_owned(),
            format!("{:.3}", stats.effective_duty_cycle()),
            format!("{:.3}", stats.rms / stats.peak),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!(
        "\nreading: global wires keep high activity (the paper's argument for \
         r = 0.1); idle lines heat far less but their EM-per-transition is \
         unchanged."
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_run() {
        super::run().unwrap();
    }
}
