//! Fig. 3 — dependence of the self-consistent T_m and j_peak on the EM
//! design-rule density j₀, showing j₀'s diminishing effectiveness at
//! small duty cycles.

use hotwire_core::sweep::{j0_sweep, log_spaced};
use hotwire_core::CoreError;
use hotwire_units::CurrentDensity;

use crate::render_table;

/// Prints the Fig. 3 series.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run() -> Result<(), CoreError> {
    println!("Figure 3 — T_m and j_peak vs duty cycle for several j0 (Cu, same line as Fig. 2)\n");
    let problem = super::fig2::fig2_problem()?;
    let j0s: Vec<CurrentDensity> = [0.6, 1.2, 1.8, 2.4]
        .iter()
        .map(|&v| CurrentDensity::from_mega_amps_per_cm2(v))
        .collect();
    let rs = log_spaced(1.0e-4, 1.0, 9);
    let series = j0_sweep(&problem, &j0s, &rs)?;

    let mut header = vec!["r".to_owned()];
    for s in &series {
        header.push(format!("T_m@j0={:.1} [°C]", s.j0.to_mega_amps_per_cm2()));
    }
    for s in &series {
        header.push(format!(
            "jpk@j0={:.1} [MA/cm²]",
            s.j0.to_mega_amps_per_cm2()
        ));
    }
    let rows: Vec<Vec<String>> = (0..rs.len())
        .map(|i| {
            let mut row = vec![format!("{:.2e}", rs[i])];
            for s in &series {
                row.push(format!(
                    "{:.1}",
                    s.points[i].solution.metal_temperature.to_celsius().value()
                ));
            }
            for s in &series {
                row.push(format!(
                    "{:.2}",
                    s.points[i].solution.j_peak.to_mega_amps_per_cm2()
                ));
            }
            row
        })
        .collect();
    print!("{}", render_table(&header, &rows));

    // Shape check: 4× j0 buys much less than 4× j_peak at r = 1e-4.
    let gain_small_r =
        series[3].points[0].solution.j_peak.value() / series[0].points[0].solution.j_peak.value();
    let gain_large_r = series[3].points[rs.len() - 1].solution.j_peak.value()
        / series[0].points[rs.len() - 1].solution.j_peak.value();
    println!(
        "\nshape check: 4× j0 buys {gain_small_r:.2}× j_peak at r = 1e-4 vs \
         {gain_large_r:.2}× at r = 1 (paper: j0 \"increasingly ineffective\" as r falls)"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_runs() {
        super::run().unwrap();
    }
}
