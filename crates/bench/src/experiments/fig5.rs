//! Fig. 5 — effective thermal impedance of level-1 AlCu lines vs line
//! width, oxide vs HSQ gap fill, and the extraction of the
//! heat-spreading parameter φ (paper value: 2.45).
//!
//! The paper *measured* fabricated 0.25 µm structures; we regenerate the
//! measurement with the finite-volume cross-section solver (see
//! DESIGN.md's substitution table).

use hotwire_tech::Dielectric;
use hotwire_thermal::grid2d::{MeshControl, SingleWireStructure, SolveOptions};
use hotwire_thermal::ThermalError;
use hotwire_units::Length;

use crate::render_table;

/// The Fig. 5 width sweep (µm).
pub const WIDTHS_UM: [f64; 6] = [0.35, 0.6, 1.0, 1.6, 2.5, 3.5];

/// One `(width_um, theta_oxide, theta_hsq)` row of the Fig. 5 series,
/// impedances in K/W for L = 1000 µm.
pub type Fig5Row = (f64, f64, f64);

/// Runs the simulated Fig. 5 experiment, returning the width-sweep rows
/// plus the extracted φ at the narrowest width.
///
/// # Errors
///
/// Propagates grid-solver errors.
pub fn series() -> Result<(Vec<Fig5Row>, f64), ThermalError> {
    let um = Length::from_micrometers;
    let control = MeshControl::resolving(um(0.07), 1);
    let options = SolveOptions::default();
    let length = um(1000.0);
    let mut rows = Vec::new();
    let mut phi = 0.0;
    for &w in &WIDTHS_UM {
        let oxide = SingleWireStructure::all_oxide(um(w), um(0.55), um(1.2));
        let hsq = oxide.clone().with_gap_fill(Dielectric::hsq());
        let sol_ox = oxide.solve(um(6.0), control, options)?;
        let sol_hsq = hsq.solve(um(6.0), control, options)?;
        if (w - WIDTHS_UM[0]).abs() < 1e-12 {
            phi = sol_ox.phi();
        }
        rows.push((
            w,
            sol_ox.thermal_impedance(length).value(),
            sol_hsq.thermal_impedance(length).value(),
        ));
    }
    Ok((rows, phi))
}

/// Prints the Fig. 5 series.
///
/// # Errors
///
/// Propagates grid-solver errors.
pub fn run() -> Result<(), ThermalError> {
    println!("Figure 5 — effective thermal impedance vs line width");
    println!("level-1 AlCu, t_m = 0.55 µm, t_ox = 1.2 µm, L = 1000 µm (simulated measurement)\n");
    let (rows, phi) = series()?;
    let header = vec![
        "W [µm]".to_owned(),
        "θ oxide [K/W]".to_owned(),
        "θ HSQ gap fill [K/W]".to_owned(),
        "HSQ/oxide".to_owned(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, a, b)| {
            vec![
                format!("{w:.2}"),
                format!("{a:.1}"),
                format!("{b:.1}"),
                format!("{:.3}", b / a),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &table));
    let narrow_ratio = rows[0].2 / rows[0].1;
    println!(
        "\nextracted φ at W = 0.35 µm: {phi:.2} (paper: 2.45 from measurements)\n\
         shape check: HSQ gap fill raises θ by {:.0} % at the narrowest width \
         (paper: ≈ 20 %), and θ falls monotonically with width",
        (narrow_ratio - 1.0) * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes() {
        let (rows, phi) = series().unwrap();
        // θ decreases with width for both processes
        for w in rows.windows(2) {
            assert!(w[1].1 < w[0].1);
            assert!(w[1].2 < w[0].2);
        }
        // HSQ is always worse, most at the narrowest line
        for (_, a, b) in &rows {
            assert!(b > a);
        }
        let first = rows[0].2 / rows[0].1;
        let last = rows[rows.len() - 1].2 / rows[rows.len() - 1].1;
        assert!(first > last, "gap-fill penalty is largest for narrow lines");
        // φ in the quasi-2-D regime
        assert!(phi > 1.0 && phi < 4.0, "φ = {phi}");
    }
}
