//! Table 7 — maximum allowed peak current density for a metal-4 line in a
//! densely packed 4-level array with all lines heated, vs the same line
//! isolated. The paper (via the FEM results of Rzepka et al. \[11\])
//! reports 6.4 vs 10.6 MA/cm² — a ≈ 40 % reduction.
//!
//! We regenerate the coupling constants with the finite-volume array
//! solver and push them through the modified self-consistent equation
//! (eq. 18 → eq. 13).

use hotwire_core::rules::array_comparison;
use hotwire_core::{CoreError, SelfConsistentProblem};
use hotwire_tech::{presets, Dielectric};
use hotwire_thermal::grid2d::{ArrayLevel, ArrayStructure, MeshControl, SolveOptions};
use hotwire_thermal::impedance::LineGeometry;
use hotwire_units::{CurrentDensity, Length};

use crate::render_table;

/// Builds the quadruple-level array of the paper's Fig. 8 from the
/// 0.25 µm preset's lower four levels.
#[must_use]
pub fn fig8_array() -> ArrayStructure {
    let tech = presets::ntrs_250nm();
    ArrayStructure {
        levels: tech.layers()[..4]
            .iter()
            .map(|l| ArrayLevel {
                width: l.width(),
                pitch: l.pitch(),
                thickness: l.thickness(),
                ild_below: l.ild_below(),
            })
            .collect(),
        dielectric: Dielectric::oxide(),
        cap_thickness: Length::from_micrometers(1.0),
        metal_conductivity: 395.0,
        periods: 5,
    }
}

/// Prints the Table 7 comparison.
///
/// # Errors
///
/// Propagates grid and solver errors.
pub fn run() -> Result<(), CoreError> {
    println!("Table 7 — M4 in a dense 4-level array (all lines hot) vs isolated M4\n");
    let array = fig8_array();
    let control = MeshControl::resolving(Length::from_micrometers(0.1), 1);
    let options = SolveOptions::default();
    let heated = vec![true; 4];
    let rise_dense = array
        .solve_rise(&heated, true, 3, control, options)
        .map_err(CoreError::Thermal)?;
    let rise_isolated = array
        .solve_rise(&heated, false, 3, control, options)
        .map_err(CoreError::Thermal)?;

    let tech = presets::ntrs_250nm();
    let m4 = tech.layer("M4").expect("preset M4");
    let problem = SelfConsistentProblem::builder()
        .metal(
            tech.metal()
                .clone()
                .with_design_rule_j0(CurrentDensity::from_amps_per_cm2(1.8e6)),
        )
        .line(
            LineGeometry::new(m4.width(), m4.thickness(), Length::from_micrometers(1000.0))
                .map_err(CoreError::Thermal)?,
        )
        .heating_constant(1.0) // replaced inside array_comparison
        .duty_cycle(0.1)
        .build()?;
    let cmp = array_comparison(&problem, rise_dense, rise_isolated)?;

    let header = vec![
        "configuration".to_owned(),
        "rise per line power [K/(W/m)]".to_owned(),
        "max allowed j_peak [MA/cm²]".to_owned(),
    ];
    let rows = vec![
        vec![
            "M1–M4 heated (3-D)".to_owned(),
            format!("{rise_dense:.3e}"),
            format!("{:.1}", cmp.j_peak_dense.to_mega_amps_per_cm2()),
        ],
        vec![
            "Isolated M4 heated (2-D)".to_owned(),
            format!("{rise_isolated:.3e}"),
            format!("{:.1}", cmp.j_peak_isolated.to_mega_amps_per_cm2()),
        ],
    ];
    print!("{}", render_table(&header, &rows));
    println!(
        "\npaper: 6.4 vs 10.6 MA/cm² (≈ 40 % reduction); measured reduction here: {:.0} %",
        cmp.reduction * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn table7_runs() {
        super::run().unwrap();
    }
}
