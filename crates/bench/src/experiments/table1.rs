//! Table 1 — thermal conductivities of the dielectric materials.

use hotwire_tech::Dielectric;

use crate::render_table;

/// Prints Table 1 (plus the extension materials this library adds).
pub fn run() {
    println!("Table 1 — dielectric thermal conductivities\n");
    let header = vec![
        "material".to_owned(),
        "k_th [W/(m·K)]".to_owned(),
        "ε_r".to_owned(),
        "in paper".to_owned(),
    ];
    let rows: Vec<Vec<String>> = Dielectric::all_builtin()
        .iter()
        .map(|d| {
            let in_paper = matches!(d.name(), "oxide" | "HSQ" | "polyimide");
            vec![
                d.name().to_owned(),
                format!("{:.2}", d.thermal_conductivity().value()),
                format!("{:.1}", d.relative_permittivity()),
                if in_paper { "yes" } else { "extension" }.to_owned(),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &rows));
    println!(
        "\npaper values: oxide (PETEOS) 1.15, HSQ 0.6, polyimide 0.25 W/(m·K) — matched exactly."
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_runs() {
        super::run();
    }
}
