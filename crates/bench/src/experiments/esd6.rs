//! §6 — thermal effects under ESD conditions: regenerate the critical
//! current density vs pulse width curve and compare with the paper's
//! quoted 60 MA/cm² open-circuit threshold for AlCu at ESD time scales.

use hotwire_tech::{Dielectric, Metal};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_2D_PHI};
use hotwire_thermal::transient::TransientLine;
use hotwire_thermal::ThermalError;
use hotwire_units::{Celsius, Length, Seconds};

use crate::render_table;

/// Prints j_crit(t_pulse) for AlCu and Cu.
///
/// # Errors
///
/// Propagates transient-solver errors.
pub fn run() -> Result<(), ThermalError> {
    println!("§6 — critical current density vs pulse width (open-circuit melt)\n");
    let um = Length::from_micrometers;
    let line = LineGeometry::new(um(3.0), um(0.55), um(100.0))?;
    let stack = InsulatorStack::single(um(1.2), &Dielectric::oxide());
    let ambient = Celsius::new(25.0).to_kelvin();

    let header = vec![
        "pulse width [ns]".to_owned(),
        "AlCu j_crit [MA/cm²]".to_owned(),
        "Cu j_crit [MA/cm²]".to_owned(),
        "AlCu adiabatic bound".to_owned(),
    ];
    let mut rows = Vec::new();
    let alcu = TransientLine::new(Metal::alcu(), line, &stack, QUASI_2D_PHI, ambient)?;
    let cu = TransientLine::new(Metal::copper(), line, &stack, QUASI_2D_PHI, ambient)?;
    let mut j_at_150 = 0.0;
    for ns in [25.0, 50.0, 100.0, 150.0, 200.0, 500.0] {
        let width = Seconds::from_nanos(ns);
        let j_al = alcu.critical_density(width, 1e-3)?;
        let j_cu = cu.critical_density(width, 1e-3)?;
        let j_ad = alcu.adiabatic_critical_density(width);
        if (ns - 150.0).abs() < 1e-9 {
            j_at_150 = j_al.to_mega_amps_per_cm2();
        }
        rows.push(vec![
            format!("{ns:.0}"),
            format!("{:.1}", j_al.to_mega_amps_per_cm2()),
            format!("{:.1}", j_cu.to_mega_amps_per_cm2()),
            format!("{:.1}", j_ad.to_mega_amps_per_cm2()),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!(
        "\npaper (ref. [8]): AlCu open-circuit threshold ≈ 60 MA/cm² at ESD time \
         scales (< 200 ns); measured here at 150 ns: {j_at_150:.0} MA/cm².\n\
         shape checks: j_crit ∝ t⁻¹ᐟ² in the adiabatic regime, flattening \
         toward the heat-sunk limit for long pulses; Cu above AlCu throughout."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn esd_runs() {
        super::run().unwrap();
    }
}
