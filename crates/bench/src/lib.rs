//! Reproduction harness for every table and figure of the DAC'99 paper.
//!
//! Each submodule of [`experiments`] regenerates one artifact of the
//! paper's evaluation; the `repro` binary drives them
//! (`cargo run -p hotwire-bench --bin repro -- --experiment all`).
//! `EXPERIMENTS.md` in the repository root records paper-vs-measured for
//! every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod baseline;
pub mod csv_export;
pub mod experiments;

/// Renders a simple aligned text table: a header row plus data rows, each
/// column right-aligned to its widest cell (first column left-aligned).
#[must_use]
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", cell, w = widths[i]));
            }
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let t = render_table(
            &["name".into(), "x".into()],
            &[
                vec!["a".into(), "1.5".into()],
                vec!["long-name".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12.25"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
