//! The **seed solver path**, preserved verbatim for benchmarking.
//!
//! Before the sparse solver and the direct DC formulation landed,
//! `PowerGrid::analyze` ran a one-step transient over the full MNA
//! system (voltage-source branches included) with a dense LU that
//! re-cloned and re-pivoted the matrix on every Newton iteration, and
//! the damped Newton update (±1 V per iteration) needed several
//! iterations just to walk the pad nodes up to `vdd`. This module
//! replays that exact algorithm so `BENCH_solver.json` and the criterion
//! benches can report an honest before/after on identical inputs —
//! nothing in the production crates calls it.

use hotwire_circuit::linalg::Matrix;
use hotwire_circuit::netlist::Device;
use hotwire_circuit::power_grid::PowerGrid;
use hotwire_circuit::CircuitError;

/// Result of the seed-path DC solve: per-node voltages (1-based node ids
/// map to `v[node-1]`) and the Newton iteration count it needed.
pub struct SeedDcSolution {
    /// Node voltages, indexed by `node - 1`.
    pub v: Vec<f64>,
    /// Newton iterations consumed (each one a full dense clone+factor).
    pub iterations: usize,
}

/// Replays the seed's DC solve on a power grid's circuit: full MNA with
/// branch currents, gmin, dense LU per damped-Newton iteration — the
/// cost profile `PowerGrid::analyze` had at the seed commit.
///
/// # Errors
///
/// Returns [`CircuitError::Singular`] exactly where the seed would have.
///
/// # Panics
///
/// Panics if the Newton loop fails to converge within 100 iterations
/// (cannot happen for the resistive grids this is benchmarked on).
pub fn seed_dense_dc_solve(grid: &PowerGrid) -> Result<SeedDcSolution, CircuitError> {
    let circuit = grid.circuit();
    let n_nodes = circuit.node_count();
    let branch_of: Vec<Option<usize>> = {
        let mut next = 0;
        circuit
            .devices()
            .iter()
            .map(|d| {
                if matches!(d, Device::VoltageSource { .. }) {
                    let b = next;
                    next += 1;
                    Some(b)
                } else {
                    None
                }
            })
            .collect()
    };
    let n_branches = branch_of.iter().flatten().count();
    let n = n_nodes + n_branches;
    let gmin = 1e-12;
    let vtol = 1e-6;
    let t = 1.0e-9; // the seed's single "transient" step time

    let mut g = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    let mut v = vec![0.0_f64; n];
    for iteration in 1..=100 {
        // Seed behavior: full restamp + full dense clone/pivot per
        // iteration.
        g.clear();
        rhs.fill(0.0);
        for node in 1..=n_nodes {
            g.add(node - 1, node - 1, gmin);
        }
        for (di, dev) in circuit.devices().iter().enumerate() {
            match dev {
                Device::Resistor { a, b, ohms } => {
                    let cond = 1.0 / ohms;
                    if *a > 0 {
                        g.add(a - 1, a - 1, cond);
                    }
                    if *b > 0 {
                        g.add(b - 1, b - 1, cond);
                    }
                    if *a > 0 && *b > 0 {
                        g.add(a - 1, b - 1, -cond);
                        g.add(b - 1, a - 1, -cond);
                    }
                }
                Device::VoltageSource {
                    plus,
                    minus,
                    waveform,
                } => {
                    let br = n_nodes + branch_of[di].expect("vsrc branch");
                    if *plus > 0 {
                        g.add(plus - 1, br, 1.0);
                        g.add(br, plus - 1, 1.0);
                    }
                    if *minus > 0 {
                        g.add(minus - 1, br, -1.0);
                        g.add(br, minus - 1, -1.0);
                    }
                    rhs[br] = waveform.at(t);
                }
                Device::CurrentSource {
                    from,
                    into,
                    waveform,
                } => {
                    let i = waveform.at(t);
                    if *from > 0 {
                        rhs[from - 1] -= i;
                    }
                    if *into > 0 {
                        rhs[into - 1] += i;
                    }
                }
                Device::Capacitor { .. } | Device::Mosfet { .. } => {
                    unreachable!("power grids are resistive")
                }
            }
        }
        let new_v = g.solve(&rhs)?;
        let mut max_dv = 0.0_f64;
        for (old, new) in v[..n_nodes].iter().zip(&new_v[..n_nodes]) {
            max_dv = max_dv.max((old - new).abs());
        }
        for (slot, new) in v.iter_mut().zip(&new_v) {
            let dv = new - *slot;
            *slot += dv.clamp(-1.0, 1.0); // the seed's damping
        }
        if max_dv < vtol {
            return Ok(SeedDcSolution {
                v,
                iterations: iteration,
            });
        }
    }
    panic!("seed Newton loop failed to converge on a resistive grid");
}

/// Convenience: the seed path's worst IR drop, for equivalence checks
/// against the new `analyze()` in benches and tests.
///
/// # Errors
///
/// Propagates [`seed_dense_dc_solve`] failures.
pub fn seed_worst_ir_drop(grid: &PowerGrid, vdd: f64) -> Result<f64, CircuitError> {
    let sol = seed_dense_dc_solve(grid)?;
    let n_nodes = grid.circuit().node_count();
    let mut worst = 0.0_f64;
    for node in 1..=n_nodes {
        worst = worst.max(vdd - sol.v[node - 1]);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_circuit::power_grid::{PowerGrid, PowerGridSpec};
    use hotwire_units::{Area, Current, Resistance, Voltage};

    fn grid(n: usize) -> PowerGrid {
        PowerGrid::build(&PowerGridSpec {
            rows: n,
            cols: n,
            segment_resistance: Resistance::new(0.5),
            strap_cross_section: Area::from_um2(1.44),
            vdd: Voltage::new(2.5),
            sink_per_node: Current::from_milliamps(0.4),
            pads: vec![(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)],
        })
        .unwrap()
    }

    #[test]
    fn seed_path_agrees_with_new_direct_solve() {
        let g = grid(8);
        let seed_drop = seed_worst_ir_drop(&g, 2.5).unwrap();
        let new_drop = g.analyze().unwrap().worst_ir_drop.value();
        assert!(
            (seed_drop - new_drop).abs() < 1e-6,
            "seed {seed_drop} vs direct {new_drop}"
        );
    }

    #[test]
    fn seed_newton_needs_multiple_dense_factorizations() {
        // Documents why the seed path was slow: ~4 full dense LU runs for
        // a single DC answer at vdd = 2.5 V (1 V damping per iteration).
        let sol = seed_dense_dc_solve(&grid(6)).unwrap();
        assert!(sol.iterations >= 3, "got {}", sol.iterations);
    }
}
