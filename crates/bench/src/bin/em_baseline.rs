//! Measures the tree-EM stress stage and writes the machine-readable
//! baseline `BENCH_em.json`.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin em_baseline
//! cargo run --release -p hotwire-bench --bin em_baseline -- --out BENCH_em.json
//! ```
//!
//! The headline claim is the steady-state filter's linearity: the tree
//! recurrence visits each segment a constant number of times, so the
//! per-segment cost must stay flat as lines grow from 100 to 10 000
//! segments (the binary refuses to write a baseline where it drifts by
//! more than 2×). The transient rows time one implicit Korhonen window
//! on the same lines — a factorization plus a fixed number of
//! backsolves over the FV mesh.

use std::process::ExitCode;
use std::time::Instant;

use hotwire_obs::metrics;
use hotwire_units::{CurrentDensity, Kelvin, Length, Seconds};

/// Line lengths (in segments) reported in the baseline file. The small
/// entry exists so the CI `bench-diff` job (which cannot afford the
/// 10k line's transient) has a committed size to compare against.
const SIZES: [usize; 3] = [100, 1000, 10_000];

/// Timing repetitions per size (medians are reported).
const REPS: usize = 3;

/// Inner-loop batch target: enough steady solves per measurement to
/// stay well above `bench_diff`'s 1 ms noise floor.
const STEADY_BATCH_TARGET: usize = 1_000_000;

/// Implicit steps in the timed transient window.
const TRANSIENT_STEPS: usize = 32;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct Row {
    segments: usize,
    steady_reps: usize,
    steady_batch_ms: f64,
    per_segment_ns: f64,
    transient_ms: f64,
    transient_unknowns: usize,
}

fn line(segments: usize) -> hotwire_em_tree::tree::InterconnectTree {
    // Modest drive at 110 °C: mortal in aggregate (long line, so the
    // filter does the full recurrence + extrema scan) but far from any
    // numerical edge.
    hotwire_em_tree::tree::InterconnectTree::straight_line(
        "bench",
        segments,
        Length::from_micrometers(10.0),
        Length::from_micrometers(0.5),
        Length::from_micrometers(0.5),
        CurrentDensity::from_mega_amps_per_cm2(0.5),
        Kelvin::new(383.15),
    )
    .expect("valid bench line")
}

fn timed_row(segments: usize, model: &hotwire_em_tree::model::KorhonenModel) -> Row {
    let tree = line(segments);
    let steady_reps = (STEADY_BATCH_TARGET / segments).max(1);
    let mut batch_ms = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..steady_reps {
            let s = hotwire_em_tree::steady::steady_state(&tree, model)
                .expect("steady solve on a valid tree");
            std::hint::black_box(s.max_tensile);
        }
        batch_ms.push(start.elapsed().as_secs_f64() * 1.0e3);
    }
    let steady_batch_ms = median(batch_ms);
    let per_segment_ns = steady_batch_ms * 1.0e6 / (steady_reps as f64) / (segments as f64);

    // One implicit window: factorization + TRANSIENT_STEPS backsolves
    // over the FV mesh (segments × resolution unknowns).
    let options = hotwire_em_tree::transient::TransientOptions::for_horizon(Seconds::new(1.0e7));
    let mut trans_ms = Vec::with_capacity(REPS);
    let mut unknowns = 0;
    for _ in 0..REPS {
        let mut solver = hotwire_em_tree::transient::KorhonenSolver::new(&tree, model, options)
            .expect("valid solver");
        unknowns = segments * options.resolution + 1;
        let start = Instant::now();
        solver
            .advance(Seconds::new(1.0e5), TRANSIENT_STEPS)
            .expect("transient window on a valid mesh");
        trans_ms.push(start.elapsed().as_secs_f64() * 1.0e3);
    }
    Row {
        segments,
        steady_reps,
        steady_batch_ms,
        per_segment_ns,
        transient_ms: median(trans_ms),
        transient_unknowns: unknowns,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_em.json");
    let mut metrics_out: Option<String> = None;
    let mut sizes: Vec<usize> = SIZES.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "-o" => {
                if i + 1 >= args.len() {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
                out_path.clone_from(&args[i + 1]);
                i += 2;
            }
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    eprintln!("--metrics-out needs a path");
                    return ExitCode::FAILURE;
                }
                metrics_out = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" => {
                if i + 1 >= args.len() {
                    eprintln!("--sizes needs a comma-separated list (e.g. 100,1000)");
                    return ExitCode::FAILURE;
                }
                match args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                {
                    Ok(list) if !list.is_empty() && list.iter().all(|&n| n >= 2) => sizes = list,
                    _ => {
                        eprintln!(
                            "--sizes: `{}` is not a list of line lengths ≥ 2",
                            args[i + 1]
                        );
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: em_baseline [--out <path>] [--metrics-out <path>] [--sizes n,n,...]\n\
                     times the tree-EM stress stage on straight lines: the\n\
                     linear-time steady-state immortality filter (per-segment\n\
                     cost must stay flat with line length) and one implicit\n\
                     Korhonen window over the FV mesh, and writes a JSON\n\
                     baseline (default: BENCH_em.json in the current\n\
                     directory); the baseline embeds a `metrics` registry\n\
                     snapshot, --metrics-out additionally writes it\n\
                     standalone, and --sizes restricts the line lengths\n\
                     (default: 100,1000,10000) — CI uses the small sizes"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let model =
        hotwire_em_tree::model::KorhonenModel::copper().expect("built-in copper Korhonen model");

    // Sanity anchor: on an immortal short line the implicit integrator
    // must relax to the analytic Korhonen steady state (linear stress
    // ramp, peak eZρjL/2Ω at the cathode) before we trust its timings.
    {
        let tree = hotwire_em_tree::tree::InterconnectTree::straight_line(
            "anchor",
            4,
            Length::from_micrometers(10.0),
            Length::from_micrometers(0.5),
            Length::from_micrometers(0.5),
            CurrentDensity::from_mega_amps_per_cm2(0.4),
            Kelvin::new(423.15),
        )
        .expect("valid anchor line");
        let steady =
            hotwire_em_tree::steady::steady_state(&tree, &model).expect("anchor steady solve");
        assert!(steady.immortal, "anchor line must be Blech-immortal");
        let total_l = tree.total_length().value();
        let kappa = model.kappa(Kelvin::new(423.15));
        let horizon = Seconds::new(50.0 * total_l * total_l / kappa);
        let mut solver = hotwire_em_tree::transient::KorhonenSolver::new(
            &tree,
            &model,
            hotwire_em_tree::transient::TransientOptions::for_horizon(horizon),
        )
        .expect("valid anchor solver");
        solver.run_to_failure().expect("anchor transient");
        let peak_t = solver
            .node_stress()
            .iter()
            .fold(0.0_f64, |m, s| m.max(s.value()));
        let peak_s = steady.max_tensile.value();
        assert!(
            (peak_t - peak_s).abs() / peak_s < 1.0e-2,
            "transient peak ({peak_t}) and analytic steady peak ({peak_s}) disagree; refusing to benchmark"
        );
    }

    let mut rows = Vec::new();
    for n in sizes {
        let row = timed_row(n, &model);
        eprintln!(
            "line-{n:<6} steady {reps:>6} reps {b:>9.3} ms   {ps:>7.1} ns/segment   transient(32 steps, {u} unknowns) {t:>9.3} ms",
            reps = row.steady_reps,
            b = row.steady_batch_ms,
            ps = row.per_segment_ns,
            u = row.transient_unknowns,
            t = row.transient_ms,
        );
        rows.push(row);
    }

    // The linearity gate the baseline exists to document: per-segment
    // steady-state cost flat within 2× across the measured sizes.
    if rows.len() >= 2 {
        let min = rows
            .iter()
            .map(|r| r.per_segment_ns)
            .fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.per_segment_ns)
            .fold(0.0_f64, f64::max);
        assert!(
            max <= 2.0 * min,
            "per-segment steady cost drifts {:.2}x across sizes (max {max:.1} ns, min {min:.1} ns) — the filter is no longer linear-time",
            max / min
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"tree-EM stress stage (straight Cu lines, 10 um segments, 0.5 MA/cm^2, 110 C)\",\n");
    json.push_str("  \"linearity\": \"the steady-state immortality filter is one BFS recurrence + one extrema scan per tree; per_segment_ns must stay flat (within 2x) from 100 to 10000 segments, and the binary refuses to write a baseline where it does not\",\n");
    json.push_str("  \"machine\": \"container, medians of 3 runs, steady times batched over `steady_reps` solves\",\n");
    json.push_str("  \"sizes\": [\n");
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"grid\": \"line-{n}\", \"segments\": {n}, \"steady_reps\": {reps}, \"steady_batch_ms\": {b:.3}, \"per_segment_ns\": {ps:.1}, \"transient_ms\": {t:.3}, \"transient_unknowns\": {u}}}{comma}\n",
            n = r.segments,
            reps = r.steady_reps,
            b = r.steady_batch_ms,
            ps = r.per_segment_ns,
            t = r.transient_ms,
            u = r.transient_unknowns,
            comma = if k + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    // Registry totals over every run above: solve/factorization counts
    // corroborate the timing story from the inside.
    let snapshot = metrics::snapshot();
    json.push_str(&format!("  \"metrics\": {}\n", snapshot.to_json()));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = metrics_out {
        let mut pretty = snapshot.to_json().to_pretty_string();
        pretty.push('\n');
        if let Err(e) = std::fs::write(&path, pretty) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
