//! Measures the coupled EM–IR–thermal fixed-point loop and writes the
//! machine-readable baseline `BENCH_coupled.json`.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin coupled_baseline
//! cargo run --release -p hotwire-bench --bin coupled_baseline -- --out BENCH_coupled.json
//! ```
//!
//! The headline number is the factorization-reuse ratio: iteration 1
//! pays the full sparse LU of the grid's MNA matrix, while iterations
//! 2+ restamp the same sparsity pattern and `refactor()` along the
//! cached pivot order. The file records both times per grid size so a
//! regression in either shows up as a ratio shift.
//!
//! Every grid size is measured twice: once plain and once with span
//! capture live (`spantree::capture_start`), the latter reported under
//! a `NxN+trace` label. The paired rows let `bench_diff
//! --trace-overhead` assert that full tracing stays within its bound of
//! the untraced run on the committed baseline.

use std::process::ExitCode;
use std::time::Instant;

use hotwire_circuit::power_grid::{PowerGrid, PowerGridSpec};
use hotwire_coupled::{CoupledEngine, CoupledGridSpec, CoupledOptions};
use hotwire_obs::{metrics, spantree};
use hotwire_units::{Area, Current, Resistance};

/// Grid edges reported in the baseline file. The 20×20 entry exists so
/// the CI `bench-diff` job (which cannot afford the big grids) has a
/// committed size to compare against.
const SIZES: [usize; 3] = [20, 50, 100];

/// Timing repetitions per grid size (medians are reported).
const REPS: usize = 3;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct Row {
    grid: String,
    unknowns: usize,
    iterations: usize,
    first_iter_ms: f64,
    later_iter_ms: f64,
    total_ms: f64,
    path: &'static str,
}

/// One converged run, timed per iteration. Returns
/// `(iterations, first_ms, median_later_ms, total_ms, solver_path)`.
///
/// Drives [`CoupledEngine::run`] (not `step()` in a hand-rolled loop)
/// so the run-level `coupled.run` registry timer encloses exactly the
/// work measured here — the embedded metrics snapshot and the `sizes`
/// timings must describe the same execution. Per-iteration times come
/// from the engine's own convergence trace.
///
/// With `traced` the run executes under a live span capture, so the
/// timings include every `trace::span` record the engine emits; the
/// captured tree is drained (outside the timed window) and discarded.
fn timed_run(n: usize, traced: bool) -> (usize, f64, f64, f64, &'static str) {
    let mut engine = CoupledEngine::new(CoupledGridSpec::demo(n, n), CoupledOptions::default())
        .expect("valid demo spec");
    if traced {
        spantree::capture_start();
    }
    let start = Instant::now();
    engine.run().expect("demo grid converges");
    let total_ms = start.elapsed().as_secs_f64() * 1.0e3;
    if traced {
        let captured = spantree::capture_take();
        assert!(
            !captured.telemetry || !captured.spans.is_empty(),
            "a traced run recorded no spans — the overhead row would measure nothing"
        );
    }
    let path = engine.solver_path().map_or("unknown", |p| p.label());
    let iter_ms: Vec<f64> = engine.trace().records.iter().map(|r| r.total_ms).collect();
    let first = iter_ms[0];
    let later = median(iter_ms[1..].to_vec());
    (iter_ms.len(), first, later, total_ms, path)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_coupled.json");
    let mut metrics_out: Option<String> = None;
    let mut sizes: Vec<usize> = SIZES.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "-o" => {
                if i + 1 >= args.len() {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
                out_path.clone_from(&args[i + 1]);
                i += 2;
            }
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    eprintln!("--metrics-out needs a path");
                    return ExitCode::FAILURE;
                }
                metrics_out = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" => {
                if i + 1 >= args.len() {
                    eprintln!("--sizes needs a comma-separated list (e.g. 20,50)");
                    return ExitCode::FAILURE;
                }
                match args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                {
                    Ok(list) if !list.is_empty() && list.iter().all(|&n| n >= 2) => sizes = list,
                    _ => {
                        eprintln!("--sizes: `{}` is not a list of grid edges ≥ 2", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: coupled_baseline [--out <path>] [--metrics-out <path>] [--sizes n,n,...]\n\
                     times the coupled electro-thermal fixed-point loop on square\n\
                     power grids (iterations to converge, first vs later iteration\n\
                     cost showing factorization reuse) and writes a JSON baseline\n\
                     (default: BENCH_coupled.json in the current directory); the\n\
                     baseline embeds a `metrics` registry snapshot, --metrics-out\n\
                     additionally writes it standalone, and --sizes restricts the\n\
                     grid edges (default: 20,50,100) — CI uses the small sizes;\n\
                     every size is also rerun under a live span capture and\n\
                     reported as `NxN+trace` for the bench_diff overhead gate"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Sanity anchor: at a negligible load the coupled loop's electrical
    // state must agree with the seed-era transient grid solve (behind
    // the circuit crate's `bench-baselines` feature) — heating is then
    // ~µK and resistivity effectively constant.
    {
        let n = 10;
        let spec = CoupledGridSpec {
            sink_per_node: Current::from_milliamps(0.01),
            ..CoupledGridSpec::demo(n, n)
        };
        let rho = spec.metal.resistivity(spec.reference_temperature).value();
        let area = spec.strap_width.value() * spec.strap_thickness.value();
        let seg_r = rho * spec.pitch.value() / area;
        let seed = PowerGrid::build(&PowerGridSpec {
            rows: n,
            cols: n,
            segment_resistance: Resistance::new(seg_r),
            strap_cross_section: Area::new(area),
            vdd: spec.vdd,
            sink_per_node: spec.sink_per_node,
            pads: spec.pads.clone(),
        })
        .expect("valid seed spec")
        .analyze_via_transient()
        .expect("seed path solves 10x10")
        .worst_ir_drop
        .value();
        let mut engine =
            CoupledEngine::new(spec.clone(), CoupledOptions::default()).expect("valid anchor spec");
        engine.run().expect("anchor grid converges");
        let coupled = spec.vdd.value()
            - engine
                .node_voltages()
                .iter()
                .fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(
            (seed - coupled).abs() < 1.0e-6,
            "seed transient drop ({seed}) and coupled drop ({coupled}) disagree; refusing to benchmark"
        );
    }

    let mut rows = Vec::new();
    for n in sizes {
        for traced in [false, true] {
            let runs: Vec<(usize, f64, f64, f64, &'static str)> =
                (0..REPS).map(|_| timed_run(n, traced)).collect();
            let iterations = runs[0].0;
            assert!(
                runs.iter().all(|r| r.0 == iterations),
                "iteration count must be deterministic"
            );
            let path = runs[0].4;
            let first_iter_ms = median(runs.iter().map(|r| r.1).collect());
            let later_iter_ms = median(runs.iter().map(|r| r.2).collect());
            let total_ms = median(runs.iter().map(|r| r.3).collect());
            let label = format!("{n}x{n}{}", if traced { "+trace" } else { "" });
            eprintln!(
                "{label:>15} {iterations:>3} iterations   first {first_iter_ms:>9.3} ms   later {later_iter_ms:>9.3} ms   total {total_ms:>10.3} ms   ({path})"
            );
            rows.push(Row {
                grid: label,
                unknowns: n * n - 4,
                iterations,
                first_iter_ms,
                later_iter_ms,
                total_ms,
                path,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"coupled EM-IR-thermal fixed point (CoupledGridSpec::demo, damped Picard, tol 0.05 K)\",\n");
    json.push_str("  \"first_vs_later\": \"iteration 1 pays the full sparse factorization (AMD-ordered LDL^T for the SPD grid stamps, sparse LU otherwise); iterations 2+ restamp and refactor() along the cached ordering — the ratio is the factorization-reuse payoff\",\n");
    json.push_str("  \"machine\": \"container, medians of 3 runs\",\n");
    json.push_str("  \"trace_rows\": \"grids labeled NxN+trace rerun the same workload under a live span capture (hotwire_obs::spantree); bench_diff --trace-overhead pairs them with the plain rows and bounds the tracing cost\",\n");
    json.push_str("  \"sizes\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let speedup = r.first_iter_ms / r.later_iter_ms;
        json.push_str(&format!(
            "    {{\"grid\": \"{n}\", \"unknowns\": {u}, \"iterations\": {it}, \"first_iter_ms\": {f:.3}, \"later_iter_ms\": {l:.3}, \"refactor_speedup\": {sp:.1}, \"total_ms\": {t:.3}, \"path\": \"{p}\"}}{comma}\n",
            n = r.grid,
            u = r.unknowns,
            it = r.iterations,
            f = r.first_iter_ms,
            l = r.later_iter_ms,
            sp = speedup,
            t = r.total_ms,
            p = r.path,
            comma = if k + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    // Registry totals over every run above: factor vs refactor counts
    // corroborate the first-vs-later timing story from the inside.
    let snapshot = metrics::snapshot();
    json.push_str(&format!("  \"metrics\": {}\n", snapshot.to_json()));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = metrics_out {
        let mut pretty = snapshot.to_json().to_pretty_string();
        pretty.push('\n');
        if let Err(e) = std::fs::write(&path, pretty) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
