//! Regenerates every table and figure of the DAC'99 paper.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin repro -- --experiment all
//! cargo run --release -p hotwire-bench --bin repro -- --experiment fig2
//! cargo run --release -p hotwire-bench --bin repro -- --jobs 4
//! cargo run --release -p hotwire-bench --bin repro -- --list
//! ```
//!
//! With more than one experiment selected and `--jobs > 1` (the default
//! follows the machine's parallelism), experiments run as child
//! processes of this same binary and their captured output is printed
//! **in selection order** — byte-identical to a serial run.

use std::process::ExitCode;

use hotwire_bench::experiments;
use rayon::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                if i + 1 >= args.len() {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
                csv_dir = Some(args[i + 1].clone());
                i += 2;
            }
            "--experiment" | "-e" => {
                if i + 1 >= args.len() {
                    eprintln!("--experiment needs a value");
                    return ExitCode::FAILURE;
                }
                selected.push(args[i + 1].clone());
                i += 2;
            }
            "--jobs" | "-j" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0);
                if jobs.is_none() {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            "--list" | "-l" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment <id|all>]... [--jobs <n>] [--csv <dir>] [--list]\n\
                     regenerates the tables and figures of Banerjee et al., DAC 1999;\n\
                     --csv additionally writes the figure data series as CSV files;\n\
                     --jobs bounds experiment-level parallelism (default: machine cores,\n\
                     output order is deterministic either way)\n\
                     known experiments: {}",
                    experiments::ALL.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(n) = jobs {
        // Bounds both the experiment fan-out here and the sweep-level
        // rayon parallelism inside each experiment (children inherit it).
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    if let Some(dir) = &csv_dir {
        match hotwire_bench::csv_export::write_all(std::path::Path::new(dir)) {
            Ok(files) => println!("wrote {} to {dir}\n", files.join(", ")),
            Err(e) => {
                eprintln!("csv export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if selected.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = experiments::ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    if selected.len() > 1 && rayon::current_num_threads() > 1 {
        return run_parallel(&selected);
    }
    for (k, id) in selected.iter().enumerate() {
        if k > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        if let Err(e) = experiments::run(id) {
            eprintln!("experiment `{id}` failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs each experiment as `repro --experiment <id>` child process and
/// relays the captured output in selection order, so the bytes on stdout
/// match a serial in-process run.
fn run_parallel(selected: &[String]) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outputs: Vec<std::io::Result<std::process::Output>> = selected
        .par_iter()
        .map(|id| {
            std::process::Command::new(&exe)
                .args(["--experiment", id])
                .output()
        })
        .collect();
    let mut code = ExitCode::SUCCESS;
    for (k, (id, out)) in selected.iter().zip(&outputs).enumerate() {
        if k > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        match out {
            Ok(out) => {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
                if !out.status.success() {
                    code = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("experiment `{id}` failed to spawn: {e}");
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}
