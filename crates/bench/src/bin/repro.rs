//! Regenerates every table and figure of the DAC'99 paper.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin repro -- --experiment all
//! cargo run --release -p hotwire-bench --bin repro -- --experiment fig2
//! cargo run --release -p hotwire-bench --bin repro -- --list
//! ```

use std::process::ExitCode;

use hotwire_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                if i + 1 >= args.len() {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
                csv_dir = Some(args[i + 1].clone());
                i += 2;
            }
            "--experiment" | "-e" => {
                if i + 1 >= args.len() {
                    eprintln!("--experiment needs a value");
                    return ExitCode::FAILURE;
                }
                selected.push(args[i + 1].clone());
                i += 2;
            }
            "--list" | "-l" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment <id|all>]... [--csv <dir>] [--list]\n\
                     regenerates the tables and figures of Banerjee et al., DAC 1999;\n\
                     --csv additionally writes the figure data series as CSV files\n\
                     known experiments: {}",
                    experiments::ALL.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &csv_dir {
        match hotwire_bench::csv_export::write_all(std::path::Path::new(dir)) {
            Ok(files) => println!("wrote {} to {dir}\n", files.join(", ")),
            Err(e) => {
                eprintln!("csv export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if selected.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = experiments::ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    for (k, id) in selected.iter().enumerate() {
        if k > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        if let Err(e) = experiments::run(id) {
            eprintln!("experiment `{id}` failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
