//! Compares a freshly measured `BENCH_solver.json` / `BENCH_coupled.json`
//! against a committed baseline and fails on perf regressions.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin solver_baseline -- \
//!     --sizes 10,20 --out /tmp/fresh.json
//! cargo run --release -p hotwire-bench --bin bench_diff -- \
//!     --baseline BENCH_solver.json --current /tmp/fresh.json
//! ```
//!
//! The comparison walks the `sizes` arrays of both files, matches
//! entries by their `grid` label, and checks every shared `*_ms` field.
//! A field regresses when `current > baseline × tolerance` (default
//! 1.5×, so an injected 2× slowdown trips it) **and** both readings are
//! above the `--min-ms` noise floor (default 1 ms — container timers
//! jitter far more than that relatively, below it). Grids present in
//! only one file are reported but never fatal, so the CI job can run a
//! small subset of the committed sizes.
//!
//! Besides the cross-file diff, the gate audits the committed baseline
//! *internally*: whenever it carries paired `NxN` / `NxN+trace` rows
//! (as `coupled_baseline` emits), the traced `total_ms` must stay
//! within `--trace-overhead` (default 5%) of the untraced one — the
//! telemetry-overhead promise in `docs/OBSERVABILITY.md`, enforced on
//! the checked-in numbers so it cannot drift silently.
//!
//! Exit codes: 0 no regression, 1 at least one field regressed,
//! 2 usage/parse error (including an empty comparison — a gate that
//! compared nothing must not pass silently).

use std::process::ExitCode;

use hotwire_obs::json::{self, Json};

/// Default regression threshold: fail when current exceeds baseline by
/// more than this factor.
const DEFAULT_TOLERANCE: f64 = 1.5;

/// Default noise floor (ms): fields where either reading is below this
/// are skipped — sub-millisecond medians are timer jitter, not signal.
const DEFAULT_MIN_MS: f64 = 1.0;

/// Default bound on span-capture cost: a `NxN+trace` total may exceed
/// its paired `NxN` total by at most this fraction.
const DEFAULT_TRACE_OVERHEAD: f64 = 0.05;

/// One compared field of one grid entry.
#[derive(Debug, Clone, PartialEq)]
struct Comparison {
    grid: String,
    field: String,
    baseline_ms: f64,
    current_ms: f64,
    /// `current / baseline`.
    ratio: f64,
    verdict: Verdict,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    /// Under the noise floor; informational only.
    Skipped,
    Regression,
}

/// One `sizes` entry: its grid label and every `*_ms` field.
type SizeRow = (String, Vec<(String, f64)>);

/// Extracts `sizes` as `(grid_label, [(field, ms)])` rows.
fn size_rows(doc: &Json, what: &str) -> Result<Vec<SizeRow>, String> {
    let sizes = doc
        .get("sizes")
        .and_then(Json::as_array)
        .ok_or(format!("{what}: missing `sizes` array"))?;
    let mut rows = Vec::new();
    for entry in sizes {
        let grid = entry
            .get("grid")
            .and_then(Json::as_str)
            .ok_or(format!("{what}: a sizes entry has no `grid` label"))?;
        let fields = entry
            .as_object()
            .ok_or(format!("{what}: sizes entry `{grid}` is not an object"))?
            .iter()
            .filter(|(k, _)| k.ends_with("_ms"))
            .filter_map(|(k, v)| v.as_f64().map(|ms| (k.clone(), ms)))
            .collect();
        rows.push((grid.to_owned(), fields));
    }
    Ok(rows)
}

/// Everything `compare` learned: the field-by-field verdicts plus the
/// grid labels each file had that the other lacked — named so the
/// empty-gate error can say *which* sizes failed to line up.
struct Diff {
    comparisons: Vec<Comparison>,
    /// Grid labels only the committed baseline has.
    baseline_only: Vec<String>,
    /// Grid labels only the fresh run has.
    current_only: Vec<String>,
}

/// The whole comparison: shared grids × shared `*_ms` fields.
fn compare(baseline: &Json, current: &Json, tolerance: f64, min_ms: f64) -> Result<Diff, String> {
    let base_rows = size_rows(baseline, "baseline")?;
    let cur_rows = size_rows(current, "current")?;
    let baseline_only: Vec<String> = base_rows
        .iter()
        .filter(|(g, _)| !cur_rows.iter().any(|(c, _)| c == g))
        .map(|(g, _)| g.clone())
        .collect();
    let current_only: Vec<String> = cur_rows
        .iter()
        .filter(|(g, _)| !base_rows.iter().any(|(b, _)| b == g))
        .map(|(g, _)| g.clone())
        .collect();
    let mut out = Vec::new();
    for (grid, cur_fields) in &cur_rows {
        let Some((_, base_fields)) = base_rows.iter().find(|(g, _)| g == grid) else {
            continue; // fresh run measured a size the baseline lacks
        };
        for (field, &current_ms) in cur_fields.iter().map(|(f, ms)| (f, ms)) {
            let Some(&(_, baseline_ms)) = base_fields.iter().find(|(f, _)| f == field) else {
                continue;
            };
            let ratio = if baseline_ms > 0.0 {
                current_ms / baseline_ms
            } else {
                f64::INFINITY
            };
            let verdict = if baseline_ms < min_ms || current_ms < min_ms {
                Verdict::Skipped
            } else if ratio > tolerance {
                Verdict::Regression
            } else {
                Verdict::Ok
            };
            out.push(Comparison {
                grid: grid.clone(),
                field: field.clone(),
                baseline_ms,
                current_ms,
                ratio,
                verdict,
            });
        }
    }
    Ok(Diff {
        comparisons: out,
        baseline_only,
        current_only,
    })
}

/// Pairs every `NxN+trace` row with its plain `NxN` sibling inside one
/// file and bounds the traced `total_ms`. Reuses [`Comparison`] with the
/// plain row as "baseline" and the traced row as "current", so the
/// verdict/ratio semantics (and the noise floor) match the main diff.
fn trace_overhead(rows: &[SizeRow], allowed: f64, min_ms: f64) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (grid, traced_fields) in rows {
        let Some(plain_label) = grid.strip_suffix("+trace") else {
            continue;
        };
        let Some((_, plain_fields)) = rows.iter().find(|(g, _)| g == plain_label) else {
            continue; // a traced row without its plain sibling
        };
        let (Some(&(_, traced_ms)), Some(&(_, plain_ms))) = (
            traced_fields.iter().find(|(f, _)| f == "total_ms"),
            plain_fields.iter().find(|(f, _)| f == "total_ms"),
        ) else {
            continue;
        };
        let ratio = if plain_ms > 0.0 {
            traced_ms / plain_ms
        } else {
            f64::INFINITY
        };
        let verdict = if plain_ms < min_ms || traced_ms < min_ms {
            Verdict::Skipped
        } else if ratio > 1.0 + allowed {
            Verdict::Regression
        } else {
            Verdict::Ok
        };
        out.push(Comparison {
            grid: plain_label.to_owned(),
            field: "total_ms+trace".to_owned(),
            baseline_ms: plain_ms,
            current_ms: traced_ms,
            ratio,
            verdict,
        });
    }
    out
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut min_ms = DEFAULT_MIN_MS;
    let mut trace_allowed = DEFAULT_TRACE_OVERHEAD;
    let mut i = 0;
    let usage = || {
        eprintln!(
            "usage: bench_diff --baseline <committed.json> --current <fresh.json>\n\
             \x20                [--tolerance <factor>] [--min-ms <floor>]\n\
             \x20                [--trace-overhead <fraction>]\n\
             compares the `sizes` timing fields of two baseline files; exits 1\n\
             when any shared field regresses beyond tolerance (default {DEFAULT_TOLERANCE}x),\n\
             skipping readings under the noise floor (default {DEFAULT_MIN_MS} ms).\n\
             When the committed baseline carries paired NxN / NxN+trace rows, the\n\
             traced total must stay within --trace-overhead (default\n\
             {DEFAULT_TRACE_OVERHEAD}) of the plain one"
        );
        ExitCode::from(2)
    };
    while i < args.len() {
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match args[i].as_str() {
            "--baseline" => baseline_path = Some(value.clone()),
            "--current" => current_path = Some(value.clone()),
            "--tolerance" => match value.parse::<f64>() {
                Ok(t) if t >= 1.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance: `{value}` must be a factor >= 1");
                    return ExitCode::from(2);
                }
            },
            "--min-ms" => match value.parse::<f64>() {
                Ok(m) if m >= 0.0 => min_ms = m,
                _ => {
                    eprintln!("--min-ms: `{value}` must be a non-negative number");
                    return ExitCode::from(2);
                }
            },
            "--trace-overhead" => match value.parse::<f64>() {
                Ok(f) if f >= 0.0 => trace_allowed = f,
                _ => {
                    eprintln!("--trace-overhead: `{value}` must be a non-negative fraction");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
        i += 2;
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        return usage();
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = match compare(&baseline, &current, tolerance, min_ms) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !diff.baseline_only.is_empty() {
        eprintln!(
            "note: grid(s) only in {baseline_path}, not compared: {}",
            diff.baseline_only.join(", ")
        );
    }
    if !diff.current_only.is_empty() {
        eprintln!(
            "note: grid(s) only in {current_path}, not compared: {}",
            diff.current_only.join(", ")
        );
    }
    let comparisons = diff.comparisons;
    let compared = comparisons
        .iter()
        .filter(|c| c.verdict != Verdict::Skipped)
        .count();
    if compared == 0 {
        let name = |list: &[String]| {
            if list.is_empty() {
                String::from("none")
            } else {
                list.join(", ")
            }
        };
        eprintln!(
            "error: no field of {current_path} was comparable against {baseline_path} \
             (no shared grid sizes above the {min_ms} ms floor) — an empty gate must not \
             pass. Unmatched grids: baseline only [{}], current only [{}]",
            name(&diff.baseline_only),
            name(&diff.current_only),
        );
        return ExitCode::from(2);
    }
    println!(
        "{:<10} {:<16} {:>12} {:>12} {:>8}  verdict",
        "grid", "field", "baseline_ms", "current_ms", "ratio"
    );
    let mut regressions = 0;
    for c in &comparisons {
        // A violation row names the committed baseline file, not just
        // the grid label — the CI log line alone says which file to
        // open (or re-measure).
        let verdict = match c.verdict {
            Verdict::Ok => "ok".to_owned(),
            Verdict::Skipped => "skipped (noise floor)".to_owned(),
            Verdict::Regression => {
                regressions += 1;
                format!("REGRESSION vs {baseline_path}")
            }
        };
        println!(
            "{:<10} {:<16} {:>12.3} {:>12.3} {:>8.2}  {verdict}",
            c.grid, c.field, c.baseline_ms, c.current_ms, c.ratio
        );
    }
    // Telemetry-overhead audit of the committed file itself: paired
    // NxN / NxN+trace rows must agree to within the allowed fraction.
    let baseline_rows = size_rows(&baseline, "baseline").unwrap_or_default();
    let overhead = trace_overhead(&baseline_rows, trace_allowed, min_ms);
    let mut overhead_breaches = 0;
    if overhead.is_empty() {
        println!(
            "note: {baseline_path} has no paired NxN+trace rows; trace-overhead check skipped"
        );
    } else {
        println!(
            "trace overhead on {baseline_path} (bound: +{:.1}%):",
            trace_allowed * 100.0
        );
        for c in &overhead {
            let verdict = match c.verdict {
                Verdict::Ok => "ok".to_owned(),
                Verdict::Skipped => "skipped (noise floor)".to_owned(),
                Verdict::Regression => {
                    overhead_breaches += 1;
                    format!("OVER BUDGET in {baseline_path}")
                }
            };
            println!(
                "{:<10} {:<16} {:>12.3} {:>12.3} {:>8.2}  {verdict}",
                c.grid, "total_ms", c.baseline_ms, c.current_ms, c.ratio
            );
        }
    }
    if overhead_breaches > 0 {
        eprintln!(
            "{overhead_breaches} grid(s) exceed the {:.1}% span-capture overhead budget in \
             {baseline_path}",
            trace_allowed * 100.0
        );
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} field(s) regressed beyond {tolerance}x over {baseline_path} \
             ({compared} compared)"
        );
    }
    if regressions > 0 || overhead_breaches > 0 {
        return ExitCode::FAILURE;
    }
    println!("no regression across {compared} compared field(s) (tolerance {tolerance}x)");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, &[(&str, f64)])]) -> Json {
        let sizes: Vec<Json> = entries
            .iter()
            .map(|(grid, fields)| {
                let mut pairs = vec![("grid".to_owned(), Json::from(*grid))];
                for (k, v) in *fields {
                    pairs.push(((*k).to_owned(), Json::from(*v)));
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::object([("sizes", Json::Arr(sizes))])
    }

    #[test]
    fn identical_inputs_have_no_regression() {
        let d = doc(&[("20x20", &[("total_ms", 10.0), ("first_iter_ms", 2.0)])]);
        let cmp = compare(&d, &d, 1.5, 1.0).unwrap().comparisons;
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Ok));
    }

    #[test]
    fn two_x_slowdown_regresses() {
        let base = doc(&[("20x20", &[("total_ms", 10.0)])]);
        let cur = doc(&[("20x20", &[("total_ms", 20.0)])]);
        let cmp = compare(&base, &cur, 1.5, 1.0).unwrap().comparisons;
        assert_eq!(cmp[0].verdict, Verdict::Regression);
        assert!((cmp[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noise_floor_skips_tiny_fields() {
        let base = doc(&[("20x20", &[("total_ms", 0.05)])]);
        let cur = doc(&[("20x20", &[("total_ms", 0.4)])]);
        let cmp = compare(&base, &cur, 1.5, 1.0).unwrap().comparisons;
        assert_eq!(
            cmp[0].verdict,
            Verdict::Skipped,
            "8x under the floor is noise"
        );
    }

    #[test]
    fn unshared_grids_and_fields_are_ignored_but_named() {
        let base = doc(&[
            ("20x20", &[("total_ms", 10.0)]),
            ("100x100", &[("total_ms", 500.0)]),
        ]);
        let cur = doc(&[("20x20", &[("total_ms", 11.0), ("extra_ms", 3.0)])]);
        let diff = compare(&base, &cur, 1.5, 1.0).unwrap();
        assert_eq!(diff.comparisons.len(), 1, "only the shared grid+field pair");
        assert_eq!(diff.comparisons[0].verdict, Verdict::Ok);
        assert_eq!(diff.baseline_only, vec!["100x100".to_owned()]);
        assert!(diff.current_only.is_empty());
    }

    #[test]
    fn disjoint_grids_name_both_sides() {
        // The exit-2 "empty gate" path: nothing shared — the caller gets
        // the unmatched labels by name instead of a bare error.
        let base = doc(&[("200x200", &[("total_ms", 100.0)])]);
        let cur = doc(&[("500x500", &[("total_ms", 900.0)])]);
        let diff = compare(&base, &cur, 1.5, 1.0).unwrap();
        assert!(diff.comparisons.is_empty());
        assert_eq!(diff.baseline_only, vec!["200x200".to_owned()]);
        assert_eq!(diff.current_only, vec!["500x500".to_owned()]);
    }

    #[test]
    fn non_ms_fields_are_not_compared() {
        let d = doc(&[("20x20", &[("refactor_speedup", 4.0), ("total_ms", 10.0)])]);
        let cmp = compare(&d, &d, 1.5, 1.0).unwrap().comparisons;
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0].field, "total_ms");
    }

    #[test]
    fn missing_sizes_is_an_error() {
        let empty = Json::Obj(Vec::new());
        assert!(compare(&empty, &empty.clone(), 1.5, 1.0).is_err());
    }

    fn rows(entries: &[(&str, &[(&str, f64)])]) -> Vec<SizeRow> {
        size_rows(&doc(entries), "test").unwrap()
    }

    #[test]
    fn trace_within_budget_is_ok() {
        let checks = trace_overhead(
            &rows(&[
                ("20x20", &[("total_ms", 100.0)]),
                ("20x20+trace", &[("total_ms", 104.0)]),
            ]),
            0.05,
            1.0,
        );
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].verdict, Verdict::Ok);
        assert!((checks[0].ratio - 1.04).abs() < 1e-12);
    }

    #[test]
    fn trace_over_budget_regresses() {
        let checks = trace_overhead(
            &rows(&[
                ("50x50", &[("total_ms", 100.0)]),
                ("50x50+trace", &[("total_ms", 106.0)]),
            ]),
            0.05,
            1.0,
        );
        assert_eq!(checks[0].verdict, Verdict::Regression);
        assert_eq!(checks[0].grid, "50x50");
        assert_eq!(checks[0].field, "total_ms+trace");
    }

    #[test]
    fn trace_rows_under_the_noise_floor_are_skipped() {
        let checks = trace_overhead(
            &rows(&[
                ("6x6", &[("total_ms", 0.4)]),
                ("6x6+trace", &[("total_ms", 0.9)]),
            ]),
            0.05,
            1.0,
        );
        assert_eq!(checks[0].verdict, Verdict::Skipped);
    }

    #[test]
    fn unpaired_trace_rows_produce_no_check() {
        // A +trace row without a plain sibling (and vice versa) is not
        // an overhead comparison — the main diff still sees both rows.
        let checks = trace_overhead(
            &rows(&[
                ("20x20+trace", &[("total_ms", 10.0)]),
                ("50x50", &[("total_ms", 20.0)]),
            ]),
            0.05,
            1.0,
        );
        assert!(checks.is_empty());
    }
}
