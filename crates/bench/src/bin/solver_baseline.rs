//! Measures the power-grid DC solve before/after the sparse solver and
//! writes the machine-readable baseline `BENCH_solver.json`.
//!
//! ```text
//! cargo run --release -p hotwire-bench --bin solver_baseline
//! cargo run --release -p hotwire-bench --bin solver_baseline -- --out BENCH_solver.json
//! ```
//!
//! "Seed" is the dense damped-Newton path replayed by
//! [`hotwire_bench::baseline`]; "direct" is the current
//! `PowerGrid::analyze`, which routes SPD grid stamps to the
//! AMD-ordered sparse LDLᵀ; "lu" forces the sparse-LU backend the
//! direct path used before the Cholesky fast path existed. The seed
//! path is *measured* up to 30×30 and n⁶-extrapolated beyond (dense LU
//! is cubic in the matrix dimension, and the matrix dimension is the
//! squared grid edge); the forced-LU path is measured up to 200×200 and
//! n⁴-extrapolated beyond (grid LU cost grows as the 4th power of the
//! edge) — each entry says which, so nobody mistakes a model for a
//! measurement.

use std::process::ExitCode;
use std::time::Instant;

use hotwire_bench::baseline;
use hotwire_circuit::power_grid::{PowerGrid, PowerGridSpec};
use hotwire_obs::metrics;
use hotwire_units::{Area, Current, Resistance, Voltage};

/// Largest grid edge where the seed path is timed rather than modeled.
const SEED_MEASURE_CAP: usize = 30;

/// Largest grid edge where the forced-LU path is timed rather than
/// modeled. Beyond it the LU column scales the anchor measurement by
/// `(n/200)^4` — the committed 50→100→200 LU measurements track that
/// exponent to within a few percent.
const LU_MEASURE_CAP: usize = 200;

/// Grid sizes reported in the baseline file.
const SIZES: [usize; 7] = [10, 20, 50, 100, 200, 500, 1000];

/// Segment conductance stamped by [`PowerGrid::analyze`] for the spec
/// below (1 / segment_resistance).
const SEGMENT_G: f64 = 1.0 / 0.5;

fn power_grid(n: usize) -> PowerGrid {
    PowerGrid::build(&PowerGridSpec {
        rows: n,
        cols: n,
        segment_resistance: Resistance::new(0.5),
        strap_cross_section: Area::from_um2(1.44),
        vdd: Voltage::new(2.5),
        sink_per_node: Current::from_milliamps(0.4),
        pads: vec![(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)],
    })
    .expect("valid grid spec")
}

/// Median wall time of `reps` runs of `f`, after one warmup run.
fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1.0e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Repetitions per timing at a given grid edge — the big factorizations
/// are too expensive to run five times.
fn reps_for(n: usize) -> usize {
    if n >= 500 {
        1
    } else if n >= 100 {
        3
    } else {
        5
    }
}

/// Times the `DcGridSolver` solve with the Cholesky fast path kept out
/// (dense below the crossover, sparse LU above — the pre-LDLᵀ behavior).
fn lu_forced_ms(grid: &PowerGrid, reps: usize) -> f64 {
    let branch_count = grid.dc_solver().expect("grid solver").branch_count();
    let conductance = vec![SEGMENT_G; branch_count];
    median_ms(reps, || {
        let mut s = grid.dc_solver().expect("grid solver");
        s.set_lu_only(true);
        s.solve(&conductance).expect("forced-LU solve");
        assert_eq!(
            s.solver_path().map(|p| p.label()),
            Some(if s.is_sparse() { "lu" } else { "dense" }),
            "set_lu_only must keep the Cholesky path out"
        );
    })
}

/// One un-timed direct solve to observe which backend serves this size.
fn observed_path(grid: &PowerGrid) -> &'static str {
    let mut s = grid.dc_solver().expect("grid solver");
    let conductance = vec![SEGMENT_G; s.branch_count()];
    s.solve(&conductance).expect("direct solve");
    s.solver_path().map_or("unknown", |p| p.label())
}

struct Row {
    grid: usize,
    unknowns: usize,
    seed_ms: f64,
    seed_source: &'static str,
    lu_ms: f64,
    lu_source: &'static str,
    direct_ms: f64,
    path: &'static str,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_solver.json");
    let mut metrics_out: Option<String> = None;
    let mut sizes: Vec<usize> = SIZES.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "-o" => {
                if i + 1 >= args.len() {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
                out_path.clone_from(&args[i + 1]);
                i += 2;
            }
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    eprintln!("--metrics-out needs a path");
                    return ExitCode::FAILURE;
                }
                metrics_out = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" => {
                if i + 1 >= args.len() {
                    eprintln!("--sizes needs a comma-separated list (e.g. 10,20)");
                    return ExitCode::FAILURE;
                }
                match args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                {
                    Ok(list) if !list.is_empty() && list.iter().all(|&n| n >= 3) => sizes = list,
                    _ => {
                        eprintln!("--sizes: `{}` is not a list of grid edges ≥ 3", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: solver_baseline [--out <path>] [--metrics-out <path>] [--sizes n,n,...]\n\
                     times the seed dense DC path, the forced sparse-LU path, and\n\
                     the direct path (Cholesky on SPD stamps) on square power\n\
                     grids and writes a JSON baseline (default: BENCH_solver.json\n\
                     in the current directory); the baseline embeds a `metrics`\n\
                     registry snapshot, --metrics-out additionally writes it\n\
                     standalone, and --sizes restricts the grid edges (default:\n\
                     10,20,50,100,200,500,1000) — CI uses the small sizes (the\n\
                     30x30 anchor row is always measured)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Sanity anchor: both paths must agree before we compare their cost.
    {
        let g = power_grid(10);
        let seed = baseline::seed_worst_ir_drop(&g, 2.5).expect("seed path solves 10x10");
        let direct = g
            .analyze()
            .expect("direct path solves 10x10")
            .worst_ir_drop
            .value();
        assert!(
            (seed - direct).abs() < 1e-6,
            "seed ({seed}) and direct ({direct}) disagree; refusing to benchmark"
        );
    }

    let mut rows: Vec<Row> = Vec::new();

    // The seed-extrapolation anchor: largest grid where the seed path is
    // still cheap enough to time. Measured first and included in the file
    // even though SIZES skips it, so the anchor is visible next to the
    // model.
    let anchor_ms = {
        let n = SEED_MEASURE_CAP;
        let grid = power_grid(n);
        let seed_ms = median_ms(3, || {
            let _ = baseline::seed_dense_dc_solve(&grid).expect("seed solve");
        });
        let direct_ms = median_ms(5, || {
            let _ = grid.analyze().expect("direct solve");
        });
        let lu_ms = lu_forced_ms(&grid, 5);
        let path = observed_path(&grid);
        eprintln!("{n:>4}x{n:<4} direct {direct_ms:>12.3} ms ({path})  lu {lu_ms:>12.3} ms (measured)  seed {seed_ms:>14.1} ms (measured, anchor)");
        rows.push(Row {
            grid: n,
            unknowns: n * n - 4,
            seed_ms,
            seed_source: "measured",
            lu_ms,
            lu_source: "measured",
            direct_ms,
            path,
        });
        seed_ms
    };

    // The LU-extrapolation anchor, measured lazily: only sizes beyond the
    // cap need it, and CI's small-size runs must not pay the 200x200 LU.
    let mut lu_anchor_ms: Option<f64> = None;

    for n in sizes {
        if n == SEED_MEASURE_CAP {
            continue; // the anchor row above already covers this size
        }
        let grid = power_grid(n);
        let unknowns = n * n - 4; // pad corners are eliminated
        let reps = reps_for(n);
        let direct_ms = median_ms(reps, || {
            let _ = grid.analyze().expect("direct solve");
        });
        let path = observed_path(&grid);
        let (lu_ms, lu_source) = if n <= LU_MEASURE_CAP {
            let ms = lu_forced_ms(&grid, reps);
            if n == LU_MEASURE_CAP {
                lu_anchor_ms = Some(ms);
            }
            (ms, "measured")
        } else {
            let anchor =
                *lu_anchor_ms.get_or_insert_with(|| lu_forced_ms(&power_grid(LU_MEASURE_CAP), 3));
            #[allow(clippy::cast_precision_loss)]
            let scale = (n as f64 / LU_MEASURE_CAP as f64).powi(4);
            (anchor * scale, "extrapolated_n4")
        };
        let (seed_ms, seed_source) = if n <= SEED_MEASURE_CAP {
            let ms = median_ms(3, || {
                let _ = baseline::seed_dense_dc_solve(&grid).expect("seed solve");
            });
            (ms, "measured")
        } else {
            // Dense LU is O(d³) in the matrix dimension d ≈ n², so the
            // seed cost scales as (n/anchor)⁶ from the measured anchor.
            #[allow(clippy::cast_precision_loss)]
            let scale = (n as f64 / SEED_MEASURE_CAP as f64).powi(6);
            (anchor_ms * scale, "extrapolated_n6")
        };
        eprintln!(
            "{n:>4}x{n:<4} direct {direct_ms:>12.3} ms ({path})  lu {lu_ms:>12.3} ms ({lu_source})  seed {seed_ms:>14.1} ms ({seed_source})"
        );
        rows.push(Row {
            grid: n,
            unknowns,
            seed_ms,
            seed_source,
            lu_ms,
            lu_source,
            direct_ms,
            path,
        });
    }
    rows.sort_by_key(|r| r.grid);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"PowerGrid::analyze (DC IR-drop solve, square grid, 4 corner pads)\",\n",
    );
    json.push_str("  \"before\": \"seed path: dense MNA with vsrc branches, full clone+pivot LU per damped-Newton iteration (hotwire_bench::baseline replica)\",\n");
    json.push_str("  \"after\": \"direct DC solve, pads eliminated, single factorization; SPD stamps route to AMD-ordered sparse LDL^T above 128 unknowns (sparse LU is the non-SPD fallback, forced here for the lu_ms column)\",\n");
    json.push_str("  \"machine\": \"container, 1 CPU core; medians of 1-5 runs after warmup\",\n");
    json.push_str(&format!(
        "  \"seed_measure_cap\": {SEED_MEASURE_CAP},\n  \"seed_extrapolation\": \"sizes above the cap scale the last measured seed time by (n/{SEED_MEASURE_CAP})^6 (dense LU is cubic in the n^2 matrix dimension); they are a model, not a measurement\",\n"
    ));
    json.push_str(&format!(
        "  \"lu_measure_cap\": {LU_MEASURE_CAP},\n  \"lu_extrapolation\": \"sizes above the cap scale the measured {LU_MEASURE_CAP}x{LU_MEASURE_CAP} forced-LU time by (n/{LU_MEASURE_CAP})^4 (grid LU cost grows as the 4th power of the edge); they are a model, not a measurement\",\n"
    ));
    json.push_str("  \"sizes\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let speedup = r.seed_ms / r.direct_ms;
        let speedup_vs_lu = r.lu_ms / r.direct_ms;
        json.push_str(&format!(
            "    {{\"grid\": \"{n}x{n}\", \"unknowns\": {u}, \"seed_ms\": {s:.3}, \"seed_source\": \"{src}\", \"lu_ms\": {l:.3}, \"lu_source\": \"{lsrc}\", \"direct_ms\": {d:.3}, \"path\": \"{p}\", \"speedup\": {sp:.1}, \"speedup_vs_lu\": {spl:.1}}}{comma}\n",
            n = r.grid,
            u = r.unknowns,
            s = r.seed_ms,
            src = r.seed_source,
            l = r.lu_ms,
            lsrc = r.lu_source,
            d = r.direct_ms,
            p = r.path,
            sp = speedup,
            spl = speedup_vs_lu,
            comma = if k + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    // Registry totals over every run above: `solver.factor` counts how
    // many full factorizations the whole comparison actually paid for.
    let snapshot = metrics::snapshot();
    json.push_str(&format!("  \"metrics\": {}\n", snapshot.to_json()));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = metrics_out {
        let mut pretty = snapshot.to_json().to_pretty_string();
        pretty.push('\n');
        if let Err(e) = std::fs::write(&path, pretty) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
