//! CSV export of the figure series, for re-plotting with any external
//! tool (`repro --csv <dir>`).

use std::io::Write as _;
use std::path::Path;

use hotwire_circuit::repeater::{simulate_repeater, RepeaterSimOptions};
use hotwire_core::sweep::{duty_cycle_sweep, j0_sweep, log_spaced};
use hotwire_tech::presets;
use hotwire_units::CurrentDensity;

/// Writes every figure's data series as CSV files into `dir` (created if
/// missing). Returns the file names written.
///
/// # Errors
///
/// Returns a human-readable message on solver or I/O failure.
pub fn write_all(dir: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    written.push(write_fig2(dir)?);
    written.push(write_fig3(dir)?);
    written.push(write_fig5(dir)?);
    written.extend(write_fig7(dir)?);
    Ok(written)
}

fn create(dir: &Path, name: &str) -> Result<std::fs::File, String> {
    std::fs::File::create(dir.join(name)).map_err(|e| format!("cannot create {name}: {e}"))
}

fn write_fig2(dir: &Path) -> Result<String, String> {
    let problem = crate::experiments::fig2::fig2_problem().map_err(|e| e.to_string())?;
    let rs = log_spaced(1.0e-4, 1.0, 33);
    let points = duty_cycle_sweep(&problem, &rs).map_err(|e| e.to_string())?;
    let mut f = create(dir, "fig2.csv")?;
    writeln!(f, "r,metal_temperature_c,j_peak_ma_cm2,em_only_peak_ma_cm2")
        .map_err(|e| e.to_string())?;
    for p in points {
        writeln!(
            f,
            "{:.6e},{:.4},{:.5},{:.5}",
            p.duty_cycle,
            p.solution.metal_temperature.to_celsius().value(),
            p.solution.j_peak.to_mega_amps_per_cm2(),
            p.em_only_peak.to_mega_amps_per_cm2()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok("fig2.csv".to_owned())
}

fn write_fig3(dir: &Path) -> Result<String, String> {
    let problem = crate::experiments::fig2::fig2_problem().map_err(|e| e.to_string())?;
    let j0s: Vec<CurrentDensity> = [0.6, 1.2, 1.8, 2.4]
        .iter()
        .map(|&v| CurrentDensity::from_mega_amps_per_cm2(v))
        .collect();
    let rs = log_spaced(1.0e-4, 1.0, 33);
    let series = j0_sweep(&problem, &j0s, &rs).map_err(|e| e.to_string())?;
    let mut f = create(dir, "fig3.csv")?;
    let mut header = String::from("r");
    for s in &series {
        header.push_str(&format!(
            ",t_m_c_j0_{0:.1},j_peak_ma_cm2_j0_{0:.1}",
            s.j0.to_mega_amps_per_cm2()
        ));
    }
    writeln!(f, "{header}").map_err(|e| e.to_string())?;
    for (i, &r) in rs.iter().enumerate() {
        let mut row = format!("{r:.6e}");
        for s in &series {
            row.push_str(&format!(
                ",{:.4},{:.5}",
                s.points[i].solution.metal_temperature.to_celsius().value(),
                s.points[i].solution.j_peak.to_mega_amps_per_cm2()
            ));
        }
        writeln!(f, "{row}").map_err(|e| e.to_string())?;
    }
    Ok("fig3.csv".to_owned())
}

fn write_fig5(dir: &Path) -> Result<String, String> {
    let (rows, phi) = crate::experiments::fig5::series().map_err(|e| e.to_string())?;
    let mut f = create(dir, "fig5.csv")?;
    writeln!(f, "# extracted phi at narrowest width: {phi:.3}").map_err(|e| e.to_string())?;
    writeln!(f, "width_um,theta_oxide_k_per_w,theta_hsq_k_per_w").map_err(|e| e.to_string())?;
    for (w, a, b) in rows {
        writeln!(f, "{w:.3},{a:.3},{b:.3}").map_err(|e| e.to_string())?;
    }
    Ok("fig5.csv".to_owned())
}

fn write_fig7(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for (tag, tech) in [
        ("0.25um", presets::ntrs_250nm()),
        ("0.1um", presets::ntrs_100nm()),
    ] {
        let top = tech.layers().len() - 1;
        let report = simulate_repeater(&tech, top, RepeaterSimOptions::default())
            .map_err(|e| e.to_string())?;
        let name = format!("fig7_{tag}.csv");
        let mut f = create(dir, &name)?;
        writeln!(f, "time_s,current_density_ma_cm2").map_err(|e| e.to_string())?;
        for (t, j) in report
            .waveform
            .times()
            .iter()
            .zip(report.waveform.densities())
        {
            writeln!(f, "{:.6e},{:.5}", t.value(), j.to_mega_amps_per_cm2())
                .map_err(|e| e.to_string())?;
        }
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_series() {
        let dir = std::env::temp_dir().join(format!("hotwire-csv-{}", std::process::id()));
        let written = write_all(&dir).unwrap();
        assert!(written.contains(&"fig2.csv".to_owned()));
        assert!(written.contains(&"fig5.csv".to_owned()));
        assert_eq!(written.len(), 5);
        // fig2 has a header plus 33 rows
        let fig2 = std::fs::read_to_string(dir.join("fig2.csv")).unwrap();
        assert_eq!(fig2.lines().count(), 34);
        assert!(fig2.starts_with("r,metal_temperature_c"));
        // fig7 waveforms are non-trivial
        let fig7 = std::fs::read_to_string(dir.join("fig7_0.25um.csv")).unwrap();
        assert!(fig7.lines().count() > 100);
        std::fs::remove_dir_all(&dir).ok();
    }
}
