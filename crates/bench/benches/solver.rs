//! Criterion benchmarks for the self-consistent solver (the inner loop of
//! every design-rule table — Figs. 2–3, Tables 2–4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_circuit::linalg::Matrix;
use hotwire_circuit::sparse::SparseMatrix;
use hotwire_core::sweep::{duty_cycle_sweep, log_spaced};
use hotwire_core::SelfConsistentProblem;
use hotwire_tech::{Dielectric, Metal};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire_units::{CurrentDensity, Length};

fn problem(r: f64) -> SelfConsistentProblem {
    let um = Length::from_micrometers;
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
        .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
        .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
        .phi(QUASI_1D_PHI)
        .duty_cycle(r)
        .build()
        .unwrap()
}

fn bench_single_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_consistent_solve");
    for r in [1.0, 0.1, 1.0e-4] {
        let p = problem(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &p, |b, p| {
            b.iter(|| black_box(p.solve().unwrap()));
        });
    }
    group.finish();
}

fn bench_fig2_sweep(c: &mut Criterion) {
    let p = problem(0.1);
    let rs = log_spaced(1.0e-4, 1.0, 17);
    c.bench_function("fig2_duty_cycle_sweep_17pts", |b| {
        b.iter(|| black_box(duty_cycle_sweep(&p, &rs).unwrap()));
    });
}

/// A randomized-workload bench: 64 solves over a pre-generated population
/// of line geometries and duty cycles, the shape of a full-chip EM scan.
fn bench_random_geometry_scan(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD0C5_1999);
    let um = Length::from_micrometers;
    let population: Vec<SelfConsistentProblem> = (0..64)
        .map(|_| {
            SelfConsistentProblem::builder()
                .metal(
                    Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(
                        rng.gen_range(3.0e5..2.0e6),
                    )),
                )
                .line(
                    LineGeometry::new(
                        um(rng.gen_range(0.3..4.0)),
                        um(rng.gen_range(0.3..1.5)),
                        um(1000.0),
                    )
                    .expect("generated geometry is positive"),
                )
                .stack(InsulatorStack::single(
                    um(rng.gen_range(0.5..6.0)),
                    &Dielectric::oxide(),
                ))
                .phi(QUASI_1D_PHI)
                .duty_cycle(rng.gen_range(1.0e-3..1.0))
                .build()
                .expect("generated problem is valid")
        })
        .collect();
    c.bench_function("random_geometry_scan_64", |b| {
        b.iter(|| {
            let mut melt_limited = 0usize;
            for p in &population {
                match p.solve() {
                    Ok(sol) => {
                        black_box(sol);
                    }
                    Err(_) => melt_limited += 1,
                }
            }
            black_box(melt_limited)
        });
    });
}

/// Stamps an `n × n` grid Laplacian (the structure of every power-grid
/// and RC-mesh MNA system) into both matrix representations.
fn stamp_grid_laplacian(n: usize) -> (Matrix, SparseMatrix) {
    let unknowns = n * n;
    let mut dense = Matrix::zeros(unknowns, unknowns);
    let mut sparse = SparseMatrix::zeros(unknowns);
    let at = |r: usize, c: usize| r * n + c;
    let mut couple = |a: usize, b: usize, g: f64| {
        for (r, c, v) in [(a, a, g), (b, b, g), (a, b, -g), (b, a, -g)] {
            dense.add(r, c, v);
            sparse.add(r, c, v);
        }
    };
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                couple(at(r, c), at(r, c + 1), 2.0);
            }
            if r + 1 < n {
                couple(at(r, c), at(r + 1, c), 2.0);
            }
        }
    }
    for i in 0..unknowns {
        dense.add(i, i, 0.05);
        sparse.add(i, i, 0.05);
    }
    (dense, sparse)
}

#[allow(clippy::cast_precision_loss)]
fn grid_rhs(unknowns: usize) -> Vec<f64> {
    (0..unknowns).map(|i| ((i % 7) as f64) - 3.0).collect()
}

/// Dense vs sparse one-shot solve on grid-shaped MNA systems. The dense
/// side is capped at 24×24 (576 unknowns) — it is O(n⁶) in the grid edge
/// and already the clear loser there.
fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("mna_lu_solve");
    group.sample_size(10);
    for n in [10usize, 16, 24] {
        let (dense, sparse) = stamp_grid_laplacian(n);
        let b = grid_rhs(n * n);
        group.bench_with_input(BenchmarkId::new("dense", n), &(), |bench, ()| {
            bench.iter(|| black_box(dense.solve(&b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &(), |bench, ()| {
            bench.iter(|| black_box(sparse.factor().unwrap().solve(&b)));
        });
    }
    for n in [50usize, 100] {
        let (_, sparse) = stamp_grid_laplacian(n);
        let b = grid_rhs(n * n);
        group.bench_with_input(BenchmarkId::new("sparse", n), &(), |bench, ()| {
            bench.iter(|| black_box(sparse.factor().unwrap().solve(&b)));
        });
    }
    group.finish();
}

/// What factorization reuse buys per timestep: a fresh symbolic+numeric
/// factor, a numeric-only refactor on the stored pattern, and a pure
/// re-solve against an existing factorization.
fn bench_factor_reuse(c: &mut Criterion) {
    let n = 32usize;
    let (dense, sparse) = stamp_grid_laplacian(n);
    let b = grid_rhs(n * n);
    let mut group = c.benchmark_group("factor_reuse_32x32");
    group.sample_size(10);
    group.bench_function("fresh_factor_and_solve", |bench| {
        bench.iter(|| black_box(sparse.factor().unwrap().solve(&b)));
    });
    group.bench_function("refactor_and_solve", |bench| {
        let mut f = sparse.factor().unwrap();
        let mut x = Vec::new();
        bench.iter(|| {
            f.refactor(&sparse).unwrap();
            f.solve_into(&b, &mut x);
            black_box(x.last().copied())
        });
    });
    group.bench_function("solve_only", |bench| {
        let f = sparse.factor().unwrap();
        let mut x = Vec::new();
        bench.iter(|| {
            f.solve_into(&b, &mut x);
            black_box(x.last().copied())
        });
    });
    group.bench_function("dense_solve_factored_only", |bench| {
        let mut lu = dense.clone();
        lu.factor().unwrap();
        let mut x = Vec::new();
        bench.iter(|| {
            lu.solve_factored_into(&b, &mut x);
            black_box(x.last().copied())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_solve,
    bench_fig2_sweep,
    bench_random_geometry_scan,
    bench_dense_vs_sparse,
    bench_factor_reuse
);
criterion_main!(benches);
