//! Criterion benchmarks for the self-consistent solver (the inner loop of
//! every design-rule table — Figs. 2–3, Tables 2–4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_core::sweep::{duty_cycle_sweep, log_spaced};
use hotwire_core::SelfConsistentProblem;
use hotwire_tech::{Dielectric, Metal};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire_units::{CurrentDensity, Length};

fn problem(r: f64) -> SelfConsistentProblem {
    let um = Length::from_micrometers;
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
        .line(LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap())
        .stack(InsulatorStack::single(um(3.0), &Dielectric::oxide()))
        .phi(QUASI_1D_PHI)
        .duty_cycle(r)
        .build()
        .unwrap()
}

fn bench_single_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_consistent_solve");
    for r in [1.0, 0.1, 1.0e-4] {
        let p = problem(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &p, |b, p| {
            b.iter(|| black_box(p.solve().unwrap()));
        });
    }
    group.finish();
}

fn bench_fig2_sweep(c: &mut Criterion) {
    let p = problem(0.1);
    let rs = log_spaced(1.0e-4, 1.0, 17);
    c.bench_function("fig2_duty_cycle_sweep_17pts", |b| {
        b.iter(|| black_box(duty_cycle_sweep(&p, &rs).unwrap()));
    });
}

/// A randomized-workload bench: 64 solves over a pre-generated population
/// of line geometries and duty cycles, the shape of a full-chip EM scan.
fn bench_random_geometry_scan(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD0C5_1999);
    let um = Length::from_micrometers;
    let population: Vec<SelfConsistentProblem> = (0..64)
        .map(|_| {
            SelfConsistentProblem::builder()
                .metal(Metal::copper().with_design_rule_j0(
                    CurrentDensity::from_amps_per_cm2(rng.gen_range(3.0e5..2.0e6)),
                ))
                .line(
                    LineGeometry::new(
                        um(rng.gen_range(0.3..4.0)),
                        um(rng.gen_range(0.3..1.5)),
                        um(1000.0),
                    )
                    .expect("generated geometry is positive"),
                )
                .stack(InsulatorStack::single(
                    um(rng.gen_range(0.5..6.0)),
                    &Dielectric::oxide(),
                ))
                .phi(QUASI_1D_PHI)
                .duty_cycle(rng.gen_range(1.0e-3..1.0))
                .build()
                .expect("generated problem is valid")
        })
        .collect();
    c.bench_function("random_geometry_scan_64", |b| {
        b.iter(|| {
            let mut melt_limited = 0usize;
            for p in &population {
                match p.solve() {
                    Ok(sol) => {
                        black_box(sol);
                    }
                    Err(_) => melt_limited += 1,
                }
            }
            black_box(melt_limited)
        });
    });
}

criterion_group!(
    benches,
    bench_single_solve,
    bench_fig2_sweep,
    bench_random_geometry_scan
);
criterion_main!(benches);
