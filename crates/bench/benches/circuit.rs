//! Criterion benchmarks for the MNA transient engine — segment-count and
//! integration-method ablations for the Fig. 7 / Tables 5–6 flow.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_circuit::netlist::Circuit;
use hotwire_circuit::rcline::{LineParams, RcLine};
use hotwire_circuit::repeater::{simulate_repeater, RepeaterSimOptions};
use hotwire_circuit::sources::SourceWaveform;
use hotwire_circuit::transient::{simulate, Integration, TransientOptions};
use hotwire_tech::presets;
use hotwire_units::{CapacitancePerLength, Length, ResistancePerLength};

fn line_circuit(n: usize) -> (Circuit, f64) {
    let mut c = Circuit::new();
    let drv = c.node();
    c.voltage_source(
        drv,
        Circuit::GROUND,
        SourceWaveform::pulse(0.0, 1.0, 0.0, 2.0e-11, 2.0e-11, 6.0e-10, 1.33e-9),
    );
    let params = LineParams {
        r: ResistancePerLength::new(12.0e3),
        c: CapacitancePerLength::new(2.1e-10),
    };
    RcLine::build(&mut c, drv, params, Length::from_millimeters(5.0), n).unwrap();
    (c, 2.66e-9)
}

fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_rc_segments");
    group.sample_size(10);
    for n in [10usize, 40, 100] {
        let (circ, t_stop) = line_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circ, |b, circ| {
            b.iter(|| {
                black_box(
                    simulate(
                        circ,
                        t_stop,
                        TransientOptions {
                            dt: Some(t_stop / 1000.0),
                            ..TransientOptions::default()
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_integration_methods(c: &mut Criterion) {
    let (circ, t_stop) = line_circuit(40);
    let mut group = c.benchmark_group("transient_integration_ablation");
    group.sample_size(10);
    for (name, method) in [
        ("trapezoidal", Integration::Trapezoidal),
        ("backward_euler", Integration::BackwardEuler),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    simulate(
                        &circ,
                        t_stop,
                        TransientOptions {
                            dt: Some(t_stop / 1000.0),
                            integration: method,
                            ..TransientOptions::default()
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_full_repeater_report(c: &mut Criterion) {
    let tech = presets::ntrs_250nm();
    let mut group = c.benchmark_group("fig7_repeater");
    group.sample_size(10);
    group.bench_function("simulation_m6", |b| {
        b.iter(|| black_box(simulate_repeater(&tech, 5, RepeaterSimOptions::default()).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_segments,
    bench_integration_methods,
    bench_full_repeater_report
);
criterion_main!(benches);
