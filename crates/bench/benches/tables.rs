//! Criterion benchmarks for whole-table generation (Tables 2–4) and the
//! φ = 0.88 vs φ = 2.45 design-rule ablation called out in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotwire_core::rules::{DesignRuleSpec, DesignRuleTable};
use hotwire_tech::presets;
use hotwire_thermal::impedance::{QUASI_1D_PHI, QUASI_2D_PHI};
use hotwire_thermal::transient::TransientLine;
use hotwire_units::{Celsius, CurrentDensity, Length, Seconds};

fn bench_table_generation(c: &mut Criterion) {
    let tech = presets::ntrs_250nm();
    let mut group = c.benchmark_group("table_generation");
    group.sample_size(20);
    group.bench_function("table2_0_25um_full_grid", |b| {
        b.iter(|| {
            let spec =
                DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(6.0e5));
            black_box(DesignRuleTable::generate(&spec).unwrap())
        });
    });
    group.finish();
}

fn bench_phi_ablation(c: &mut Criterion) {
    let tech = presets::ntrs_100nm();
    let mut group = c.benchmark_group("phi_ablation_table");
    group.sample_size(20);
    for (name, phi) in [("phi_0.88", QUASI_1D_PHI), ("phi_2.45", QUASI_2D_PHI)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let spec = DesignRuleSpec {
                    phi,
                    ..DesignRuleSpec::paper_defaults(
                        &tech,
                        2,
                        CurrentDensity::from_amps_per_cm2(1.8e6),
                    )
                };
                black_box(DesignRuleTable::generate(&spec).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_esd_critical_density(c: &mut Criterion) {
    let um = Length::from_micrometers;
    let line = hotwire_thermal::impedance::LineGeometry::new(um(3.0), um(0.55), um(100.0)).unwrap();
    let stack = hotwire_thermal::impedance::InsulatorStack::single(
        um(1.2),
        &hotwire_tech::Dielectric::oxide(),
    );
    let model = TransientLine::new(
        hotwire_tech::Metal::alcu(),
        line,
        &stack,
        QUASI_2D_PHI,
        Celsius::new(25.0).to_kelvin(),
    )
    .unwrap();
    let mut group = c.benchmark_group("esd");
    group.sample_size(10);
    group.bench_function("critical_density_150ns", |b| {
        b.iter(|| {
            black_box(
                model
                    .critical_density(Seconds::from_nanos(150.0), 1e-3)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table_generation,
    bench_phi_ablation,
    bench_esd_critical_density
);
criterion_main!(benches);
