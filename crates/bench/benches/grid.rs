//! Criterion benchmarks for the finite-volume cross-section solver —
//! including the direct-vs-SOR linear-solver ablation called out in
//! DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_bench::baseline;
use hotwire_circuit::power_grid::{PowerGrid, PowerGridSpec};
use hotwire_thermal::grid2d::{MeshControl, SingleWireStructure, SolveOptions};
use hotwire_units::{Area, Current, Length, Resistance, Voltage};

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn bench_mesh_density(c: &mut Criterion) {
    let sw = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
    let mut group = c.benchmark_group("grid2d_fig5_cell_size");
    group.sample_size(10);
    for cell_um in [0.15, 0.08, 0.05] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cell_um),
            &cell_um,
            |b, &cell| {
                let control = MeshControl::resolving(um(cell), 1);
                b.iter(|| {
                    black_box(
                        sw.solve(um(6.0), control, SolveOptions::default())
                            .unwrap()
                            .rise_per_line_power(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_direct_vs_sor(c: &mut Criterion) {
    let sw = SingleWireStructure::all_oxide(um(1.0), um(0.55), um(1.2));
    let control = MeshControl::resolving(um(0.12), 1);
    let mut group = c.benchmark_group("grid2d_linear_solver_ablation");
    group.sample_size(10);
    group.bench_function("direct_cholesky", |b| {
        b.iter(|| {
            black_box(
                sw.solve(um(4.0), control, SolveOptions::default())
                    .unwrap()
                    .rise_per_line_power(),
            )
        });
    });
    group.bench_function("sor", |b| {
        b.iter(|| {
            black_box(
                sw.solve(um(4.0), control, SolveOptions::sor())
                    .unwrap()
                    .rise_per_line_power(),
            )
        });
    });
    group.finish();
}

fn power_grid(n: usize) -> PowerGrid {
    PowerGrid::build(&PowerGridSpec {
        rows: n,
        cols: n,
        segment_resistance: Resistance::new(0.5),
        strap_cross_section: Area::from_um2(1.44),
        vdd: Voltage::new(2.5),
        sink_per_node: Current::from_milliamps(0.4),
        pads: vec![(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)],
    })
    .expect("valid grid spec")
}

/// The new direct sparse DC analysis across grid sizes — the headline
/// number of this PR (compare against `power_grid_seed_path` below; the
/// crossover sizes also exercise the dense backend at 10×10).
fn bench_power_grid_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_grid_analyze");
    group.sample_size(10);
    for n in [10usize, 20, 50, 100, 200] {
        let grid = power_grid(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            b.iter(|| black_box(grid.analyze().unwrap()));
        });
    }
    group.finish();
}

/// The seed's dense damped-Newton transient path, replayed from
/// `hotwire_bench::baseline`. Capped at 30×30: dense LU is O(n⁶) in the
/// grid edge, so 100×100 would take minutes *per solve* — which is the
/// point of this PR. `BENCH_solver.json` extrapolates the larger sizes.
fn bench_power_grid_seed_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_grid_seed_path");
    group.sample_size(10);
    for n in [10usize, 20, 30] {
        let grid = power_grid(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            b.iter(|| black_box(baseline::seed_dense_dc_solve(grid).unwrap().v));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mesh_density,
    bench_direct_vs_sor,
    bench_power_grid_analyze,
    bench_power_grid_seed_path
);
criterion_main!(benches);
