//! Criterion benchmarks for the finite-volume cross-section solver —
//! including the direct-vs-SOR linear-solver ablation called out in
//! DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_thermal::grid2d::{MeshControl, SingleWireStructure, SolveOptions};
use hotwire_units::Length;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn bench_mesh_density(c: &mut Criterion) {
    let sw = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
    let mut group = c.benchmark_group("grid2d_fig5_cell_size");
    group.sample_size(10);
    for cell_um in [0.15, 0.08, 0.05] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cell_um),
            &cell_um,
            |b, &cell| {
                let control = MeshControl::resolving(um(cell), 1);
                b.iter(|| {
                    black_box(
                        sw.solve(um(6.0), control, SolveOptions::default())
                            .unwrap()
                            .rise_per_line_power(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_direct_vs_sor(c: &mut Criterion) {
    let sw = SingleWireStructure::all_oxide(um(1.0), um(0.55), um(1.2));
    let control = MeshControl::resolving(um(0.12), 1);
    let mut group = c.benchmark_group("grid2d_linear_solver_ablation");
    group.sample_size(10);
    group.bench_function("direct_cholesky", |b| {
        b.iter(|| {
            black_box(
                sw.solve(um(4.0), control, SolveOptions::default())
                    .unwrap()
                    .rise_per_line_power(),
            )
        });
    });
    group.bench_function("sor", |b| {
        b.iter(|| {
            black_box(
                sw.solve(um(4.0), control, SolveOptions::sor())
                    .unwrap()
                    .rise_per_line_power(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mesh_density, bench_direct_vs_sor);
criterion_main!(benches);
