//! Criterion benchmarks for the coupled EM–IR–thermal fixed point —
//! including the telemetry-overhead check promised in
//! `docs/OBSERVABILITY.md`.
//!
//! Run twice to measure the instrumentation cost:
//!
//! ```text
//! cargo bench -p hotwire-bench --bench coupled
//! cargo bench -p hotwire-bench --bench coupled --no-default-features
//! ```
//!
//! The `coupled_step/100` numbers from the two runs bound the overhead
//! of the counters/timers on the hot loop (acceptance bar: < 2%). With
//! telemetry compiled out the registry types are zero-sized and every
//! call site folds to nothing, so the second run *is* the uninstrumented
//! baseline, not an approximation of it.
//!
//! `coupled_step_traced` reruns the same hot loop under a live span
//! capture (record + drain per step) — compare against `coupled_step`
//! at the same size to read the full `--trace-out` cost. The committed
//! gate for that number lives in `bench_diff --trace-overhead`, which
//! bounds the paired `NxN+trace` rows of `BENCH_coupled.json` at 5%.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotwire_coupled::{CoupledEngine, CoupledGridSpec, CoupledOptions};
use hotwire_obs::spantree;

fn engine(n: usize) -> CoupledEngine {
    CoupledEngine::new(CoupledGridSpec::demo(n, n), CoupledOptions::default())
        .expect("valid demo spec")
}

/// One Picard iteration at the converged operating point: restamp +
/// refactor + grid solve + thermal update. This is the hot loop the
/// instrumentation rides on, so it is the telemetry-overhead vehicle.
fn bench_coupled_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_step");
    group.sample_size(10);
    for n in [50usize, 100] {
        let mut eng = engine(n);
        eng.run().expect("demo grid converges");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eng.step().expect("step at fixed point")));
        });
    }
    group.finish();
}

/// The hot loop again, but with span capture live: each iteration
/// records the full `coupled.*`/`solver.*`/`thermal.*` span tree and
/// drains it, so the delta over `coupled_step` is the whole tracing
/// bill — begin/end timestamps, buffer pushes, and the drain.
fn bench_coupled_step_traced(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_step_traced");
    group.sample_size(10);
    for n in [50usize, 100] {
        let mut eng = engine(n);
        eng.run().expect("demo grid converges");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                spantree::capture_start();
                let step = eng.step().expect("step at fixed point");
                black_box(spantree::capture_take());
                black_box(step)
            });
        });
    }
    group.finish();
}

/// Full cold run to convergence plus the EM assessment — what one
/// `hotwire coupled-signoff` invocation pays.
fn bench_coupled_signoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_signoff");
    group.sample_size(10);
    group.bench_function("50x50", |b| {
        b.iter(|| {
            let mut eng = engine(50);
            eng.run().expect("demo grid converges");
            black_box(eng.assess().expect("assessment succeeds"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coupled_step,
    bench_coupled_step_traced,
    bench_coupled_signoff
);
criterion_main!(benches);
