//! End-to-end tests of the `repro` reproduction harness binary.

use std::process::Command;

fn repro(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_every_experiment() {
    let (ok, stdout, _) = repro(&["--list"]);
    assert!(ok);
    for id in [
        "fig2", "fig3", "fig5", "fig7", "table1", "table2", "table3", "table4", "table5", "table6",
        "table7", "table8", "esd", "ablation",
    ] {
        assert!(stdout.lines().any(|l| l == id), "missing {id}");
    }
}

#[test]
fn fig2_regenerates_the_headline_ratio() {
    let (ok, stdout, _) = repro(&["--experiment", "fig2"]);
    assert!(ok);
    assert!(stdout.contains("Figure 2"));
    assert!(stdout.contains("nearly 2 times smaller"));
}

#[test]
fn table8_echoes_the_reconstruction() {
    let (ok, stdout, _) = repro(&["--experiment", "table8"]);
    assert!(ok);
    assert!(stdout.contains("ntrs-0.25um-cu"));
    assert!(stdout.contains("ntrs-0.1um-cu"));
    assert!(stdout.contains("0.085"), "sheet-ρ fragment mentioned");
}

#[test]
fn unknown_experiment_fails() {
    let (ok, _, stderr) = repro(&["--experiment", "fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn csv_flag_writes_series() {
    let dir = std::env::temp_dir().join(format!("hotwire-repro-{}", std::process::id()));
    let (ok, stdout, _) = repro(&["--csv", dir.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(dir.join("fig2.csv").exists());
    assert!(dir.join("fig7_0.1um.csv").exists());
    std::fs::remove_dir_all(&dir).ok();
}
