//! Minimal dense linear algebra: LU factorization with partial pivoting.
//!
//! MNA systems below the [`crate::solver`] crossover (a couple hundred
//! unknowns: ≤ ~100 RC segments plus a handful of transistors and
//! sources) are solved faster by a dense LU than by anything sparse once
//! cache effects are counted, and the code stays fully deterministic.
//! The factorization is split from the substitution
//! ([`Matrix::factor`] / [`Matrix::solve_factored`]) so callers with a
//! constant matrix — every timestep of a linear transient — factor once
//! and only re-substitute.

use crate::CircuitError;

/// A dense row-major square-capable matrix of `f64`.
///
/// ```
/// use hotwire_circuit::linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), hotwire_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Row permutation from [`Matrix::factor`]; empty while unfactored.
    perm: Vec<usize>,
}

impl PartialEq for Matrix {
    /// Compares shape and entries; whether either side is factored is
    /// ignored (a factored matrix stores L·U in place of A, so equality
    /// between factored and unfactored matrices is meaningless anyway).
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            perm: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` once [`Matrix::factor`] has succeeded and no stamping has
    /// invalidated the factors since.
    #[must_use]
    pub fn is_factored(&self) -> bool {
        !self.perm.is_empty()
    }

    /// Sets every entry to zero (reuse between Newton iterations without
    /// reallocating). Drops any existing factorization.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
        self.perm.clear();
    }

    /// Adds `v` to entry `(r, c)` — the natural MNA stamping primitive.
    /// Drops any existing factorization.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.perm.clear();
        self.data[r * self.cols + c] += v;
    }

    /// Factors the matrix in place (`A → L·U` with a row permutation),
    /// enabling repeated [`Matrix::solve_factored`] calls at O(n²) each
    /// instead of O(n³).
    ///
    /// The entries are overwritten by the factors; stamping via
    /// [`Matrix::add`] or [`Matrix::clear`] afterwards invalidates the
    /// factorization (writes through `IndexMut` do **not** detect this —
    /// don't mix indexed writes with a live factorization).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when a pivot underflows; the
    /// matrix contents are unspecified after a failure.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factor(&mut self) -> Result<(), CircuitError> {
        assert_eq!(self.rows, self.cols, "factor requires a square matrix");
        let n = self.rows;
        let a = &mut self.data;
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // pivot
            let mut p = col;
            let mut max = a[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = a[pr * n + col].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < 1e-300 {
                return Err(CircuitError::Singular { row: col });
            }
            perm.swap(col, p);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in &perm[col + 1..] {
                let factor = a[r * n + col] / pivot;
                if factor != 0.0 {
                    a[r * n + col] = factor;
                    for c in col + 1..n {
                        a[r * n + c] -= factor * a[prow * n + c];
                    }
                }
            }
        }
        self.perm = perm;
        Ok(())
    }

    /// Solves `A·x = b` using the stored factors from [`Matrix::factor`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix has not been factored or `b` has the wrong
    /// length.
    #[must_use]
    pub fn solve_factored(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_factored_into(b, &mut x);
        x
    }

    /// [`Matrix::solve_factored`] into a caller-provided buffer (resized
    /// to `n`) — the allocation-free per-timestep path.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has not been factored or `b` has the wrong
    /// length.
    pub fn solve_factored_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert!(self.is_factored(), "call factor() before solve_factored");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let a = &self.data;
        let perm = &self.perm;
        x.clear();
        x.resize(n, 0.0);
        // forward: apply L (stored factors) to permuted rhs
        for i in 0..n {
            let pr = perm[i];
            let mut sum = b[pr];
            for (j, xj) in x.iter().enumerate().take(i) {
                sum -= a[pr * n + j] * xj;
            }
            x[i] = sum;
        }
        // back substitution
        for i in (0..n).rev() {
            let pr = perm[i];
            let mut sum = x[i];
            for j in i + 1..n {
                sum -= a[pr * n + j] * x[j];
            }
            x[i] = sum / a[pr * n + i];
        }
    }

    /// Solves `A·x = b` by LU with partial pivoting, leaving `self`
    /// untouched (thin wrapper: factors a copy, then substitutes). Use
    /// [`Matrix::factor`] + [`Matrix::solve_factored`] when solving the
    /// same matrix against many right-hand sides.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        if self.is_factored() {
            return Ok(self.solve_factored(b));
        }
        let mut lu = self.clone();
        lu.factor()?;
        Ok(lu.solve_factored(b))
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch, or if the matrix is factored (the
    /// entries no longer hold `A`).
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        assert!(!self.is_factored(), "mul_vec on a factored matrix");
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] · x = [2, 3] ⇒ x = [3, 2]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_system_round_trip() {
        // Fixed pseudo-random matrix: verify A·solve(A, b) = b.
        let n = 12;
        let mut m = Matrix::zeros(n, n);
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            #[allow(clippy::cast_precision_loss)]
            let v = ((seed >> 33) as f64) / f64::from(1u32 << 31);
            v - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = next();
            }
            m[(r, r)] += 4.0; // diagonally dominant ⇒ well-conditioned
        }
        let b: Vec<f64> = (0..n)
            .map(|i| f64::from(u32::try_from(i).unwrap()))
            .collect();
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn factor_once_solve_many() {
        let mut m = Matrix::zeros(3, 3);
        m.add(0, 0, 4.0);
        m.add(1, 1, 2.0);
        m.add(2, 2, 8.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let reference_b1 = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        let reference_b2 = m.solve(&[-4.0, 0.5, 1.0]).unwrap();
        m.factor().unwrap();
        assert!(m.is_factored());
        let mut x = Vec::new();
        m.solve_factored_into(&[1.0, 2.0, 3.0], &mut x);
        assert_eq!(x, reference_b1);
        m.solve_factored_into(&[-4.0, 0.5, 1.0], &mut x);
        assert_eq!(x, reference_b2);
        // solve() on a factored matrix takes the fast path.
        assert_eq!(m.solve(&[1.0, 2.0, 3.0]).unwrap(), reference_b1);
    }

    #[test]
    fn stamping_invalidates_factorization() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        m.factor().unwrap();
        assert!(m.is_factored());
        m.add(0, 0, 1.0);
        assert!(!m.is_factored());
        m.factor().unwrap();
        m.clear();
        assert!(!m.is_factored());
    }

    #[test]
    #[should_panic(expected = "factor() before solve_factored")]
    fn solve_factored_requires_factor() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        let _ = m.solve_factored(&[1.0, 1.0]);
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(CircuitError::Singular { .. })
        ));
    }

    #[test]
    fn add_stamps() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        assert_eq!(m[(0, 0)], 2.0);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut m = Matrix::zeros(2, 2);
        m.add(2, 0, 1.0);
    }
}
