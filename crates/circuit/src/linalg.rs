//! Minimal dense linear algebra: LU factorization with partial pivoting.
//!
//! MNA systems at our scale (a few hundred unknowns: ≤ ~100 RC segments
//! plus a handful of transistors and sources) are solved faster by a dense
//! LU than by anything sparse once cache effects are counted, and the code
//! stays fully deterministic.

use crate::CircuitError;

/// A dense row-major square-capable matrix of `f64`.
///
/// ```
/// use hotwire_circuit::linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), hotwire_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero (reuse between Newton iterations without
    /// reallocating).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(r, c)` — the natural MNA stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// Solves `A·x = b` by LU with partial pivoting, leaving `self`
    /// untouched (the factorization works on a copy).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // pivot
            let mut p = col;
            let mut max = a[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = a[pr * n + col].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < 1e-300 {
                return Err(CircuitError::Singular { row: col });
            }
            perm.swap(col, p);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in &perm[col + 1..] {
                let factor = a[r * n + col] / pivot;
                if factor != 0.0 {
                    a[r * n + col] = factor;
                    for c in col + 1..n {
                        a[r * n + c] -= factor * a[prow * n + c];
                    }
                }
            }
        }
        // forward: apply L (stored factors) to permuted rhs
        let mut y = vec![0.0; n];
        for (i, &pr) in perm.iter().enumerate() {
            let mut sum = x[pr];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum -= a[pr * n + j] * yj;
            }
            y[i] = sum;
        }
        // back substitution
        for i in (0..n).rev() {
            let pr = perm[i];
            let mut sum = y[i];
            for j in i + 1..n {
                sum -= a[pr * n + j] * x[j];
            }
            x[i] = sum / a[pr * n + i];
        }
        Ok(x)
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] · x = [2, 3] ⇒ x = [3, 2]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_system_round_trip() {
        // Fixed pseudo-random matrix: verify A·solve(A, b) = b.
        let n = 12;
        let mut m = Matrix::zeros(n, n);
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            #[allow(clippy::cast_precision_loss)]
            let v = ((seed >> 33) as f64) / f64::from(1u32 << 31);
            v - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = next();
            }
            m[(r, r)] += 4.0; // diagonally dominant ⇒ well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| f64::from(u32::try_from(i).unwrap())).collect();
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(CircuitError::Singular { .. })
        ));
    }

    #[test]
    fn add_stamps() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        assert_eq!(m[(0, 0)], 2.0);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut m = Matrix::zeros(2, 2);
        m.add(2, 0, 1.0);
    }
}
