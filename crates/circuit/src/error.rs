//! Error type for circuit simulation.

/// Errors produced by circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A device parameter was non-physical (negative R, C, etc.).
    InvalidDevice {
        /// Description of the defect.
        message: String,
    },
    /// A node id was not created through [`crate::netlist::Circuit::node`].
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// The MNA matrix was singular (floating node, V-source loop, …).
    Singular {
        /// The pivot row at which elimination failed.
        row: usize,
    },
    /// An LDLᵀ pivot came out non-positive: the matrix is not positive
    /// definite. Dispatch layers catch this and fall back to LU.
    NotPositiveDefinite {
        /// The pivot position (permuted order) at which `D` failed.
        row: usize,
    },
    /// Newton iteration failed to converge at a timestep.
    NewtonDiverged {
        /// Simulation time at which the failure occurred (seconds).
        at_seconds: f64,
        /// Iterations attempted.
        iterations: usize,
    },
    /// An invalid simulation option (non-positive step or stop time).
    InvalidOptions {
        /// Description of the defect.
        message: String,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::InvalidDevice { message } => write!(f, "invalid device: {message}"),
            CircuitError::UnknownNode { node } => write!(f, "unknown node {node}"),
            CircuitError::Singular { row } => {
                write!(f, "singular MNA matrix at pivot row {row} (floating node?)")
            }
            CircuitError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite at pivot {row}")
            }
            CircuitError::NewtonDiverged {
                at_seconds,
                iterations,
            } => write!(
                f,
                "newton iteration diverged at t = {at_seconds:.3e} s after {iterations} iterations"
            ),
            CircuitError::InvalidOptions { message } => write!(f, "invalid options: {message}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CircuitError::Singular { row: 3 }
            .to_string()
            .contains("row 3"));
        assert!(CircuitError::UnknownNode { node: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
