//! Independent source waveforms (DC, pulse, piece-wise linear).

use serde::{Deserialize, Serialize};

/// A time-dependent source value (volts for V-sources, amperes for
/// I-sources).
///
/// ```
/// use hotwire_circuit::sources::SourceWaveform;
///
/// // A SPICE-style PULSE(0 2.5 1n 0.2n 0.2n 3n 8n):
/// let p = SourceWaveform::pulse(0.0, 2.5, 1.0e-9, 0.2e-9, 0.2e-9, 3.0e-9, 8.0e-9);
/// assert_eq!(p.at(0.0), 0.0);
/// assert_eq!(p.at(2.0e-9), 2.5);          // on plateau
/// assert!((p.at(1.1e-9) - 1.25).abs() < 1e-9); // mid-rise
/// assert_eq!(p.at(6.0e-9), 0.0);          // back low after the fall
/// assert_eq!(p.at(11.0e-9), 2.5);         // high again in the next period
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceWaveform {
    /// A constant value.
    Dc(f64),
    /// A periodic trapezoidal pulse (SPICE `PULSE`).
    Pulse {
        /// Initial (low) value.
        v0: f64,
        /// Pulsed (high) value.
        v1: f64,
        /// Delay before the first rise.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// High plateau width.
        width: f64,
        /// Repetition period (0 = single pulse).
        period: f64,
    },
    /// Piece-wise linear samples `(t, v)`; constant extrapolation outside.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// A constant source.
    #[must_use]
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// A periodic trapezoidal pulse (SPICE `PULSE` semantics).
    #[must_use]
    pub fn pulse(
        v0: f64,
        v1: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        SourceWaveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// A 50 %-duty clock with the given period, rails and edge time.
    #[must_use]
    pub fn clock(v0: f64, v1: f64, period: f64, edge: f64) -> Self {
        Self::pulse(v0, v1, 0.0, edge, edge, period / 2.0 - edge, period)
    }

    /// The source value at time `t`.
    #[must_use]
    pub fn at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tau = t - delay;
                if tau < 0.0 {
                    return *v0;
                }
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise == 0.0 {
                        return *v1;
                    }
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    if *fall == 0.0 {
                        return *v0;
                    }
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = SourceWaveform::dc(2.5);
        assert_eq!(s.at(0.0), 2.5);
        assert_eq!(s.at(1.0), 2.5);
    }

    #[test]
    fn pulse_periodicity() {
        let p = SourceWaveform::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        assert!((p.at(0.05) - 0.5).abs() < 1e-12); // rising
        assert_eq!(p.at(0.2), 1.0); // plateau
        assert!((p.at(0.45) - 0.5).abs() < 1e-12); // falling
        assert_eq!(p.at(0.9), 0.0); // low
        assert!((p.at(1.05) - 0.5).abs() < 1e-12); // second period rising
    }

    #[test]
    fn pulse_zero_edges() {
        let p = SourceWaveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 0.5, 1.0);
        assert_eq!(p.at(0.0), 1.0);
        assert_eq!(p.at(0.25), 1.0);
        assert_eq!(p.at(0.75), 0.0);
    }

    #[test]
    fn clock_has_half_duty() {
        let c = SourceWaveform::clock(0.0, 1.0, 2.0, 0.1);
        assert_eq!(c.at(0.5), 1.0);
        assert_eq!(c.at(1.5), 0.0);
    }

    #[test]
    fn pwl_interpolation_and_extrapolation() {
        let s = SourceWaveform::Pwl(vec![(1.0, 0.0), (2.0, 2.0), (3.0, 1.0)]);
        assert_eq!(s.at(0.0), 0.0); // before first point
        assert!((s.at(1.5) - 1.0).abs() < 1e-12);
        assert!((s.at(2.5) - 1.5).abs() < 1e-12);
        assert_eq!(s.at(5.0), 1.0); // after last point
        assert_eq!(SourceWaveform::Pwl(vec![]).at(1.0), 0.0);
    }
}
