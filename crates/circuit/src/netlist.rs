//! Circuit construction: nodes, passive devices, sources, MOSFETs.

use serde::{Deserialize, Serialize};

use crate::sources::SourceWaveform;
use crate::CircuitError;

/// A node handle returned by [`Circuit::node`]. Node 0 is ground.
pub type NodeId = usize;

/// Level-1 (Shichman–Hodges) MOSFET parameters.
///
/// `I_D = 0` for `v_gs < v_t`;
/// `k·[(v_gs−v_t)·v_ds − v_ds²/2]·(1+λ·v_ds)` in triode;
/// `k/2·(v_gs−v_t)²·(1+λ·v_ds)` in saturation. `k` already folds in W/L.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Threshold voltage (positive for both polarities; the stamp handles
    /// sign).
    pub vt: f64,
    /// Transconductance factor k = k'·W/L in A/V².
    pub k: f64,
    /// Channel-length modulation λ in 1/V.
    pub lambda: f64,
}

impl MosParams {
    /// Derives parameters so that the device's effective switching
    /// resistance when discharging a capacitor across `vdd` matches a
    /// target `r_eff` (using the standard `R_eff ≈ 3·V_dd/(4·I_dsat)`
    /// approximation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `vdd ≤ vt` or inputs are non-positive.
    #[must_use]
    pub fn from_effective_resistance(r_eff: f64, vdd: f64, vt: f64) -> Self {
        debug_assert!(r_eff > 0.0 && vdd > vt && vt > 0.0);
        let idsat = 3.0 * vdd / (4.0 * r_eff);
        let k = 2.0 * idsat / ((vdd - vt) * (vdd - vt));
        Self {
            vt,
            k,
            lambda: 0.05,
        }
    }

    /// Scales the device width by `s` (multiplies k).
    #[must_use]
    pub fn scaled(mut self, s: f64) -> Self {
        self.k *= s;
        self
    }

    /// Saturation current at `v_gs = vdd` (ignoring λ).
    #[must_use]
    pub fn idsat(&self, vdd: f64) -> f64 {
        if vdd <= self.vt {
            0.0
        } else {
            0.5 * self.k * (vdd - self.vt) * (vdd - self.vt)
        }
    }
}

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel: conducts for `v_gs > v_t`, pulls the drain low.
    Nmos,
    /// P-channel: conducts for `v_sg > v_t`, pulls the drain high.
    Pmos,
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent voltage source from `plus` to `minus` (adds an MNA
    /// branch unknown).
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// The source waveform, volts.
        waveform: SourceWaveform,
    },
    /// Independent current source injecting into `into` (out of `from`).
    CurrentSource {
        /// The node current flows out of.
        from: NodeId,
        /// The node current flows into.
        into: NodeId,
        /// The source waveform, amperes.
        waveform: SourceWaveform,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Device parameters.
        params: MosParams,
        /// N- or P-channel.
        polarity: MosPolarity,
    },
}

/// A circuit under construction.
///
/// Node 0 ([`Circuit::GROUND`]) always exists. Devices may be added in any
/// order; validation happens at add time (node existence, positive
/// element values).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    next_node: usize,
    devices: Vec<Device>,
}

impl Circuit {
    /// The ground node (reference, 0 V).
    pub const GROUND: NodeId = 0;

    /// Creates an empty circuit (ground only).
    #[must_use]
    pub fn new() -> Self {
        Self {
            next_node: 1,
            devices: Vec::new(),
        }
    }

    /// Allocates a new node.
    pub fn node(&mut self) -> NodeId {
        let id = self.next_node;
        self.next_node += 1;
        id
    }

    /// Allocates `n` new nodes.
    pub fn nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.node()).collect()
    }

    /// Number of non-ground nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.next_node - 1
    }

    /// The devices added so far.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    fn check_node(&self, n: NodeId) -> Result<(), CircuitError> {
        if n < self.next_node {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { node: n })
        }
    }

    /// Adds a resistor. Returns the device index (usable with the
    /// current-probe helpers in [`crate::transient`]).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive resistance.
    pub fn try_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<usize, CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(ohms > 0.0) || !ohms.is_finite() {
            return Err(CircuitError::InvalidDevice {
                message: format!("resistance must be positive, got {ohms}"),
            });
        }
        self.devices.push(Device::Resistor { a, b, ohms });
        Ok(self.devices.len() - 1)
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes or non-positive resistance; use
    /// [`Circuit::try_resistor`] for fallible construction.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> usize {
        self.try_resistor(a, b, ohms).expect("valid resistor")
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and negative capacitance.
    pub fn try_capacitor(
        &mut self,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<usize, CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(farads >= 0.0) || !farads.is_finite() {
            return Err(CircuitError::InvalidDevice {
                message: format!("capacitance must be non-negative, got {farads}"),
            });
        }
        self.devices.push(Device::Capacitor { a, b, farads });
        Ok(self.devices.len() - 1)
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes or negative capacitance.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> usize {
        self.try_capacitor(a, b, farads).expect("valid capacitor")
    }

    /// Adds an independent voltage source.
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes.
    pub fn voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> usize {
        self.check_node(plus).expect("valid plus node");
        self.check_node(minus).expect("valid minus node");
        self.devices.push(Device::VoltageSource {
            plus,
            minus,
            waveform,
        });
        self.devices.len() - 1
    }

    /// Adds an independent current source (`from` → `into`).
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes.
    pub fn current_source(
        &mut self,
        from: NodeId,
        into: NodeId,
        waveform: SourceWaveform,
    ) -> usize {
        self.check_node(from).expect("valid from node");
        self.check_node(into).expect("valid into node");
        self.devices.push(Device::CurrentSource {
            from,
            into,
            waveform,
        });
        self.devices.len() - 1
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive k / vt.
    pub fn try_mosfet(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosParams,
        polarity: MosPolarity,
    ) -> Result<usize, CircuitError> {
        self.check_node(d)?;
        self.check_node(g)?;
        self.check_node(s)?;
        if !(params.k > 0.0) || !(params.vt > 0.0) || !(params.lambda >= 0.0) {
            return Err(CircuitError::InvalidDevice {
                message: "MOSFET needs k > 0, vt > 0, λ ≥ 0".to_owned(),
            });
        }
        self.devices.push(Device::Mosfet {
            d,
            g,
            s,
            params,
            polarity,
        });
        Ok(self.devices.len() - 1)
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes or parameters.
    pub fn mosfet(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosParams,
        polarity: MosPolarity,
    ) -> usize {
        self.try_mosfet(d, g, s, params, polarity)
            .expect("valid MOSFET")
    }

    /// Adds a CMOS inverter: input gate node, output drain node, between
    /// `vdd_node` and ground. The PMOS is made `pn_ratio`× wider than the
    /// NMOS. Returns `(nmos_index, pmos_index)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid nodes or parameters.
    pub fn inverter(
        &mut self,
        input: NodeId,
        output: NodeId,
        vdd_node: NodeId,
        nmos: MosParams,
        pn_ratio: f64,
    ) -> (usize, usize) {
        let n = self.mosfet(output, input, Self::GROUND, nmos, MosPolarity::Nmos);
        let p = self.mosfet(
            output,
            input,
            vdd_node,
            nmos.scaled(pn_ratio),
            MosPolarity::Pmos,
        );
        (n, p)
    }
}

/// The drain current and small-signal conductances of a level-1 MOSFET at
/// a bias point — used by the Newton loop and exposed for tests
/// (C-INTERMEDIATE).
///
/// Returns `(i_d, g_m, g_ds)` with the convention that `i_d` flows
/// drain→source for NMOS (source→drain for PMOS the sign flips inside the
/// stamp).
#[must_use]
pub fn mos_current(
    params: MosParams,
    polarity: MosPolarity,
    vd: f64,
    vg: f64,
    vs: f64,
) -> (f64, f64, f64) {
    // Map PMOS onto the NMOS equations by mirroring voltages.
    let (vgs, vds) = match polarity {
        MosPolarity::Nmos => (vg - vs, vd - vs),
        MosPolarity::Pmos => (vs - vg, vs - vd),
    };
    // Handle source/drain swap (vds < 0) by symmetry: conduction is
    // symmetric for the level-1 model.
    let (vgs_eff, vds_eff, flip) = if vds >= 0.0 {
        (vgs, vds, false)
    } else {
        (vgs - vds, -vds, true)
    };
    let vov = vgs_eff - params.vt;
    let (mut id, mut gm, mut gds) = if vov <= 0.0 {
        (0.0, 0.0, 0.0)
    } else if vds_eff < vov {
        // triode
        let id =
            params.k * (vov * vds_eff - 0.5 * vds_eff * vds_eff) * (1.0 + params.lambda * vds_eff);
        let gm = params.k * vds_eff * (1.0 + params.lambda * vds_eff);
        let gds = params.k * (vov - vds_eff) * (1.0 + params.lambda * vds_eff)
            + params.k * (vov * vds_eff - 0.5 * vds_eff * vds_eff) * params.lambda;
        (id, gm, gds)
    } else {
        // saturation
        let id = 0.5 * params.k * vov * vov * (1.0 + params.lambda * vds_eff);
        let gm = params.k * vov * (1.0 + params.lambda * vds_eff);
        let gds = 0.5 * params.k * vov * vov * params.lambda;
        (id, gm, gds)
    };
    if flip {
        id = -id;
        // For the flipped device, what we call gm/gds still linearize the
        // current w.r.t. the original vgs/vds; the MNA stamp treats the
        // returned values as ∂I/∂vgs and ∂I/∂vds of the *reported* current.
        // ∂I/∂vgs = -gm(vgs'), ∂I/∂vds = gm(vgs') + gds(vds') by the chain
        // rule through vgs' = vgs − vds, vds' = −vds.
        let gm_f = -gm;
        let gds_f = gm + gds;
        gm = gm_f;
        gds = gds_f;
    }
    (id, gm, gds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MosParams {
        MosParams {
            vt: 0.5,
            k: 1.0e-3,
            lambda: 0.0,
        }
    }

    #[test]
    fn node_allocation() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(c.node_count(), 2);
        let more = c.nodes(3);
        assert_eq!(more, vec![3, 4, 5]);
    }

    #[test]
    fn device_validation() {
        let mut c = Circuit::new();
        let a = c.node();
        assert!(c.try_resistor(a, 99, 1.0).is_err());
        assert!(c.try_resistor(a, Circuit::GROUND, 0.0).is_err());
        assert!(c.try_capacitor(a, Circuit::GROUND, -1.0).is_err());
        assert!(c.try_capacitor(a, Circuit::GROUND, 0.0).is_ok());
        assert!(c
            .try_mosfet(
                a,
                a,
                Circuit::GROUND,
                MosParams {
                    vt: 0.0,
                    k: 1.0,
                    lambda: 0.0
                },
                MosPolarity::Nmos
            )
            .is_err());
    }

    #[test]
    fn mos_cutoff() {
        let (id, gm, gds) = mos_current(params(), MosPolarity::Nmos, 1.0, 0.2, 0.0);
        assert_eq!(id, 0.0);
        assert_eq!(gm, 0.0);
        assert_eq!(gds, 0.0);
    }

    #[test]
    fn mos_saturation_value() {
        // vgs = 1.5, vt = 0.5 ⇒ vov = 1; vds = 2 > vov ⇒ saturation
        let (id, gm, _) = mos_current(params(), MosPolarity::Nmos, 2.0, 1.5, 0.0);
        assert!((id - 0.5e-3).abs() < 1e-12);
        assert!((gm - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn mos_triode_value() {
        // vov = 1, vds = 0.5 ⇒ triode: k(1·0.5 − 0.125) = 0.375 mA
        let (id, _, gds) = mos_current(params(), MosPolarity::Nmos, 0.5, 1.5, 0.0);
        assert!((id - 0.375e-3).abs() < 1e-12);
        assert!((gds - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn mos_continuity_at_saturation_edge() {
        let p = params();
        let (id_t, _, _) = mos_current(p, MosPolarity::Nmos, 0.9999999, 1.5, 0.0);
        let (id_s, _, _) = mos_current(p, MosPolarity::Nmos, 1.0000001, 1.5, 0.0);
        assert!((id_t - id_s).abs() < 1e-9);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        // PMOS with source at 2.5 V, gate at 0 ⇒ vsg = 2.5, strongly on.
        let (id_p, _, _) = mos_current(params(), MosPolarity::Pmos, 0.0, 0.0, 2.5);
        let (id_n, _, _) = mos_current(params(), MosPolarity::Nmos, 2.5, 2.5, 0.0);
        assert!((id_p - id_n).abs() < 1e-12);
    }

    #[test]
    fn reverse_conduction_is_antisymmetric() {
        // Swap drain/source at the same gate potential: current flips sign
        // (λ = 0 keeps it exact).
        let p = params();
        let (fwd, _, _) = mos_current(p, MosPolarity::Nmos, 0.3, 1.5, 0.0);
        let (rev, _, _) = mos_current(p, MosPolarity::Nmos, 0.0, 1.5, 0.3);
        assert!((fwd + rev).abs() < 1e-12, "fwd {fwd} rev {rev}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let p = MosParams {
            vt: 0.5,
            k: 2.0e-3,
            lambda: 0.05,
        };
        for &(vd, vg, vs) in &[
            (1.3, 1.2, 0.0),
            (0.2, 1.8, 0.0),
            (2.0, 2.4, 0.0),
            (0.1, 1.0, 0.4),
            // reverse-conduction bias points (vds < 0)
            (0.0, 1.5, 0.6),
            (0.2, 2.0, 0.9),
        ] {
            let h = 1e-7;
            let (id, gm, gds) = mos_current(p, MosPolarity::Nmos, vd, vg, vs);
            let (id_g, _, _) = mos_current(p, MosPolarity::Nmos, vd, vg + h, vs);
            let (id_d, _, _) = mos_current(p, MosPolarity::Nmos, vd + h, vg, vs);
            let gm_fd = (id_g - id) / h;
            let gds_fd = (id_d - id) / h;
            assert!(
                (gm - gm_fd).abs() < 1e-5 * p.k.max(id.abs() / 0.1),
                "gm {gm} vs fd {gm_fd} at ({vd},{vg},{vs})"
            );
            assert!(
                (gds - gds_fd).abs() < 1e-5 * p.k.max(id.abs() / 0.1),
                "gds {gds} vs fd {gds_fd} at ({vd},{vg},{vs})"
            );
        }
    }

    #[test]
    fn effective_resistance_calibration() {
        let p = MosParams::from_effective_resistance(10.0e3, 2.5, 0.5);
        let idsat = p.idsat(2.5);
        let r_eff = 3.0 * 2.5 / (4.0 * idsat);
        assert!((r_eff - 10.0e3).abs() / 10.0e3 < 1e-9);
        let wide = p.scaled(4.0);
        assert!((wide.idsat(2.5) - 4.0 * idsat).abs() < 1e-12);
    }

    #[test]
    fn inverter_adds_two_devices() {
        let mut c = Circuit::new();
        let vdd = c.node();
        let a = c.node();
        let y = c.node();
        let (n, p) = c.inverter(a, y, vdd, params(), 2.0);
        assert_eq!(c.devices().len(), 2);
        assert!(matches!(
            c.devices()[n],
            Device::Mosfet {
                polarity: MosPolarity::Nmos,
                ..
            }
        ));
        assert!(matches!(
            c.devices()[p],
            Device::Mosfet {
                polarity: MosPolarity::Pmos,
                ..
            }
        ));
    }
}
