//! Reusable DC solver for resistive grids: Dirichlet-pinned nodes,
//! per-node sink currents, per-branch conductances — and cheap repeated
//! solves when only the conductances change.
//!
//! This is the electrical half of the coupled electro-thermal loop: the
//! topology (which nodes exist, which are pinned to a supply, which
//! branches connect them) is fixed once, while branch conductances are
//! restamped every iteration as each strap's resistivity tracks its
//! local temperature. The solver eliminates pinned nodes from the
//! system (no voltage-source branches), stamps the reduced conductance
//! matrix through the dense/sparse [`MnaMatrix::auto`] crossover, and
//! keeps the [`MnaFactorization`] alive across solves so iteration 2+
//! pays only a numeric [`MnaFactorization::refactor`], not the symbolic
//! analysis.
//!
//! ```
//! use hotwire_circuit::grid_dc::DcGridSolver;
//!
//! // A 3-node chain: node 0 pinned at 1 V, 1 A drawn from node 2.
//! let mut solver = DcGridSolver::new(3, vec![(0, 1), (1, 2)], &[(0, 1.0)], 1e-12)?;
//! solver.set_sink(2, 1.0);
//! solver.solve(&[2.0, 2.0])?; // two 0.5 Ω branches
//! let v = solver.node_voltages();
//! assert!((v[2] - 0.0).abs() < 1e-6, "1 V − 1 A·1 Ω ⇒ ≈0 V at the load");
//! let i = solver.branch_currents();
//! assert!((i[0] - 1.0).abs() < 1e-6, "current flows 0 → 2");
//! # Ok::<(), hotwire_circuit::CircuitError>(())
//! ```

use crate::solver::{MnaFactorization, MnaMatrix, SolverPath};
use crate::CircuitError;
use hotwire_obs::{health, metrics, recorder};

/// Refactors between condition-estimate resamples: the estimate is
/// cached per sparsity pattern and refreshed every this-many numeric
/// refactors, so its few extra solves amortize to well under a percent
/// of the solve budget while conditioning drift (a strap burning out,
/// a grid drifting toward floating) still surfaces within one Picard
/// window.
pub const COND_RESAMPLE_INTERVAL: usize = 32;

/// Default relative-residual warn threshold: ‖Ax−b‖∞/‖b‖∞ beyond this
/// increments `health.residual_warn` and logs a warning. Direct sparse
/// solves on well-conditioned grids land near machine epsilon; 1e-8
/// leaves orders of headroom before flagging.
pub const DEFAULT_RESIDUAL_WARN: f64 = 1e-8;

/// A resistive-grid DC solver with a fixed topology and restampable
/// branch conductances.
///
/// Create once per topology with [`DcGridSolver::new`], then call
/// [`DcGridSolver::solve`] as many times as needed with updated
/// conductance vectors. The first solve factors the reduced matrix;
/// later solves reuse the factorization's symbolic structure via
/// [`MnaFactorization::refactor`].
#[derive(Debug, Clone)]
pub struct DcGridSolver {
    n_nodes: usize,
    branches: Vec<(usize, usize)>,
    pinned_v: Vec<Option<f64>>,
    unknown_of: Vec<usize>,
    n_unknowns: usize,
    gmin: f64,
    sinks: Vec<f64>,
    matrix: MnaMatrix,
    lu_only: bool,
    factorization: Option<MnaFactorization>,
    rhs: Vec<f64>,
    reduced: Vec<f64>,
    node_v: Vec<f64>,
    branch_i: Vec<f64>,
    solves: usize,
    residual_warn: f64,
    last_residual: Option<f64>,
    cond_est: Option<f64>,
    refactors_since_cond: usize,
}

impl DcGridSolver {
    /// Builds a solver for `n_nodes` nodes connected by `branches`
    /// (pairs of node indices), with the given nodes pinned to fixed
    /// voltages and a `gmin` leak from every free node to ground (so
    /// disconnected islands droop instead of going singular).
    ///
    /// Duplicate pins on the same node are allowed; the last value wins.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] when there are no nodes,
    /// no branches, no pinned nodes, an index is out of range, a branch
    /// is a self-loop, or `gmin` is negative or non-finite.
    pub fn new(
        n_nodes: usize,
        branches: Vec<(usize, usize)>,
        pinned: &[(usize, f64)],
        gmin: f64,
    ) -> Result<Self, CircuitError> {
        if n_nodes == 0 {
            return Err(CircuitError::InvalidDevice {
                message: "DC grid needs at least one node".to_owned(),
            });
        }
        if branches.is_empty() {
            return Err(CircuitError::InvalidDevice {
                message: "DC grid needs at least one branch".to_owned(),
            });
        }
        if pinned.is_empty() {
            return Err(CircuitError::InvalidDevice {
                message: "DC grid needs at least one pinned node".to_owned(),
            });
        }
        if !(gmin >= 0.0) || !gmin.is_finite() {
            return Err(CircuitError::InvalidDevice {
                message: format!("gmin must be finite and non-negative, got {gmin}"),
            });
        }
        for &(a, b) in &branches {
            if a >= n_nodes || b >= n_nodes {
                return Err(CircuitError::InvalidDevice {
                    message: format!("branch ({a}, {b}) outside {n_nodes} nodes"),
                });
            }
            if a == b {
                return Err(CircuitError::InvalidDevice {
                    message: format!("branch ({a}, {b}) is a self-loop"),
                });
            }
        }
        let mut pinned_v = vec![None; n_nodes];
        for &(node, v) in pinned {
            if node >= n_nodes {
                return Err(CircuitError::InvalidDevice {
                    message: format!("pinned node {node} outside {n_nodes} nodes"),
                });
            }
            if !v.is_finite() {
                return Err(CircuitError::InvalidDevice {
                    message: format!("pinned voltage {v} at node {node} is not finite"),
                });
            }
            pinned_v[node] = Some(v);
        }
        let mut unknown_of = vec![usize::MAX; n_nodes];
        let mut n_unknowns = 0;
        for (node, u) in unknown_of.iter_mut().enumerate() {
            if pinned_v[node].is_none() {
                *u = n_unknowns;
                n_unknowns += 1;
            }
        }
        let n_branches = branches.len();
        Ok(Self {
            n_nodes,
            branches,
            pinned_v,
            unknown_of,
            n_unknowns,
            gmin,
            sinks: vec![0.0; n_nodes],
            matrix: MnaMatrix::auto(n_unknowns.max(1)),
            lu_only: false,
            factorization: None,
            rhs: vec![0.0; n_unknowns],
            reduced: Vec::new(),
            node_v: vec![0.0; n_nodes],
            branch_i: vec![0.0; n_branches],
            solves: 0,
            residual_warn: DEFAULT_RESIDUAL_WARN,
            last_residual: None,
            cond_est: None,
            refactors_since_cond: 0,
        })
    }

    /// Sets the DC current drawn from `node` to ground (a logic load).
    ///
    /// Sinks on pinned nodes are legal but inert: the pad supplies them
    /// directly without flowing through any branch.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_sink(&mut self, node: usize, amps: f64) {
        self.sinks[node] = amps;
    }

    /// Solves the grid for the given per-branch conductances (S), in
    /// branch order as passed to [`DcGridSolver::new`].
    ///
    /// The first call factors the reduced matrix; later calls restamp
    /// and [`MnaFactorization::refactor`], reusing the symbolic
    /// structure. Results land in [`DcGridSolver::node_voltages`] and
    /// [`DcGridSolver::branch_currents`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] on a conductance-count
    /// mismatch or a non-positive/non-finite conductance, and
    /// [`CircuitError::Singular`] when the stamped system cannot be
    /// factored.
    pub fn solve(&mut self, branch_conductance: &[f64]) -> Result<(), CircuitError> {
        if branch_conductance.len() != self.branches.len() {
            return Err(CircuitError::InvalidDevice {
                message: format!(
                    "expected {} branch conductances, got {}",
                    self.branches.len(),
                    branch_conductance.len()
                ),
            });
        }
        for (k, &g) in branch_conductance.iter().enumerate() {
            if !(g > 0.0) || !g.is_finite() {
                return Err(CircuitError::InvalidDevice {
                    message: format!("branch {k} conductance must be positive, got {g}"),
                });
            }
        }

        metrics::counter("grid_dc.solves").inc();
        #[allow(clippy::cast_precision_loss)]
        metrics::gauge("grid_dc.unknowns").set(self.n_unknowns as f64);
        let _t = hotwire_obs::trace::span("grid_dc.solve_time");
        if self.n_unknowns > 0 {
            self.matrix.clear();
            self.rhs.iter_mut().for_each(|r| *r = 0.0);
            // Stamp in a fixed order so every solve produces the same
            // sparsity pattern (a refactor() precondition) and the same
            // floating-point sums as a fresh assembly.
            for (&(a, b), &g) in self.branches.iter().zip(branch_conductance) {
                match (self.pinned_v[a], self.pinned_v[b]) {
                    (None, None) => {
                        let (ua, ub) = (self.unknown_of[a], self.unknown_of[b]);
                        self.matrix.add(ua, ua, g);
                        self.matrix.add(ub, ub, g);
                        self.matrix.add(ua, ub, -g);
                        self.matrix.add(ub, ua, -g);
                    }
                    (Some(va), None) => {
                        let ub = self.unknown_of[b];
                        self.matrix.add(ub, ub, g);
                        self.rhs[ub] += g * va;
                    }
                    (None, Some(vb)) => {
                        let ua = self.unknown_of[a];
                        self.matrix.add(ua, ua, g);
                        self.rhs[ua] += g * vb;
                    }
                    (Some(_), Some(_)) => {} // both ends pinned: no unknown
                }
            }
            for node in 0..self.n_nodes {
                if self.pinned_v[node].is_none() {
                    let u = self.unknown_of[node];
                    self.matrix.add(u, u, self.gmin);
                    self.rhs[u] -= self.sinks[node];
                }
            }
            let mut sample_cond = false;
            match &mut self.factorization {
                Some(f) => {
                    f.refactor(&self.matrix)?;
                    self.refactors_since_cond += 1;
                    if self.refactors_since_cond >= COND_RESAMPLE_INTERVAL {
                        sample_cond = true;
                    }
                }
                None => {
                    self.factorization = Some(if self.lu_only {
                        self.matrix.factor_lu()?
                    } else {
                        self.matrix.factor()?
                    });
                    sample_cond = true;
                }
            }
            let f = self
                .factorization
                .as_ref()
                .expect("factorization installed above");
            f.solve_into(&self.rhs, &mut self.reduced);
            if sample_cond {
                // First factorization of a pattern, or every
                // COND_RESAMPLE_INTERVAL-th refactor: refresh the cached
                // Hager/Higham estimate (a handful of extra triangular
                // solves against the factorization already in hand).
                if let Some(kappa) = f.condition_estimate() {
                    self.cond_est = Some(kappa);
                }
                self.refactors_since_cond = 0;
            }
            self.check_residual();
        }
        for node in 0..self.n_nodes {
            self.node_v[node] = match self.pinned_v[node] {
                Some(v) => v,
                None => self.reduced[self.unknown_of[node]],
            };
        }
        for (k, (&(a, b), &g)) in self.branches.iter().zip(branch_conductance).enumerate() {
            self.branch_i[k] = (self.node_v[a] - self.node_v[b]) * g;
        }
        self.solves += 1;
        Ok(())
    }

    /// Post-solve relative residual ‖Ax−b‖∞/‖b‖∞ against the stamps and
    /// RHS still in place from [`DcGridSolver::solve`]. Cheap (one
    /// sparse mat-vec) and always on; publishes `health.residual_rel`
    /// and flags `health.residual_warn` past the threshold.
    fn check_residual(&mut self) {
        let ax = self.matrix.mul_vec(&self.reduced);
        let mut err = 0.0f64;
        let mut bnorm = 0.0f64;
        for (axi, bi) in ax.iter().zip(&self.rhs) {
            err = err.max((axi - bi).abs());
            bnorm = bnorm.max(bi.abs());
        }
        let rel = if bnorm > 0.0 { err / bnorm } else { err };
        self.last_residual = Some(rel);
        metrics::gauge(health::names::RESIDUAL_REL).set(rel);
        if rel.is_nan() || rel > self.residual_warn {
            metrics::counter(health::names::RESIDUAL_WARN).inc();
            recorder::record(
                "health.residual_warn",
                format_args!(
                    "relative residual {rel:.3e} exceeds threshold {:.3e} on {} unknowns",
                    self.residual_warn, self.n_unknowns
                ),
            );
        }
    }

    /// Audits Kirchhoff's current law at every free node of the most
    /// recent solve: the signed branch outflows, the sink draw, and the
    /// `gmin` leak must cancel. Returns the worst imbalance relative to
    /// the total sink magnitude (falling back to the largest branch
    /// current, then to 1 A, so a sink-free grid still gets a sane
    /// scale). Publishes `health.kcl_imbalance_rel` and counts
    /// `health.kcl_warn` when the imbalance clears the residual-warn
    /// threshold.
    ///
    /// Returns 0.0 before the first solve or when every node is pinned.
    #[must_use]
    pub fn kcl_audit(&self) -> f64 {
        if self.solves == 0 || self.n_unknowns == 0 {
            return 0.0;
        }
        let mut imbalance = vec![0.0f64; self.n_nodes];
        for (&(a, b), &i) in self.branches.iter().zip(&self.branch_i) {
            imbalance[a] += i; // outflow at the from-node
            imbalance[b] -= i; // inflow at the to-node
        }
        let mut worst = 0.0f64;
        for (node, &net_out) in imbalance.iter().enumerate() {
            if self.pinned_v[node].is_none() {
                let residual = net_out + self.sinks[node] + self.gmin * self.node_v[node];
                worst = worst.max(residual.abs());
            }
        }
        let mut scale: f64 = self.sinks.iter().map(|s| s.abs()).sum();
        if scale <= 0.0 {
            scale = self.branch_i.iter().fold(0.0f64, |m, i| m.max(i.abs()));
        }
        if scale <= 0.0 {
            scale = 1.0;
        }
        let rel = worst / scale;
        metrics::gauge(health::names::KCL_IMBALANCE_REL).set(rel);
        if rel.is_nan() || rel > self.residual_warn {
            metrics::counter(health::names::KCL_WARN).inc();
            recorder::record(
                "health.kcl_warn",
                format_args!(
                    "KCL imbalance {rel:.3e} across {} free nodes",
                    self.n_unknowns
                ),
            );
        }
        rel
    }

    /// The cached Hager/Higham 1-norm condition estimate of the reduced
    /// matrix, sampled on the first factorization of a pattern and every
    /// [`COND_RESAMPLE_INTERVAL`]-th refactor. `None` before the first
    /// solve or on the dense backend.
    #[must_use]
    pub fn condition_estimate(&self) -> Option<f64> {
        self.cond_est
    }

    /// Relative residual ‖Ax−b‖∞/‖b‖∞ from the most recent solve
    /// (`None` before the first, or when every node is pinned).
    #[must_use]
    pub fn last_residual_rel(&self) -> Option<f64> {
        self.last_residual
    }

    /// LU pivot growth of the current factorization (`None` before the
    /// first solve or on the dense/Cholesky backends — grid stamps are
    /// SPD, so this reports only under [`DcGridSolver::set_lu_only`] or
    /// after a Cholesky→LU fallback).
    #[must_use]
    pub fn pivot_growth(&self) -> Option<f64> {
        self.factorization
            .as_ref()
            .and_then(MnaFactorization::pivot_growth)
    }

    /// Overrides the relative-residual warn threshold
    /// ([`DEFAULT_RESIDUAL_WARN`] until set). Non-finite or non-positive
    /// values are ignored.
    pub fn set_residual_warn_threshold(&mut self, threshold: f64) {
        if threshold.is_finite() && threshold > 0.0 {
            self.residual_warn = threshold;
        }
    }

    /// Per-node voltages from the most recent solve (zeros before any).
    #[must_use]
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_v
    }

    /// Signed per-branch currents from the most recent solve, positive
    /// when flowing from the branch's first node to its second.
    #[must_use]
    pub fn branch_currents(&self) -> &[f64] {
        &self.branch_i
    }

    /// Number of free (non-pinned) nodes — the reduced system size.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.n_unknowns
    }

    /// Number of branches.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// How many solves have completed (the first pays a full
    /// factorization; the rest refactor).
    #[must_use]
    pub fn solve_count(&self) -> usize {
        self.solves
    }

    /// `true` when the reduced matrix uses the sparse backend.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.matrix.is_sparse()
    }

    /// Forces the general LU even though grid stamps are SPD — the
    /// benchmarking/comparison escape hatch. Must be called before the
    /// first [`DcGridSolver::solve`]; has no effect on an existing
    /// factorization.
    pub fn set_lu_only(&mut self, lu_only: bool) {
        self.lu_only = lu_only;
    }

    /// The solver backend that served the most recent factorization
    /// (`None` before the first solve). Grid stamps are SPD by
    /// construction, so this reports [`SolverPath::SparseCholesky`] on
    /// large grids unless [`DcGridSolver::set_lu_only`] was used.
    #[must_use]
    pub fn solver_path(&self) -> Option<SolverPath> {
        self.factorization.as_ref().map(MnaFactorization::path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// rows×cols mesh with unit spacing; returns (branches, index fn).
    fn mesh(rows: usize, cols: usize) -> Vec<(usize, usize)> {
        let mut branches = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    branches.push((r * cols + c, r * cols + c + 1));
                }
                if r + 1 < rows {
                    branches.push((r * cols + c, (r + 1) * cols + c));
                }
            }
        }
        branches
    }

    #[test]
    fn validation_rejects_degenerate_inputs() {
        assert!(DcGridSolver::new(0, vec![(0, 1)], &[(0, 1.0)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![], &[(0, 1.0)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(0, 1)], &[], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(0, 2)], &[(0, 1.0)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(1, 1)], &[(0, 1.0)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(0, 1)], &[(5, 1.0)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(0, 1)], &[(0, f64::NAN)], 0.0).is_err());
        assert!(DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0)], -1.0).is_err());
    }

    #[test]
    fn chain_divider_solves_exactly() {
        let mut s = DcGridSolver::new(3, vec![(0, 1), (1, 2)], &[(0, 2.0)], 0.0).unwrap();
        s.set_sink(2, 0.5);
        s.solve(&[1.0, 4.0]).unwrap(); // 1 Ω + 0.25 Ω in series
        let v = s.node_voltages();
        assert!((v[0] - 2.0).abs() < 1e-12);
        assert!((v[1] - 1.5).abs() < 1e-12);
        assert!((v[2] - 1.375).abs() < 1e-12);
        let i = s.branch_currents();
        assert!((i[0] - 0.5).abs() < 1e-12);
        assert!((i[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn branch_current_sign_follows_orientation() {
        // Pin the SECOND endpoint high: current flows b → a, so the
        // signed from→to current must be negative.
        let mut s = DcGridSolver::new(2, vec![(0, 1)], &[(1, 1.0)], 0.0).unwrap();
        s.set_sink(0, 1.0);
        s.solve(&[2.0]).unwrap();
        assert!((s.branch_currents()[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn restamped_solve_matches_fresh_solver() {
        // Solve a mesh twice with different non-uniform conductances via
        // restamp+refactor; a fresh solver on the second set must agree
        // to solver precision.
        let (rows, cols) = (6, 7);
        let branches = mesh(rows, cols);
        let nb = branches.len();
        let pinned = [(0usize, 1.8f64), (rows * cols - 1, 1.8)];
        let g1: Vec<f64> = (0..nb).map(|k| 1.0 + 0.1 * (k % 7) as f64).collect();
        let g2: Vec<f64> = (0..nb).map(|k| 2.0 + 0.05 * (k % 5) as f64).collect();

        let mut reused = DcGridSolver::new(rows * cols, branches.clone(), &pinned, 1e-12).unwrap();
        for node in 0..rows * cols {
            reused.set_sink(node, 1e-3);
        }
        reused.solve(&g1).unwrap();
        reused.solve(&g2).unwrap();
        assert_eq!(reused.solve_count(), 2);

        let mut fresh = DcGridSolver::new(rows * cols, branches, &pinned, 1e-12).unwrap();
        for node in 0..rows * cols {
            fresh.set_sink(node, 1e-3);
        }
        fresh.solve(&g2).unwrap();

        for (a, b) in reused.node_voltages().iter().zip(fresh.node_voltages()) {
            assert!((a - b).abs() < 1e-10, "restamped {a} vs fresh {b}");
        }
        for (a, b) in reused.branch_currents().iter().zip(fresh.branch_currents()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_backend_engages_on_large_grids() {
        let (rows, cols) = (15, 15); // 225 unknowns > SPARSE_THRESHOLD
        let branches = mesh(rows, cols);
        let nb = branches.len();
        let mut s = DcGridSolver::new(rows * cols, branches, &[(0, 1.0)], 1e-12).unwrap();
        assert!(s.is_sparse());
        for node in 0..rows * cols {
            s.set_sink(node, 1e-4);
        }
        s.solve(&vec![2.0; nb]).unwrap();
        let worst = s
            .node_voltages()
            .iter()
            .fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(worst < 1.0 && worst > 0.0, "droop exists but is bounded");
    }

    #[test]
    fn rejects_bad_conductances() {
        let mut s = DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0)], 0.0).unwrap();
        assert!(s.solve(&[]).is_err());
        assert!(s.solve(&[0.0]).is_err());
        assert!(s.solve(&[-1.0]).is_err());
        assert!(s.solve(&[f64::NAN]).is_err());
    }

    #[test]
    fn health_monitors_report_after_solve() {
        let (rows, cols) = (15, 15);
        let branches = mesh(rows, cols);
        let nb = branches.len();
        let mut s = DcGridSolver::new(rows * cols, branches, &[(0, 1.0)], 1e-9).unwrap();
        for node in 0..rows * cols {
            s.set_sink(node, 1e-4);
        }
        s.solve(&vec![2.0; nb]).unwrap();
        let res = s.last_residual_rel().expect("residual computed");
        assert!(
            res < 1e-10,
            "direct solve residual should be tiny, got {res}"
        );
        let kappa = s.condition_estimate().expect("sampled on first factor");
        assert!(kappa.is_finite() && kappa >= 1.0, "kappa = {kappa}");
        let kcl = s.kcl_audit();
        assert!(
            kcl < 1e-9,
            "KCL must balance on a converged grid, got {kcl}"
        );
    }

    #[test]
    fn condition_estimate_resamples_on_schedule() {
        // A chain long enough for the sparse backend (dense reports no
        // estimate): 131 nodes, node 0 pinned, sink at the far end.
        let n = 131;
        let branches: Vec<_> = (0..n - 1).map(|k| (k, k + 1)).collect();
        let mut s = DcGridSolver::new(n, branches, &[(0, 1.0)], 0.0).unwrap();
        assert!(s.is_sparse());
        s.set_sink(n - 1, 0.1);
        let uniform = vec![1.0; n - 1];
        let mut weak_tail = uniform.clone();
        weak_tail[n - 2] = 1e-9; // near-floating end node
        s.solve(&uniform).unwrap();
        let first = s.condition_estimate();
        assert!(first.is_some(), "sampled on the first factorization");
        // Refactors 1..COND_RESAMPLE_INTERVAL-1 keep the cached value
        // even as the matrix changes; the interval-th refresh sees the
        // new, much more spread conductances.
        for _ in 0..COND_RESAMPLE_INTERVAL - 1 {
            s.solve(&weak_tail).unwrap();
            assert_eq!(s.condition_estimate(), first, "cached between samples");
        }
        s.solve(&weak_tail).unwrap();
        let resampled = s.condition_estimate().unwrap();
        assert!(
            resampled > first.unwrap() * 100.0,
            "resample must see the spread: {resampled} vs {first:?}"
        );
    }

    #[test]
    fn residual_threshold_setter_ignores_garbage() {
        let mut s = DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0)], 0.0).unwrap();
        s.set_residual_warn_threshold(f64::NAN);
        s.set_residual_warn_threshold(-1.0);
        s.set_residual_warn_threshold(0.0);
        assert!((s.residual_warn - DEFAULT_RESIDUAL_WARN).abs() < 1e-30);
        s.set_residual_warn_threshold(1e-6);
        assert!((s.residual_warn - 1e-6).abs() < 1e-30);
    }

    #[test]
    fn kcl_audit_is_zero_before_solve_and_when_all_pinned() {
        let s = DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0)], 0.0).unwrap();
        assert_eq!(s.kcl_audit(), 0.0);
        let mut pinned = DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0), (1, 0.5)], 0.0).unwrap();
        pinned.solve(&[4.0]).unwrap();
        assert_eq!(pinned.kcl_audit(), 0.0);
    }

    #[test]
    fn all_nodes_pinned_is_trivial() {
        let mut s = DcGridSolver::new(2, vec![(0, 1)], &[(0, 1.0), (1, 0.5)], 0.0).unwrap();
        s.solve(&[4.0]).unwrap();
        assert_eq!(s.unknown_count(), 0);
        assert!((s.branch_currents()[0] - 2.0).abs() < 1e-12);
    }
}
