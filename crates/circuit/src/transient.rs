//! MNA assembly and transient simulation.
//!
//! Modified nodal analysis with one unknown per non-ground node plus one
//! branch current per voltage source. Capacitors use charge-conserving
//! companion models (backward Euler or trapezoidal); MOSFETs are
//! linearized and iterated with Newton's method (with a small `g_min` from
//! every node to ground for robustness).
//!
//! Two solve strategies, picked automatically:
//!
//! * **Linear circuits** (no MOSFETs) with a fixed timestep have a
//!   *constant* MNA matrix — only the right-hand side moves. The matrix
//!   is stamped and factored **once** and every timestep is a pair of
//!   triangular substitutions (no Newton loop, the step solve is exact).
//! * **Nonlinear circuits** re-stamp and Newton-iterate per step; the
//!   factorization object is retained across iterations so the sparse
//!   backend reuses its pivot order and elimination schedules
//!   ([`crate::solver::MnaFactorization::refactor`]).
//!
//! The matrix backend (dense vs sparse) follows the
//! [`crate::solver::SPARSE_THRESHOLD`] crossover on the unknown count.

use serde::{Deserialize, Serialize};

use crate::netlist::{mos_current, Circuit, Device, MosPolarity, NodeId};
use crate::solver::{MnaFactorization, MnaMatrix};
use crate::CircuitError;

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integration {
    /// Backward Euler — L-stable, first order, slightly lossy.
    BackwardEuler,
    /// Trapezoidal — second order, the SPICE default.
    Trapezoidal,
}

/// Options for [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientOptions {
    /// Fixed time step; when `None`, `t_stop/2000` is used.
    pub dt: Option<f64>,
    /// Integration method (default trapezoidal).
    pub integration: Integration,
    /// Newton convergence tolerance on node voltages (V).
    pub vtol: f64,
    /// Maximum Newton iterations per step.
    pub max_newton: usize,
    /// Leakage conductance from every node to ground (S).
    pub gmin: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            dt: None,
            integration: Integration::Trapezoidal,
            vtol: 1e-6,
            max_newton: 100,
            gmin: 1e-12,
        }
    }
}

/// The result of a transient run: node voltages over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Sample times, starting at 0.
    pub times: Vec<f64>,
    /// `voltages[step][node-1]` — voltages of non-ground nodes.
    voltages: Vec<Vec<f64>>,
    node_count: usize,
}

impl TransientResult {
    /// The voltage waveform of a node (ground returns all zeros).
    ///
    /// # Panics
    ///
    /// Panics for a node id that was never allocated.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Vec<f64> {
        if node == Circuit::GROUND {
            return vec![0.0; self.times.len()];
        }
        assert!(node <= self.node_count, "unknown node {node}");
        self.voltages.iter().map(|v| v[node - 1]).collect()
    }

    /// Voltage of `node` at step `k`.
    #[must_use]
    pub fn voltage_at(&self, node: NodeId, k: usize) -> f64 {
        if node == Circuit::GROUND {
            0.0
        } else {
            self.voltages[k][node - 1]
        }
    }

    /// The current through a resistor device (positive `a`→`b`) at every
    /// step.
    ///
    /// # Panics
    ///
    /// Panics when `device` is not a resistor of this circuit.
    #[must_use]
    pub fn resistor_current(&self, circuit: &Circuit, device: usize) -> Vec<f64> {
        match circuit.devices()[device] {
            Device::Resistor { a, b, ohms } => (0..self.times.len())
                .map(|k| (self.voltage_at(a, k) - self.voltage_at(b, k)) / ohms)
                .collect(),
            _ => panic!("device {device} is not a resistor"),
        }
    }

    /// The drain current (d→s convention) of a MOSFET device at every
    /// step, re-evaluated from the solved voltages.
    ///
    /// # Panics
    ///
    /// Panics when `device` is not a MOSFET of this circuit.
    #[must_use]
    pub fn mosfet_current(&self, circuit: &Circuit, device: usize) -> Vec<f64> {
        match circuit.devices()[device] {
            Device::Mosfet {
                d,
                g,
                s,
                params,
                polarity,
            } => (0..self.times.len())
                .map(|k| {
                    let (id, _, _) = mos_current(
                        params,
                        polarity,
                        self.voltage_at(d, k),
                        self.voltage_at(g, k),
                        self.voltage_at(s, k),
                    );
                    match polarity {
                        MosPolarity::Nmos => id,
                        MosPolarity::Pmos => -id,
                    }
                })
                .collect(),
            _ => panic!("device {device} is not a MOSFET"),
        }
    }
}

struct System {
    n_nodes: usize,
    n_branches: usize,
    g: MnaMatrix,
    rhs: Vec<f64>,
}

impl System {
    fn new(n_nodes: usize, n_branches: usize) -> Self {
        let n = n_nodes + n_branches;
        Self {
            n_nodes,
            n_branches,
            g: MnaMatrix::auto(n),
            rhs: vec![0.0; n],
        }
    }

    fn size(&self) -> usize {
        self.n_nodes + self.n_branches
    }

    fn clear(&mut self) {
        self.g.clear();
        self.rhs.fill(0.0);
    }

    fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        if a > 0 {
            self.g.add(a - 1, a - 1, g);
        }
        if b > 0 {
            self.g.add(b - 1, b - 1, g);
        }
        if a > 0 && b > 0 {
            self.g.add(a - 1, b - 1, -g);
            self.g.add(b - 1, a - 1, -g);
        }
    }

    /// Stamps a current `i` flowing out of node `a` into node `b`.
    fn stamp_current(&mut self, a: NodeId, b: NodeId, i: f64) {
        if a > 0 {
            self.rhs[a - 1] -= i;
        }
        if b > 0 {
            self.rhs[b - 1] += i;
        }
    }
}

/// Everything fixed for the whole run: the circuit, branch mapping, and
/// integration parameters.
struct RunContext<'a> {
    circuit: &'a Circuit,
    branch_of: Vec<Option<usize>>,
    dt: f64,
    integration: Integration,
    gmin: f64,
}

/// Stamps the **time-invariant matrix entries**: gmin leaks, resistor and
/// capacitor-companion conductances, and voltage-source incidence. For a
/// circuit without MOSFETs this is the entire matrix.
fn stamp_static_matrix(sys: &mut System, ctx: &RunContext<'_>) {
    for n in 1..=sys.n_nodes {
        sys.stamp_conductance(n, Circuit::GROUND, ctx.gmin);
    }
    for (di, dev) in ctx.circuit.devices().iter().enumerate() {
        match dev {
            Device::Resistor { a, b, ohms } => {
                sys.stamp_conductance(*a, *b, 1.0 / ohms);
            }
            Device::Capacitor { a, b, farads } => {
                let geq = match ctx.integration {
                    Integration::BackwardEuler => farads / ctx.dt,
                    Integration::Trapezoidal => 2.0 * farads / ctx.dt,
                };
                sys.stamp_conductance(*a, *b, geq);
            }
            Device::VoltageSource { plus, minus, .. } => {
                let br = sys.n_nodes + ctx.branch_of[di].expect("voltage source has a branch");
                if *plus > 0 {
                    sys.g.add(plus - 1, br, 1.0);
                    sys.g.add(br, plus - 1, 1.0);
                }
                if *minus > 0 {
                    sys.g.add(minus - 1, br, -1.0);
                    sys.g.add(br, minus - 1, -1.0);
                }
            }
            Device::CurrentSource { .. } | Device::Mosfet { .. } => {}
        }
    }
}

/// Rebuilds the **right-hand side** for time `t`: capacitor companion
/// currents (from the previous step's state), source waveform values.
/// Touches no matrix entries.
fn stamp_rhs(sys: &mut System, ctx: &RunContext<'_>, t: f64, v_prev: &[f64], cap_i_prev: &[f64]) {
    sys.rhs.fill(0.0);
    let mut cap_idx = 0;
    for (di, dev) in ctx.circuit.devices().iter().enumerate() {
        match dev {
            Device::Capacitor { a, b, farads } => {
                let v_c_prev = node_v(v_prev, *a) - node_v(v_prev, *b);
                match ctx.integration {
                    Integration::BackwardEuler => {
                        let geq = farads / ctx.dt;
                        // i = geq·(v − v_prev): equivalent source
                        sys.stamp_current(*b, *a, geq * v_c_prev);
                    }
                    Integration::Trapezoidal => {
                        let geq = 2.0 * farads / ctx.dt;
                        sys.stamp_current(*b, *a, geq * v_c_prev + cap_i_prev[cap_idx]);
                    }
                }
                cap_idx += 1;
            }
            Device::VoltageSource { waveform, .. } => {
                let br = sys.n_nodes + ctx.branch_of[di].expect("voltage source has a branch");
                sys.rhs[br] = waveform.at(t);
            }
            Device::CurrentSource {
                from,
                into,
                waveform,
            } => {
                sys.stamp_current(*from, *into, waveform.at(t));
            }
            Device::Resistor { .. } | Device::Mosfet { .. } => {}
        }
    }
}

/// Stamps the linearized MOSFET companion models around the operating
/// point `v` (matrix **and** rhs) — the only stamps that change between
/// Newton iterations.
fn stamp_mosfets(sys: &mut System, ctx: &RunContext<'_>, v: &[f64]) {
    for dev in ctx.circuit.devices() {
        if let Device::Mosfet {
            d,
            g,
            s,
            params,
            polarity,
        } = dev
        {
            let vd = node_v(v, *d);
            let vg = node_v(v, *g);
            let vs = node_v(v, *s);
            let (id_mapped, gm, gds) = mos_current(*params, *polarity, vd, vg, vs);
            // i_ds: channel current flowing d → s.
            let i_ds = match polarity {
                MosPolarity::Nmos => id_mapped,
                MosPolarity::Pmos => -id_mapped,
            };
            // Uniform partials (see netlist::mos_current docs):
            // ∂i_ds/∂vg = gm, ∂i_ds/∂vd = gds, ∂i_ds/∂vs = −(gm+gds)
            let stamp = |sys: &mut System, row: NodeId, sign: f64| {
                if row == 0 {
                    return;
                }
                let r = row - 1;
                if *g > 0 {
                    sys.g.add(r, g - 1, sign * gm);
                }
                if *d > 0 {
                    sys.g.add(r, d - 1, sign * gds);
                }
                if *s > 0 {
                    sys.g.add(r, s - 1, -sign * (gm + gds));
                }
                let ieq = i_ds - gm * vg - gds * vd + (gm + gds) * vs;
                sys.rhs[r] -= sign * ieq;
            };
            stamp(sys, *d, 1.0);
            stamp(sys, *s, -1.0);
        }
    }
}

/// Runs a fixed-step transient simulation from an all-zero initial state.
///
/// Startup transients decay naturally; callers analyzing periodic steady
/// state should simulate ≥ 2 periods and discard the first (see
/// [`crate::repeater`]).
///
/// # Errors
///
/// * [`CircuitError::InvalidOptions`] for non-positive `t_stop`/`dt`.
/// * [`CircuitError::Singular`] for a structurally defective circuit.
/// * [`CircuitError::NewtonDiverged`] when the nonlinear iteration fails.
pub fn simulate(
    circuit: &Circuit,
    t_stop: f64,
    options: TransientOptions,
) -> Result<TransientResult, CircuitError> {
    if !(t_stop > 0.0) {
        return Err(CircuitError::InvalidOptions {
            message: format!("t_stop must be positive, got {t_stop}"),
        });
    }
    let dt = options.dt.unwrap_or(t_stop / 2000.0);
    if !(dt > 0.0) || dt > t_stop {
        return Err(CircuitError::InvalidOptions {
            message: format!("dt must be in (0, t_stop], got {dt}"),
        });
    }

    let n_nodes = circuit.node_count();
    let branch_of: Vec<Option<usize>> = {
        let mut next = 0;
        circuit
            .devices()
            .iter()
            .map(|d| {
                if matches!(d, Device::VoltageSource { .. }) {
                    let b = next;
                    next += 1;
                    Some(b)
                } else {
                    None
                }
            })
            .collect()
    };
    let n_branches = branch_of.iter().flatten().count();
    let mut sys = System::new(n_nodes, n_branches);
    let ctx = RunContext {
        circuit,
        branch_of,
        dt,
        integration: options.integration,
        gmin: options.gmin,
    };
    let is_linear = !circuit
        .devices()
        .iter()
        .any(|d| matches!(d, Device::Mosfet { .. }));

    // State: node voltages + capacitor currents (for trapezoidal).
    let mut v = vec![0.0_f64; sys.size()];
    let cap_count = circuit
        .devices()
        .iter()
        .filter(|d| matches!(d, Device::Capacitor { .. }))
        .count();
    let mut cap_i_prev = vec![0.0_f64; cap_count];

    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let steps = (t_stop / dt).round().max(1.0) as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    times.push(0.0);
    voltages.push(v[..n_nodes].to_vec());

    // Linear circuits: the matrix never changes ⇒ stamp + factor ONCE.
    let static_factors: Option<MnaFactorization> = if is_linear {
        stamp_static_matrix(&mut sys, &ctx);
        Some(sys.g.factor()?)
    } else {
        None
    };
    // Nonlinear circuits: the factorization object is kept across Newton
    // iterations so the sparse backend can refactor without symbolic work.
    let mut newton_factors: Option<MnaFactorization> = None;

    let mut v_prev = v.clone();
    let mut new_v: Vec<f64> = Vec::with_capacity(sys.size());
    for step in 1..=steps {
        #[allow(clippy::cast_precision_loss)]
        let t = dt * step as f64;
        v_prev.clone_from(&v);

        if let Some(factors) = &static_factors {
            // Linear fast path: new rhs, two triangular substitutions.
            stamp_rhs(&mut sys, &ctx, t, &v_prev, &cap_i_prev);
            factors.solve_into(&sys.rhs, &mut new_v);
            std::mem::swap(&mut v, &mut new_v);
        } else {
            // Newton loop.
            let mut converged = false;
            for _ in 0..options.max_newton {
                sys.clear();
                stamp_static_matrix(&mut sys, &ctx);
                stamp_rhs(&mut sys, &ctx, t, &v_prev, &cap_i_prev);
                stamp_mosfets(&mut sys, &ctx, &v);
                match &mut newton_factors {
                    Some(f) => f.refactor(&sys.g)?,
                    slot @ None => *slot = Some(sys.g.factor()?),
                }
                newton_factors
                    .as_ref()
                    .expect("factors were just computed")
                    .solve_into(&sys.rhs, &mut new_v);
                let mut max_dv = 0.0_f64;
                for (old, new) in v[..n_nodes].iter().zip(&new_v[..n_nodes]) {
                    max_dv = max_dv.max((old - new).abs());
                }
                // Damped update to help large swings converge.
                let limit = 1.0; // volts per Newton step
                for (slot, new) in v.iter_mut().zip(&new_v) {
                    let dv = new - *slot;
                    *slot += dv.clamp(-limit, limit);
                }
                if max_dv < options.vtol {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(CircuitError::NewtonDiverged {
                    at_seconds: t,
                    iterations: options.max_newton,
                });
            }
        }

        // Update trapezoidal capacitor-current state.
        if options.integration == Integration::Trapezoidal {
            let mut cap_idx = 0;
            for dev in circuit.devices() {
                if let Device::Capacitor { a, b, farads } = dev {
                    let geq = 2.0 * farads / dt;
                    let v_now = node_v(&v, *a) - node_v(&v, *b);
                    let v_old = node_v(&v_prev, *a) - node_v(&v_prev, *b);
                    cap_i_prev[cap_idx] = geq * (v_now - v_old) - cap_i_prev[cap_idx];
                    cap_idx += 1;
                }
            }
        }
        times.push(t);
        voltages.push(v[..n_nodes].to_vec());
    }

    Ok(TransientResult {
        times,
        voltages,
        node_count: n_nodes,
    })
}

fn node_v(v: &[f64], n: NodeId) -> f64 {
    if n == 0 {
        0.0
    } else {
        v[n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosParams;
    use crate::sources::SourceWaveform;

    fn rc_circuit() -> (Circuit, NodeId, NodeId, usize) {
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
        let r = c.resistor(vin, vout, 1.0e3);
        c.capacitor(vout, Circuit::GROUND, 1.0e-9);
        (c, vin, vout, r)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (c, _, vout, _) = rc_circuit();
        let tau = 1.0e-6;
        let result = simulate(
            &c,
            5.0 * tau,
            TransientOptions {
                dt: Some(tau / 200.0),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let dt = result.times[1] - result.times[0];
        for (t, v) in result.times.iter().zip(result.voltage(vout)) {
            // Skip the first couple of steps: the trapezoidal rule smears a
            // t = 0 source discontinuity over one step.
            if *t < 3.0 * dt {
                continue;
            }
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 3e-3,
                "t = {t:.2e}: {v} vs {expected}"
            );
        }
    }

    #[test]
    fn backward_euler_also_converges_to_rail() {
        let (c, _, vout, _) = rc_circuit();
        let result = simulate(
            &c,
            1.0e-5,
            TransientOptions {
                dt: Some(5.0e-9),
                integration: Integration::BackwardEuler,
                ..TransientOptions::default()
            },
        )
        .unwrap();
        assert!((result.voltage(vout).last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn resistor_current_decays() {
        let (c, _, _, r) = rc_circuit();
        let result = simulate(&c, 1.0e-5, TransientOptions::default()).unwrap();
        let i = result.resistor_current(&c, r);
        // initial surge ≈ V/R, final ≈ 0
        assert!(i[1] > 0.8e-3);
        assert!(i.last().unwrap().abs() < 1e-5);
    }

    #[test]
    fn voltage_divider_dc() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.voltage_source(a, Circuit::GROUND, SourceWaveform::dc(3.0));
        c.resistor(a, b, 1.0e3);
        c.resistor(b, Circuit::GROUND, 2.0e3);
        let result = simulate(&c, 1.0e-6, TransientOptions::default()).unwrap();
        assert!((result.voltage_at(b, 10) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node();
        c.current_source(Circuit::GROUND, a, SourceWaveform::dc(1.0e-3));
        c.resistor(a, Circuit::GROUND, 2.0e3);
        let result = simulate(&c, 1.0e-6, TransientOptions::default()).unwrap();
        assert!((result.voltage_at(a, 5) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        let _unused = b;
        c.voltage_source(a, Circuit::GROUND, SourceWaveform::dc(1.0));
        // node b floats entirely — but gmin rescues it, so to force a true
        // singularity we need a voltage-source loop:
        let mut c2 = Circuit::new();
        let x = c2.node();
        c2.voltage_source(x, Circuit::GROUND, SourceWaveform::dc(1.0));
        c2.voltage_source(x, Circuit::GROUND, SourceWaveform::dc(2.0));
        assert!(matches!(
            simulate(&c2, 1.0e-6, TransientOptions::default()),
            Err(CircuitError::Singular { .. })
        ));
        // the gmin-rescued circuit still solves:
        assert!(simulate(&c, 1.0e-6, TransientOptions::default()).is_ok());
    }

    #[test]
    fn invalid_options_rejected() {
        let (c, _, _, _) = rc_circuit();
        assert!(simulate(&c, 0.0, TransientOptions::default()).is_err());
        assert!(simulate(
            &c,
            1.0,
            TransientOptions {
                dt: Some(2.0),
                ..TransientOptions::default()
            }
        )
        .is_err());
    }

    fn inverter_circuit(vdd: f64) -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let vdd_n = c.node();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vdd_n, Circuit::GROUND, SourceWaveform::dc(vdd));
        c.voltage_source(
            vin,
            Circuit::GROUND,
            SourceWaveform::pulse(0.0, vdd, 1.0e-9, 0.1e-9, 0.1e-9, 4.0e-9, 10.0e-9),
        );
        let nmos = MosParams::from_effective_resistance(10.0e3, vdd, 0.5);
        c.inverter(vin, vout, vdd_n, nmos, 2.0);
        c.capacitor(vout, Circuit::GROUND, 20.0e-15);
        (c, vin, vout)
    }

    #[test]
    fn cmos_inverter_inverts() {
        let vdd = 2.5;
        let (c, vin, vout) = inverter_circuit(vdd);
        let result = simulate(
            &c,
            10.0e-9,
            TransientOptions {
                dt: Some(5.0e-12),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        // Before the input rises: output should be pulled high.
        let k_pre = result.times.iter().position(|&t| t > 0.9e-9).unwrap();
        assert!(
            result.voltage_at(vout, k_pre) > 0.9 * vdd,
            "output high before input edge: {}",
            result.voltage_at(vout, k_pre)
        );
        // While input is high: output low.
        let k_mid = result.times.iter().position(|&t| t > 3.0e-9).unwrap();
        assert!(result.voltage_at(vin, k_mid) > 0.9 * vdd);
        assert!(
            result.voltage_at(vout, k_mid) < 0.1 * vdd,
            "output low while input high: {}",
            result.voltage_at(vout, k_mid)
        );
    }

    #[test]
    fn inverter_output_charges_through_pmos() {
        let vdd = 2.5;
        let (c, _, vout) = inverter_circuit(vdd);
        // PMOS is device index 3 (vsrc, vsrc, nmos, pmos)
        let result = simulate(
            &c,
            10.0e-9,
            TransientOptions {
                dt: Some(5.0e-12),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let ip = result.mosfet_current(&c, 3);
        // PMOS current charges the load after the input falls (t > 5.2 ns):
        let k = result.times.iter().position(|&t| t > 5.25e-9).unwrap();
        assert!(
            ip[k].abs() > 1e-5,
            "PMOS must conduct during the output rise, i = {}",
            ip[k]
        );
        let _ = vout;
    }

    #[test]
    fn energy_conservation_rc_discharge() {
        // Charge a cap through a resistor and verify dissipated + stored
        // energy ≈ delivered energy (trapezoidal should be ~exact).
        let (c, vin, vout, r) = {
            let (c, a, b, r) = rc_circuit();
            (c, a, b, r)
        };
        let result = simulate(
            &c,
            2.0e-5,
            TransientOptions {
                dt: Some(1.0e-8),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let i = result.resistor_current(&c, r);
        let dt = result.times[1] - result.times[0];
        let mut delivered = 0.0;
        let mut dissipated = 0.0;
        for k in 1..i.len() {
            let im = 0.5 * (i[k] + i[k - 1]);
            delivered += result.voltage_at(vin, k) * im * dt;
            dissipated += im * im * 1.0e3 * dt;
        }
        let v_end = *result.voltage(vout).last().unwrap();
        let stored = 0.5 * 1.0e-9 * v_end * v_end;
        assert!(
            (delivered - dissipated - stored).abs() / delivered < 0.01,
            "delivered {delivered:.3e} vs dissipated {dissipated:.3e} + stored {stored:.3e}"
        );
    }

    #[test]
    fn linear_fast_path_matches_newton_path() {
        // The same linear circuit forced down the Newton path (by adding a
        // MOSFET whose gate/drain/source sit at ground, contributing ~0
        // current) must produce the same waveform within vtol.
        let (c, _, vout, _) = rc_circuit();
        let mut c2 = c.clone();
        let off = MosParams::from_effective_resistance(1.0e9, 1.0, 0.4);
        c2.mosfet(
            Circuit::GROUND,
            Circuit::GROUND,
            Circuit::GROUND,
            off,
            MosPolarity::Nmos,
        );
        let opts = TransientOptions {
            dt: Some(5.0e-8),
            ..TransientOptions::default()
        };
        let fast = simulate(&c, 1.0e-5, opts).unwrap();
        let newton = simulate(&c2, 1.0e-5, opts).unwrap();
        for (a, b) in fast.voltage(vout).iter().zip(newton.voltage(vout)) {
            assert!((a - b).abs() < 1e-5, "fast {a} vs newton {b}");
        }
    }
}
