//! Power-distribution-grid analysis: IR drop and electromigration
//! screening of supply straps.
//!
//! The paper's Tables 2–4 carry a dedicated "Power Lines (r = 1.0)"
//! block because supply straps carry unipolar, near-DC current — the
//! worst case for electromigration at a given RMS level. This module
//! builds the standard mesh model of a power grid (orthogonal straps,
//! ideal pads, per-node sink currents), solves it, and reports the two
//! quantities a sign-off flow needs: the worst IR drop and the worst
//! strap current *density* to compare against a self-consistent design
//! rule.
//!
//! ```
//! use hotwire_circuit::power_grid::{PowerGrid, PowerGridSpec};
//! use hotwire_units::{Area, Current, Resistance, Voltage};
//!
//! let spec = PowerGridSpec {
//!     rows: 5,
//!     cols: 5,
//!     segment_resistance: Resistance::new(0.5),
//!     strap_cross_section: Area::from_um2(1.44),
//!     vdd: Voltage::new(2.5),
//!     sink_per_node: Current::from_milliamps(0.4),
//!     pads: vec![(0, 0), (0, 4), (4, 0), (4, 4)],
//! };
//! let grid = PowerGrid::build(&spec)?;
//! let report = grid.analyze()?;
//! assert!(report.worst_ir_drop.value() < 0.1 * 2.5, "healthy grid");
//! # Ok::<(), hotwire_circuit::CircuitError>(())
//! ```

use hotwire_units::{Area, Current, CurrentDensity, Resistance, Voltage};
use serde::{Deserialize, Serialize};

use crate::grid_dc::DcGridSolver;
use crate::netlist::{Circuit, NodeId};
use crate::sources::SourceWaveform;
use crate::transient::TransientOptions;
use crate::CircuitError;

/// Specification of a rectangular power grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGridSpec {
    /// Number of strap intersections vertically.
    pub rows: usize,
    /// Number of strap intersections horizontally.
    pub cols: usize,
    /// Resistance of one strap segment between adjacent intersections.
    pub segment_resistance: Resistance,
    /// Metal cross-section of a strap (for current-density reporting).
    pub strap_cross_section: Area,
    /// Supply voltage at the pads.
    pub vdd: Voltage,
    /// DC current drawn by the logic under each intersection.
    pub sink_per_node: Current,
    /// `(row, col)` intersections bonded to ideal supply pads.
    pub pads: Vec<(usize, usize)>,
}

/// One strap segment's solved operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentLoad {
    /// Segment tail intersection.
    pub from: (usize, usize),
    /// Segment head intersection.
    pub to: (usize, usize),
    /// Magnitude of the DC current through the segment.
    pub current: Current,
    /// The corresponding (average = RMS = peak, r = 1) current density.
    pub density: CurrentDensity,
}

/// The analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGridReport {
    /// Largest supply droop anywhere on the grid.
    pub worst_ir_drop: Voltage,
    /// The intersection with the largest droop.
    pub worst_node: (usize, usize),
    /// Every segment's load, unsorted.
    pub segments: Vec<SegmentLoad>,
}

impl PowerGridReport {
    /// The most stressed segment (by current density).
    ///
    /// # Panics
    ///
    /// Panics if the grid had no segments (1×1 grids are rejected at
    /// build time).
    #[must_use]
    pub fn worst_segment(&self) -> SegmentLoad {
        *self
            .segments
            .iter()
            .max_by(|a, b| a.density.value().total_cmp(&b.density.value()))
            .expect("grids have at least one segment")
    }

    /// `true` when every segment's density stays below the given design
    /// rule (a "Power Lines (r = 1.0)" entry from the self-consistent
    /// tables).
    #[must_use]
    pub fn meets_rule(&self, j_limit: CurrentDensity) -> bool {
        self.segments.iter().all(|s| s.density <= j_limit)
    }

    /// The segments violating a design rule, most stressed first.
    #[must_use]
    pub fn violations(&self, j_limit: CurrentDensity) -> Vec<SegmentLoad> {
        let mut v: Vec<SegmentLoad> = self
            .segments
            .iter()
            .copied()
            .filter(|s| s.density > j_limit)
            .collect();
        v.sort_by(|a, b| b.density.value().total_cmp(&a.density.value()));
        v
    }
}

/// A strap segment's bookkeeping: device index plus its two end
/// intersections.
type SegmentRef = (usize, (usize, usize), (usize, usize));

/// A built power grid ready for analysis.
#[derive(Debug, Clone)]
pub struct PowerGrid {
    spec: PowerGridSpec,
    circuit: Circuit,
    nodes: Vec<NodeId>,
    segments: Vec<SegmentRef>,
}

impl PowerGrid {
    /// Builds the mesh circuit for a spec.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] for degenerate dimensions,
    /// out-of-range pads, or non-positive electrical values.
    pub fn build(spec: &PowerGridSpec) -> Result<Self, CircuitError> {
        if spec.rows < 2 || spec.cols < 2 {
            return Err(CircuitError::InvalidDevice {
                message: "power grid needs at least 2×2 intersections".to_owned(),
            });
        }
        if spec.pads.is_empty() {
            return Err(CircuitError::InvalidDevice {
                message: "power grid needs at least one pad".to_owned(),
            });
        }
        for &(r, c) in &spec.pads {
            if r >= spec.rows || c >= spec.cols {
                return Err(CircuitError::InvalidDevice {
                    message: format!(
                        "pad ({r}, {c}) outside the {}×{} grid",
                        spec.rows, spec.cols
                    ),
                });
            }
        }
        if !(spec.strap_cross_section.value() > 0.0) {
            return Err(CircuitError::InvalidDevice {
                message: "strap cross-section must be positive".to_owned(),
            });
        }
        let mut circuit = Circuit::new();
        let nodes: Vec<NodeId> = (0..spec.rows * spec.cols).map(|_| circuit.node()).collect();
        let at = |r: usize, c: usize| nodes[r * spec.cols + c];

        let mut segments = Vec::new();
        for r in 0..spec.rows {
            for c in 0..spec.cols {
                if c + 1 < spec.cols {
                    let d = circuit.try_resistor(
                        at(r, c),
                        at(r, c + 1),
                        spec.segment_resistance.value(),
                    )?;
                    segments.push((d, (r, c), (r, c + 1)));
                }
                if r + 1 < spec.rows {
                    let d = circuit.try_resistor(
                        at(r, c),
                        at(r + 1, c),
                        spec.segment_resistance.value(),
                    )?;
                    segments.push((d, (r, c), (r + 1, c)));
                }
                // logic sink under the intersection
                circuit.current_source(
                    at(r, c),
                    Circuit::GROUND,
                    SourceWaveform::dc(spec.sink_per_node.value()),
                );
            }
        }
        for &(r, c) in &spec.pads {
            circuit.voltage_source(
                at(r, c),
                Circuit::GROUND,
                SourceWaveform::dc(spec.vdd.value()),
            );
        }
        Ok(Self {
            spec: spec.clone(),
            circuit,
            nodes,
            segments,
        })
    }

    /// The underlying circuit (e.g. for extra probing).
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The netlist node backing intersection `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the intersection is outside the grid.
    #[must_use]
    pub fn node_id(&self, row: usize, col: usize) -> NodeId {
        assert!(row < self.spec.rows && col < self.spec.cols);
        self.nodes[row * self.spec.cols + col]
    }

    /// Builds a [`DcGridSolver`] over this grid's topology: pads pinned
    /// at `vdd`, every intersection's sink installed, segment branches
    /// in segment order. This is the restampable surface the coupled
    /// electro-thermal loop iterates on — per-segment conductances can
    /// differ and change between solves.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] if the topology is
    /// degenerate (cannot happen for a grid that passed
    /// [`PowerGrid::build`]).
    pub fn dc_solver(&self) -> Result<DcGridSolver, CircuitError> {
        let cols = self.spec.cols;
        let n_cells = self.spec.rows * cols;
        let branches: Vec<(usize, usize)> = self
            .segments
            .iter()
            .map(|&(_, from, to)| (from.0 * cols + from.1, to.0 * cols + to.1))
            .collect();
        let pinned: Vec<(usize, f64)> = self
            .spec
            .pads
            .iter()
            .map(|&(r, c)| (r * cols + c, self.spec.vdd.value()))
            .collect();
        // Same node-to-ground leak the transient path uses, so islands
        // droop identically instead of going singular.
        let mut solver =
            DcGridSolver::new(n_cells, branches, &pinned, TransientOptions::default().gmin)?;
        for cell in 0..n_cells {
            solver.set_sink(cell, self.spec.sink_per_node.value());
        }
        Ok(solver)
    }

    /// Solves the DC operating point and reports droop and per-segment
    /// densities.
    ///
    /// The solve is a **direct DC formulation**: pad intersections are
    /// Dirichlet nodes held at `vdd` and eliminated from the system, so
    /// only the free intersections are unknowns — no voltage-source
    /// branches and no timestepping. The reduced conductance matrix goes
    /// through the dense/sparse `MnaMatrix::auto` crossover (via
    /// [`DcGridSolver`]), so wide grids use the sparse LU.
    ///
    /// # Errors
    ///
    /// Propagates solver failures (a grid with unreachable islands would
    /// be singular only without `g_min`; with it, islands simply droop to
    /// zero and show up as massive IR drop).
    pub fn analyze(&self) -> Result<PowerGridReport, CircuitError> {
        let g = 1.0 / self.spec.segment_resistance.value();
        let mut solver = self.dc_solver()?;
        solver.solve(&vec![g; self.segments.len()])?;
        Ok(self.report_from_voltages(solver.node_voltages()))
    }

    /// The seed's DC solve — one short transient step over the full MNA
    /// system (voltage-source branches included). Superseded by the
    /// direct formulation in [`PowerGrid::analyze`]; kept compiled only
    /// for tests and for benchmark cross-checks behind the
    /// `bench-baselines` feature, so the public API has one blessed
    /// analyze path.
    ///
    /// # Errors
    ///
    /// Propagates solver failures exactly as [`PowerGrid::analyze`] does.
    #[cfg(any(test, feature = "bench-baselines"))]
    #[doc(hidden)]
    pub fn analyze_via_transient(&self) -> Result<PowerGridReport, CircuitError> {
        // Purely resistive: one short "transient" step is the DC solve.
        let result = crate::transient::simulate(
            &self.circuit,
            1.0e-9,
            TransientOptions {
                dt: Some(1.0e-9),
                ..TransientOptions::default()
            },
        )?;
        let last = result.times.len() - 1;
        let mut node_v = vec![0.0; self.nodes.len()];
        for (cell, &node) in self.nodes.iter().enumerate() {
            node_v[cell] = result.voltage_at(node, last);
        }
        Ok(self.report_from_voltages(&node_v))
    }

    /// Builds the report from per-intersection voltages (row-major), with
    /// every buffer hoisted — no per-segment allocation.
    fn report_from_voltages(&self, node_v: &[f64]) -> PowerGridReport {
        let cols = self.spec.cols;
        let g = 1.0 / self.spec.segment_resistance.value();
        let mut worst_drop = 0.0_f64;
        let mut worst_node = (0, 0);
        for r in 0..self.spec.rows {
            for c in 0..cols {
                let drop = self.spec.vdd.value() - node_v[r * cols + c];
                if drop > worst_drop {
                    worst_drop = drop;
                    worst_node = (r, c);
                }
            }
        }
        let mut segments = Vec::with_capacity(self.segments.len());
        for &(_, from, to) in &self.segments {
            let i = ((node_v[from.0 * cols + from.1] - node_v[to.0 * cols + to.1]) * g).abs();
            segments.push(SegmentLoad {
                from,
                to,
                current: Current::new(i),
                density: Current::new(i) / self.spec.strap_cross_section,
            });
        }
        PowerGridReport {
            worst_ir_drop: Voltage::new(worst_drop),
            worst_node,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PowerGridSpec {
        PowerGridSpec {
            rows: 5,
            cols: 5,
            segment_resistance: Resistance::new(0.5),
            strap_cross_section: Area::from_um2(1.44),
            vdd: Voltage::new(2.5),
            sink_per_node: Current::from_milliamps(0.4),
            pads: vec![(0, 0), (0, 4), (4, 0), (4, 4)],
        }
    }

    #[test]
    fn build_validation() {
        let mut s = spec();
        s.rows = 1;
        assert!(PowerGrid::build(&s).is_err());
        let mut s = spec();
        s.pads.clear();
        assert!(PowerGrid::build(&s).is_err());
        let mut s = spec();
        s.pads = vec![(9, 9)];
        assert!(PowerGrid::build(&s).is_err());
        let mut s = spec();
        s.strap_cross_section = Area::ZERO;
        assert!(PowerGrid::build(&s).is_err());
    }

    #[test]
    fn symmetric_grid_drops_worst_in_the_center() {
        let grid = PowerGrid::build(&spec()).unwrap();
        let report = grid.analyze().unwrap();
        assert_eq!(report.worst_node, (2, 2), "four corner pads ⇒ center droop");
        assert!(report.worst_ir_drop.value() > 0.0);
        // total sink: 25 × 0.4 mA = 10 mA across ~Ω-scale paths ⇒ mV drops
        assert!(report.worst_ir_drop.value() < 0.05);
    }

    #[test]
    fn drop_scales_linearly_with_load() {
        let g1 = PowerGrid::build(&spec()).unwrap().analyze().unwrap();
        let mut s = spec();
        s.sink_per_node = Current::from_milliamps(0.8);
        let g2 = PowerGrid::build(&s).unwrap().analyze().unwrap();
        let ratio = g2.worst_ir_drop.value() / g1.worst_ir_drop.value();
        assert!(
            (ratio - 2.0).abs() < 1e-6,
            "linear network: ratio = {ratio}"
        );
    }

    #[test]
    fn fewer_pads_is_strictly_worse() {
        let all = PowerGrid::build(&spec()).unwrap().analyze().unwrap();
        let mut s = spec();
        s.pads = vec![(0, 0)];
        let one = PowerGrid::build(&s).unwrap().analyze().unwrap();
        assert!(one.worst_ir_drop > all.worst_ir_drop * 2.0);
        assert!(one.worst_segment().density > all.worst_segment().density);
        // With a single corner pad, the hottest segment is adjacent to it.
        let w = one.worst_segment();
        assert!(
            w.from == (0, 0) || w.to == (0, 0),
            "worst segment must touch the pad, got {:?}→{:?}",
            w.from,
            w.to
        );
    }

    #[test]
    fn kcl_current_budget_closes() {
        // The pad segments together must deliver every sink's current.
        let mut s = spec();
        s.pads = vec![(0, 0)];
        let grid = PowerGrid::build(&s).unwrap();
        let report = grid.analyze().unwrap();
        let pad_feed: f64 = report
            .segments
            .iter()
            .filter(|seg| seg.from == (0, 0) || seg.to == (0, 0))
            .map(|seg| seg.current.value())
            .sum();
        // The pad intersection's own sink is fed by the pad directly, so
        // the strap segments carry the other 24 nodes' demand.
        let total_sink = 24.0 * 0.4e-3;
        assert!(
            (pad_feed - total_sink).abs() < 1e-6,
            "pad feeds {pad_feed} vs sinks {total_sink}"
        );
    }

    #[test]
    fn rule_checking_flags_violations() {
        let mut s = spec();
        s.pads = vec![(0, 0)];
        s.sink_per_node = Current::from_milliamps(5.0);
        let report = PowerGrid::build(&s).unwrap().analyze().unwrap();
        // Pick a limit between min and max segment density.
        let worst = report.worst_segment().density;
        let limit = worst * 0.5;
        assert!(!report.meets_rule(limit));
        let v = report.violations(limit);
        assert!(!v.is_empty());
        // sorted descending
        for w in v.windows(2) {
            assert!(w[0].density >= w[1].density);
        }
        assert!(report.meets_rule(worst * 1.01));
        assert!(report.violations(worst * 1.01).is_empty());
    }

    #[test]
    fn direct_dc_matches_transient_reference() {
        for pads in [
            vec![(0, 0)],
            vec![(0, 0), (0, 4), (4, 0), (4, 4)],
            vec![(2, 2)],
        ] {
            let mut s = spec();
            s.pads = pads;
            let grid = PowerGrid::build(&s).unwrap();
            let direct = grid.analyze().unwrap();
            let reference = grid.analyze_via_transient().unwrap();
            assert_eq!(direct.worst_node, reference.worst_node);
            assert!(
                (direct.worst_ir_drop.value() - reference.worst_ir_drop.value()).abs() < 1e-9,
                "worst drop {} vs {}",
                direct.worst_ir_drop.value(),
                reference.worst_ir_drop.value()
            );
            for (a, b) in direct.segments.iter().zip(&reference.segments) {
                assert_eq!((a.from, a.to), (b.from, b.to));
                assert!((a.current.value() - b.current.value()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn duplicate_pads_are_harmless() {
        let mut s = spec();
        s.pads = vec![(0, 0), (0, 0), (4, 4)];
        let dup = PowerGrid::build(&s).unwrap().analyze().unwrap();
        s.pads = vec![(0, 0), (4, 4)];
        let uniq = PowerGrid::build(&s).unwrap().analyze().unwrap();
        assert!((dup.worst_ir_drop.value() - uniq.worst_ir_drop.value()).abs() < 1e-9);
    }

    #[test]
    fn segment_count_matches_mesh() {
        let grid = PowerGrid::build(&spec()).unwrap();
        // 5×5 mesh: 5 rows × 4 horizontal + 4 vertical × 5 cols = 40
        assert_eq!(grid.analyze().unwrap().segments.len(), 40);
    }
}
