//! Closed-form per-layer interconnect parasitic extraction — the
//! replacement for the paper's SPACE3D 3-D capacitance extraction \[24\].
//!
//! The repeater optimum of eqs. (16)–(17) consumes two scalars per metal
//! layer: resistance and capacitance per unit length. Resistance follows
//! directly from the sheet resistance. Capacitance uses the classic
//! Sakurai–Tamaru closed forms (accurate to ~6 % against field solvers in
//! their stated range):
//!
//! * line over a plane: `C_g/ε = 1.15·(W/h) + 2.80·(t/h)^0.222`
//! * lateral coupling to each neighbour:
//!   `C_c/ε = [0.03·(W/h) + 0.83·(t/h) − 0.07·(t/h)^0.222]·(s/h)^−1.34`
//!
//! The ground term sees the *inter-level* dielectric, the coupling term
//! the *intra-level* (gap-fill) dielectric — which is how low-k gap fill
//! buys delay at the cost of the thermal path (the paper's central
//! tension).

use hotwire_tech::Technology;
use hotwire_units::{
    consts::VACUUM_PERMITTIVITY_F_PER_M, CapacitancePerLength, ResistancePerLength,
};
use serde::{Deserialize, Serialize};

use crate::rcline::LineParams;
use crate::CircuitError;

/// Extracted per-unit-length parasitics of one metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtractedLayer {
    /// Resistance per length at the chip reference temperature.
    pub r: ResistancePerLength,
    /// Capacitance to the plane below.
    pub c_ground: CapacitancePerLength,
    /// Coupling capacitance to *one* neighbouring line.
    pub c_coupling: CapacitancePerLength,
}

impl ExtractedLayer {
    /// Total switching capacitance per length: ground + both neighbours
    /// (worst-case Miller factor 1, the value delay optimization uses).
    #[must_use]
    pub fn c_total(&self) -> CapacitancePerLength {
        self.c_ground + self.c_coupling * 2.0
    }

    /// The fraction of the total capacitance contributed by lateral
    /// coupling — "a significant fraction of c" in DSM, per the paper.
    #[must_use]
    pub fn coupling_fraction(&self) -> f64 {
        (self.c_coupling * 2.0) / self.c_total()
    }

    /// As [`LineParams`] for circuit construction.
    #[must_use]
    pub fn line_params(&self) -> LineParams {
        LineParams {
            r: self.r,
            c: self.c_total(),
        }
    }
}

/// Extracts a layer's parasitics at its minimum width and pitch.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDevice`] for an out-of-range layer
/// index.
pub fn extract_layer(
    tech: &Technology,
    layer_index: usize,
) -> Result<ExtractedLayer, CircuitError> {
    let layer = tech
        .layer_at(layer_index)
        .map_err(|e| CircuitError::InvalidDevice {
            message: e.to_string(),
        })?;
    let w = layer.width().value();
    let t = layer.thickness().value();
    let h = layer.ild_below().value();
    let s = layer.spacing().value();

    let rho = tech.metal().resistivity(tech.reference_temperature());
    let r = ResistancePerLength::new(rho.value() / (w * t));

    let eps_inter =
        VACUUM_PERMITTIVITY_F_PER_M * tech.inter_level_dielectric().relative_permittivity();
    let eps_intra =
        VACUUM_PERMITTIVITY_F_PER_M * tech.intra_level_dielectric().relative_permittivity();

    let c_ground = CapacitancePerLength::new(eps_inter * sakurai_ground(w / h, t / h));
    let c_coupling = CapacitancePerLength::new(eps_intra * sakurai_coupling(w / h, t / h, s / h));
    Ok(ExtractedLayer {
        r,
        c_ground,
        c_coupling,
    })
}

/// Convenience: a layer's [`LineParams`] in one call.
///
/// # Errors
///
/// Same as [`extract_layer`].
pub fn line_params(tech: &Technology, layer_index: usize) -> Result<LineParams, CircuitError> {
    Ok(extract_layer(tech, layer_index)?.line_params())
}

/// Sakurai–Tamaru single-line-over-plane form, normalized by ε.
#[must_use]
pub fn sakurai_ground(w_over_h: f64, t_over_h: f64) -> f64 {
    1.15 * w_over_h + 2.80 * t_over_h.powf(0.222)
}

/// Sakurai lateral-coupling form (per neighbour), normalized by ε.
/// Clamped at zero for very wide spacings where the fit goes negative.
#[must_use]
pub fn sakurai_coupling(w_over_h: f64, t_over_h: f64, s_over_h: f64) -> f64 {
    let c =
        (0.03 * w_over_h + 0.83 * t_over_h - 0.07 * t_over_h.powf(0.222)) * s_over_h.powf(-1.34);
    c.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::{presets, Dielectric};

    #[test]
    fn magnitudes_are_physical() {
        // Top-level global wiring: total c in the 120–350 pF/m window,
        // r in the kΩ–tens-of-kΩ per meter range.
        let tech = presets::ntrs_250nm();
        let top = extract_layer(&tech, 5).unwrap();
        let c = top.c_total().to_pf_per_cm() * 100.0; // pF/m
        assert!((120.0..350.0).contains(&c), "c = {c} pF/m");
        let r = top.r.value();
        assert!((5.0e3..50.0e3).contains(&r), "r = {r} Ω/m");
    }

    #[test]
    fn lower_layers_are_more_resistive() {
        let tech = presets::ntrs_100nm();
        let m1 = extract_layer(&tech, 0).unwrap();
        let m8 = extract_layer(&tech, 7).unwrap();
        assert!(m1.r.value() > 10.0 * m8.r.value());
    }

    #[test]
    fn lowk_reduces_capacitance() {
        let cu = presets::ntrs_250nm();
        let lowk = cu
            .clone()
            .with_inter_level_dielectric(Dielectric::lowk2())
            .with_intra_level_dielectric(Dielectric::lowk2());
        let c_ox = extract_layer(&cu, 5).unwrap().c_total();
        let c_lk = extract_layer(&lowk, 5).unwrap().c_total();
        let ratio = c_lk / c_ox;
        assert!((ratio - 0.5).abs() < 0.01, "ε_r 2.0/4.0 ⇒ ratio {ratio}");
    }

    #[test]
    fn coupling_is_significant_in_dsm() {
        // "a significant fraction of c would be contributed by coupling
        // capacitances" — for dense minimum-pitch DSM layers.
        let tech = presets::ntrs_100nm();
        let m2 = extract_layer(&tech, 1).unwrap();
        assert!(
            m2.coupling_fraction() > 0.3,
            "coupling fraction = {}",
            m2.coupling_fraction()
        );
    }

    #[test]
    fn coupling_decays_with_spacing() {
        let c1 = sakurai_coupling(1.0, 1.0, 1.0);
        let c2 = sakurai_coupling(1.0, 1.0, 2.0);
        let c4 = sakurai_coupling(1.0, 1.0, 4.0);
        assert!(c1 > c2 && c2 > c4);
        // power-law with exponent −1.34
        assert!(((c1 / c2) - 2.0_f64.powf(1.34)).abs() < 1e-9);
    }

    #[test]
    fn ground_term_grows_with_width() {
        assert!(sakurai_ground(4.0, 1.0) > sakurai_ground(1.0, 1.0));
        // plate asymptote: ΔC/Δ(W/h) → 1.15
        let d = sakurai_ground(10.0, 1.0) - sakurai_ground(9.0, 1.0);
        assert!((d - 1.15).abs() < 1e-9);
    }

    #[test]
    fn coupling_never_negative() {
        assert_eq!(
            sakurai_coupling(0.1, 0.01, 50.0).max(0.0),
            sakurai_coupling(0.1, 0.01, 50.0)
        );
        assert!(sakurai_coupling(0.1, 0.001, 100.0) >= 0.0);
    }

    #[test]
    fn out_of_range_layer_rejected() {
        let tech = presets::ntrs_250nm();
        assert!(extract_layer(&tech, 11).is_err());
        assert!(line_params(&tech, 11).is_err());
    }

    #[test]
    fn line_params_round_trip() {
        let tech = presets::ntrs_250nm();
        let e = extract_layer(&tech, 5).unwrap();
        let p = line_params(&tech, 5).unwrap();
        assert_eq!(p.r, e.r);
        assert_eq!(p.c, e.c_total());
    }
}
