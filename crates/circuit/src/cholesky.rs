//! Sparse LDLᵀ (Cholesky) factorization for symmetric positive-definite
//! MNA systems — the SPD fast path.
//!
//! The DC power-grid matrix (pads eliminated, gmin on the diagonal) and
//! the chip thermal map are SPD by construction, so they never need the
//! partial pivoting the general LU in [`crate::sparse`] pays for. This
//! module factors `P·A·Pᵀ = L·D·Lᵀ` with:
//!
//! * a fill-reducing AMD permutation ([`crate::ordering::amd`]),
//! * a **symbolic phase** run once per sparsity pattern — elimination
//!   tree, postorder, exact per-column fill counts — so
//!   [`CholeskyFactorization::refactor`] is numeric-only, exactly like
//!   the LU path's factor-once/refactor split, and
//! * an up-looking **numeric phase** (Davis' `ldl` formulation)
//!   parallelized with rayon over independent elimination-tree
//!   subtrees.
//!
//! The parallel schedule is deterministic and byte-identical to the
//! serial factorization: the postordered etree makes every subtree a
//! contiguous column range, row patterns stay inside their subtree, so
//! each task owns disjoint columns and returns its slice of `L` by
//! value; the serial "top" pass then finishes the shared ancestor rows
//! in ascending order — the exact append order the serial code would
//! have produced (see DESIGN.md §12). [`SparseMatrix::factor_cholesky_serial`]
//! is the single-task reference twin the determinism suite compares
//! against.
//!
//! ```
//! use hotwire_circuit::sparse::SparseMatrix;
//!
//! let mut m = SparseMatrix::zeros(3);
//! for i in 0..3 {
//!     m.add(i, i, 2.0);
//! }
//! m.add(0, 1, -1.0);
//! m.add(1, 0, -1.0);
//! assert!(m.is_spd_candidate());
//! let f = m.factor_cholesky()?;
//! let x = f.solve(&[1.0, 0.0, 4.0]);
//! assert!((2.0 * x[2] - 4.0).abs() < 1e-12);
//! # Ok::<(), hotwire_circuit::CircuitError>(())
//! ```

use crate::ordering::{amd, etree, postorder, subtree_sizes};
use crate::sparse::{Csc, SparseMatrix};
use crate::CircuitError;
use hotwire_obs::metrics;
use rayon::prelude::*;

/// Sentinel for "no node" in u32 index arrays.
const NONE: u32 = u32::MAX;

/// `D` pivots at or below this magnitude are treated as "not positive
/// definite" (matches `PIVOT_TINY` on the LU path).
const PIVOT_TINY: f64 = 1e-300;

/// Upper bound on the size of an elimination-tree subtree claimed by
/// one parallel task. Fixed-point (machine-independent) so the task
/// decomposition — and therefore the telemetry — is reproducible; the
/// factor *values* are schedule-independent anyway.
fn subtree_threshold(n: usize) -> usize {
    (n / 32).clamp(64, 16_384)
}

impl SparseMatrix {
    /// `true` when the stamped matrix is a structural + numeric
    /// symmetric matrix with a strictly positive diagonal in every
    /// column — the cheap O(nnz) screen the solver dispatch uses before
    /// attempting [`SparseMatrix::factor_cholesky`]. MNA systems with
    /// voltage-source branch rows (zero diagonal) or nonreciprocal
    /// stamps fail this and stay on LU.
    #[must_use]
    pub fn is_spd_candidate(&self) -> bool {
        spd_candidate(self.n(), &self.to_csc())
    }

    /// Factors `P·A·Pᵀ = L·D·Lᵀ` with AMD ordering and the parallel
    /// subtree schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotPositiveDefinite`] when the matrix is
    /// not an SPD candidate (see [`SparseMatrix::is_spd_candidate`]) or
    /// a pivot of `D` comes out non-positive. Callers that can also
    /// stamp indefinite systems should fall back to
    /// [`SparseMatrix::factor`] — the solver dispatch in
    /// [`crate::solver`] does exactly that.
    pub fn factor_cholesky(&self) -> Result<CholeskyFactorization, CircuitError> {
        self.factor_cholesky_inner(true)
    }

    /// The single-task serial twin of [`SparseMatrix::factor_cholesky`]:
    /// same ordering, same symbolic phase, numeric phase run as one
    /// ascending pass. Exists as the reference the determinism suite
    /// compares the parallel schedule against, byte for byte.
    ///
    /// # Errors
    ///
    /// As [`SparseMatrix::factor_cholesky`].
    pub fn factor_cholesky_serial(&self) -> Result<CholeskyFactorization, CircuitError> {
        self.factor_cholesky_inner(false)
    }

    fn factor_cholesky_inner(&self, parallel: bool) -> Result<CholeskyFactorization, CircuitError> {
        let n = self.n();
        let a = self.to_csc();
        if !spd_candidate(n, &a) {
            return Err(CircuitError::NotPositiveDefinite { row: 0 });
        }
        metrics::counter("solver.chol.factor").inc();
        let _t = hotwire_obs::trace::span("solver.chol.factor_time");

        // ---- ordering + symbolic phase (once per sparsity pattern) ----
        let (perm, pinv, au, parent, l_colptr) = {
            let _o = hotwire_obs::trace::span("solver.chol.ordering_time");
            // AMD on the full symmetric pattern, then postorder the
            // elimination tree so subtrees are contiguous index ranges.
            let perm0 = amd(n, &a.col_ptr, &a.row_idx);
            let mut pinv0 = vec![0u32; n];
            for (k, &p) in perm0.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                {
                    pinv0[p as usize] = k as u32;
                }
            }
            let au0 = permuted_upper(n, &a, &pinv0);
            let parent0 = etree(n, &au0.col_ptr, &au0.row_idx);
            let post = postorder(&parent0);
            let perm: Vec<u32> = post.iter().map(|&k| perm0[k as usize]).collect();
            let mut pinv = vec![0u32; n];
            for (k, &p) in perm.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                {
                    pinv[p as usize] = k as u32;
                }
            }
            // Rebuild under the final (postordered) permutation and
            // recompute the etree there: the relabeled tree satisfies
            // parent[k] > k, which the contiguous-subtree schedule and
            // the up-looking walks both rely on.
            let au = permuted_upper(n, &a, &pinv);
            let parent = etree(n, &au.col_ptr, &au.row_idx);
            let lnz = column_counts(n, &au, &parent);
            let mut l_colptr = vec![0usize; n + 1];
            for k in 0..n {
                l_colptr[k + 1] = l_colptr[k] + lnz[k] as usize;
            }
            (perm, pinv, au, parent, l_colptr)
        };

        let (ranges, top_rows) = if parallel {
            schedule(&parent, subtree_threshold(n))
        } else {
            #[allow(clippy::cast_possible_truncation)]
            (Vec::new(), (0..n as u32).collect())
        };

        let mut f = CholeskyFactorization {
            n,
            perm,
            pinv,
            parent,
            l_colptr,
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            d: Vec::new(),
            ranges,
            top_rows,
            anorm_1: a.norm_1(),
        };
        f.numeric(&au)?;
        #[allow(clippy::cast_precision_loss)]
        metrics::gauge("solver.chol.fill_nnz").set(f.nnz() as f64);
        Ok(f)
    }
}

/// A sparse LDLᵀ factorization `P·A·Pᵀ = L·D·Lᵀ`.
///
/// The *symbolic* state — AMD permutation, elimination tree, column
/// pointers and the parallel subtree schedule — is retained, so
/// [`CholeskyFactorization::refactor`] refreshes only the numeric
/// values from a same-pattern matrix, exactly like the LU path.
#[derive(Debug, Clone)]
pub struct CholeskyFactorization {
    n: usize,
    /// `perm[k]` = original index of the k-th pivot.
    perm: Vec<u32>,
    /// `pinv[orig] = pivot position`.
    pinv: Vec<u32>,
    /// Elimination tree in pivot (postordered) numbering.
    parent: Vec<u32>,
    /// Strictly-lower `L` by column, rows ascending, in pivot space.
    l_colptr: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// The diagonal of `D`.
    d: Vec<f64>,
    /// Independent subtree column ranges `[lo, hi)` for the parallel
    /// numeric phase; disjoint and ascending.
    ranges: Vec<(u32, u32)>,
    /// Rows not owned by any subtree task (shared ancestors), ascending,
    /// processed serially after the tasks are merged.
    top_rows: Vec<u32>,
    /// ‖A‖₁ of the matrix behind the current numeric values, refreshed
    /// by [`CholeskyFactorization::refactor`] (condition-estimate input).
    anorm_1: f64,
}

/// One parallel task's slice of the factor: columns `[lo, hi)` by value.
struct Segment {
    lo: usize,
    hi: usize,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    lnz: Vec<u32>,
    d: Vec<f64>,
}

impl CholeskyFactorization {
    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros in `L + D` (fill-in diagnostic, comparable with the LU
    /// path's [`crate::sparse::Factorization::nnz`]).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.n
    }

    /// The fill-reducing permutation (`perm[k]` = original index of the
    /// k-th pivot).
    #[must_use]
    pub fn ordering(&self) -> &[u32] {
        &self.perm
    }

    /// Number of independent subtree tasks in the parallel schedule
    /// (0 for the serial twin).
    #[must_use]
    pub fn subtree_tasks(&self) -> usize {
        self.ranges.len()
    }

    /// The values of strictly-lower `L`, column-major — exposed so the
    /// determinism suite can compare schedules bit-for-bit.
    #[must_use]
    pub fn l_values(&self) -> &[f64] {
        &self.l_vals
    }

    /// The diagonal of `D`, in pivot order.
    #[must_use]
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }

    /// ‖A‖₁ of the matrix behind the current numeric values (refreshed
    /// on [`CholeskyFactorization::refactor`]).
    #[must_use]
    pub fn anorm_1(&self) -> f64 {
        self.anorm_1
    }

    /// Smallest |dₖ| of the LDLᵀ diagonal — the SPD path's pivot-health
    /// analog: a collapse toward zero means the grid is drifting toward
    /// singular (floating nodes, vanishing conductances).
    #[must_use]
    pub fn min_pivot(&self) -> f64 {
        self.d.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min)
    }

    /// Recomputes the numeric factor from a matrix with the **same
    /// sparsity pattern** (same stamping structure): no ordering, no
    /// symbolic work, no schedule rebuild. This is the Picard/Newton
    /// fast path on the SPD route.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotPositiveDefinite`] when the new values
    /// are no longer SPD, and [`CircuitError::Singular`] when the
    /// pattern drifted from the factored one. Callers should fall back
    /// to a fresh factorization in either case.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension differs from the factored one.
    pub fn refactor(&mut self, matrix: &SparseMatrix) -> Result<(), CircuitError> {
        assert_eq!(matrix.n(), self.n, "refactor dimension mismatch");
        metrics::counter("solver.chol.refactor").inc();
        let _t = hotwire_obs::trace::span("solver.chol.refactor_time");
        let a = matrix.to_csc();
        let au = permuted_upper(self.n, &a, &self.pinv);
        self.anorm_1 = a.norm_1();
        self.numeric(&au)?;
        #[allow(clippy::cast_precision_loss)]
        metrics::gauge("solver.chol.fill_nnz").set(self.nnz() as f64);
        Ok(())
    }

    /// Runs the numeric phase (subtree tasks, merge, serial top pass)
    /// against the permuted upper triangle `au`, replacing the stored
    /// factor values.
    fn numeric(&mut self, au: &Csc) -> Result<(), CircuitError> {
        let n = self.n;
        let nnz = self.l_colptr[n];
        let (parent, l_colptr) = (&self.parent, &self.l_colptr);

        // Snap the logical context so each subtree task's span parents
        // under the enclosing factor/refactor span even on a worker.
        let ctx = hotwire_obs::trace::context();
        let segments: Result<Vec<Segment>, CircuitError> = self
            .ranges
            .par_iter()
            .map(|&(lo, hi)| {
                let _ctx = ctx.adopt();
                let _task_span = hotwire_obs::trace::span("solver.chol.subtree");
                let (lo, hi) = (lo as usize, hi as usize);
                let width = hi - lo;
                let seg_nnz = l_colptr[hi] - l_colptr[lo];
                let mut seg = Segment {
                    lo,
                    hi,
                    l_rows: vec![0u32; seg_nnz],
                    l_vals: vec![0.0f64; seg_nnz],
                    lnz: vec![0u32; width],
                    d: vec![0.0f64; width],
                };
                numeric_rows(
                    lo..hi,
                    lo,
                    width,
                    au,
                    parent,
                    l_colptr,
                    &mut seg.l_rows,
                    &mut seg.l_vals,
                    &mut seg.lnz,
                    &mut seg.d,
                )?;
                Ok(seg)
            })
            .collect();
        let segments = segments?;

        // Merge: each task owns a contiguous column range, so its slice
        // lands verbatim at l_colptr[lo]..l_colptr[hi].
        let mut l_rows = vec![0u32; nnz];
        let mut l_vals = vec![0.0f64; nnz];
        let mut lnz = vec![0u32; n];
        let mut d = vec![0.0f64; n];
        for seg in segments {
            l_rows[l_colptr[seg.lo]..l_colptr[seg.hi]].copy_from_slice(&seg.l_rows);
            l_vals[l_colptr[seg.lo]..l_colptr[seg.hi]].copy_from_slice(&seg.l_vals);
            lnz[seg.lo..seg.hi].copy_from_slice(&seg.lnz);
            d[seg.lo..seg.hi].copy_from_slice(&seg.d);
        }

        // Serial top pass: shared ancestor rows, ascending — the same
        // per-column append order the all-serial factorization produces.
        numeric_rows(
            self.top_rows.iter().map(|&k| k as usize),
            0,
            n,
            au,
            parent,
            l_colptr,
            &mut l_rows,
            &mut l_vals,
            &mut lnz,
            &mut d,
        )?;

        self.l_rows = l_rows;
        self.l_vals = l_vals;
        self.d = d;
        Ok(())
    }

    /// Solves `A·x = b` using the stored factor.
    ///
    /// # Panics
    ///
    /// Panics on an rhs length mismatch.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (resized to `n`).
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        // y ← P·b, solved in pivot space.
        let mut y = vec![0.0f64; self.n];
        for (k, &p) in self.perm.iter().enumerate() {
            y[k] = b[p as usize];
        }
        // Forward: L·z = P·b (unit diagonal).
        for k in 0..self.n {
            let yk = y[k];
            if yk != 0.0 {
                let (lo, hi) = (self.l_colptr[k], self.l_colptr[k + 1]);
                for (&r, &v) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                    y[r as usize] -= v * yk;
                }
            }
        }
        // Diagonal: D·w = z.
        for (yk, dk) in y.iter_mut().zip(&self.d) {
            *yk /= dk;
        }
        // Backward: Lᵀ·v = w.
        for k in (0..self.n).rev() {
            let mut acc = y[k];
            let (lo, hi) = (self.l_colptr[k], self.l_colptr[k + 1]);
            for (&r, &v) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                acc -= v * y[r as usize];
            }
            y[k] = acc;
        }
        // x ← Pᵀ·v.
        x.clear();
        x.resize(self.n, 0.0);
        for (k, &p) in self.perm.iter().enumerate() {
            x[p as usize] = y[k];
        }
    }
}

/// Up-looking numeric kernel over a set of rows, writing columns
/// `[base, base + width)` whose storage is passed as slices offset by
/// `l_colptr[base]`. Subtree tasks call this with their own range (row
/// patterns cannot escape a postordered subtree); the top pass calls it
/// with the full matrix. One code path ⇒ identical arithmetic and
/// append order under every schedule.
#[allow(clippy::too_many_arguments, clippy::cast_possible_truncation)]
fn numeric_rows<I>(
    rows: I,
    base: usize,
    width: usize,
    au: &Csc,
    parent: &[u32],
    l_colptr: &[usize],
    l_rows: &mut [u32],
    l_vals: &mut [f64],
    lnz: &mut [u32],
    d: &mut [f64],
) -> Result<(), CircuitError>
where
    I: IntoIterator<Item = usize>,
{
    let off = l_colptr[base];
    let mut y = vec![0.0f64; width];
    let mut flag = vec![NONE; width];
    let mut pattern = vec![0u32; width];
    for k in rows {
        let kl = k - base;
        let ku = k as u32;
        let mut top = width;
        let mut len = 0usize;
        flag[kl] = ku;
        let mut dk = 0.0f64;
        // Scatter A's column k (upper triangle) and build the row
        // pattern by walking each entry up the elimination tree to the
        // first already-visited node — reversed path segments land in
        // pattern[top..width] in topological order.
        for p in au.col_ptr[k]..au.col_ptr[k + 1] {
            let i = au.row_idx[p] as usize;
            if i == k {
                dk += au.values[p];
                continue;
            }
            y[i - base] += au.values[p];
            let mut node = i;
            while flag[node - base] != ku {
                pattern[len] = node as u32;
                len += 1;
                flag[node - base] = ku;
                let up = parent[node];
                // A well-formed pattern walks straight up to k; anything
                // else means the matrix no longer matches the symbolic
                // structure (refactor with drifted stamps).
                if up == NONE || up as usize > k {
                    return Err(CircuitError::Singular { row: k });
                }
                node = up as usize;
            }
            while len > 0 {
                len -= 1;
                top -= 1;
                pattern[top] = pattern[len];
            }
        }
        // Sparse triangular solve along the pattern; append row k to
        // each participating column.
        for &iu in &pattern[top..width] {
            let i = iu as usize;
            let il = i - base;
            let yi = y[il];
            y[il] = 0.0;
            let start = l_colptr[i] - off;
            let cnt = lnz[il] as usize;
            if cnt >= l_colptr[i + 1] - l_colptr[i] {
                return Err(CircuitError::Singular { row: k });
            }
            for t in start..start + cnt {
                y[l_rows[t] as usize - base] -= l_vals[t] * yi;
            }
            let l_ki = yi / d[il];
            dk -= l_ki * yi;
            l_rows[start + cnt] = ku;
            l_vals[start + cnt] = l_ki;
            lnz[il] = (cnt + 1) as u32;
        }
        if !(dk > PIVOT_TINY) {
            return Err(CircuitError::NotPositiveDefinite { row: k });
        }
        d[kl] = dk;
    }
    Ok(())
}

/// `true` when `a` is structurally and numerically symmetric with a
/// strictly positive diagonal in every column.
fn spd_candidate(n: usize, a: &Csc) -> bool {
    for k in 0..n {
        let (lo, hi) = (a.col_ptr[k], a.col_ptr[k + 1]);
        let col = &a.row_idx[lo..hi];
        let pos = col.partition_point(|&r| (r as usize) < k);
        if pos >= col.len() || col[pos] as usize != k || !(a.values[lo + pos] > 0.0) {
            return false;
        }
    }
    // Columns are sorted and deduped, so symmetry is array equality
    // against the transpose. NaN anywhere compares unequal ⇒ LU path.
    let t = transpose(n, a);
    a.col_ptr == t.col_ptr && a.row_idx == t.row_idx && a.values == t.values
}

/// Explicit transpose of a CSC matrix (columns come out sorted).
fn transpose(n: usize, a: &Csc) -> Csc {
    let nnz = a.row_idx.len();
    let mut col_ptr = vec![0usize; n + 1];
    for &r in &a.row_idx {
        col_ptr[r as usize + 1] += 1;
    }
    for k in 0..n {
        col_ptr[k + 1] += col_ptr[k];
    }
    let mut cursor = col_ptr.clone();
    let mut row_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    for c in 0..n {
        for p in a.col_ptr[c]..a.col_ptr[c + 1] {
            let r = a.row_idx[p] as usize;
            let slot = cursor[r];
            cursor[r] += 1;
            #[allow(clippy::cast_possible_truncation)]
            {
                row_idx[slot] = c as u32;
            }
            values[slot] = a.values[p];
        }
    }
    Csc {
        col_ptr,
        row_idx,
        values,
    }
}

/// The upper triangle of `P·A·Pᵀ` in CSC form: column `k` holds entries
/// with pivot-space row `i <= k`. Entry order within a column follows
/// the original column scan — deterministic, and identical between
/// `factor` and `refactor` for same-pattern stamps.
fn permuted_upper(n: usize, a: &Csc, pinv: &[u32]) -> Csc {
    let mut count = vec![0usize; n + 1];
    for c in 0..n {
        let k = pinv[c] as usize;
        for &r in &a.row_idx[a.col_ptr[c]..a.col_ptr[c + 1]] {
            if (pinv[r as usize] as usize) <= k {
                count[k + 1] += 1;
            }
        }
    }
    for k in 0..n {
        count[k + 1] += count[k];
    }
    let mut cursor = count.clone();
    let nnz = count[n];
    let mut row_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    for c in 0..n {
        let k = pinv[c] as usize;
        for p in a.col_ptr[c]..a.col_ptr[c + 1] {
            let i = pinv[a.row_idx[p] as usize];
            if (i as usize) <= k {
                let slot = cursor[k];
                cursor[k] += 1;
                row_idx[slot] = i;
                values[slot] = a.values[p];
            }
        }
    }
    Csc {
        col_ptr: count,
        row_idx,
        values,
    }
}

/// Exact per-column fill counts of `L` via flagged etree walks (Davis'
/// symbolic pass). For Cholesky these counts are exact, so the numeric
/// phase fills every column slot with no slack.
fn column_counts(n: usize, au: &Csc, parent: &[u32]) -> Vec<u32> {
    let mut lnz = vec![0u32; n];
    let mut flag = vec![NONE; n];
    for k in 0..n {
        #[allow(clippy::cast_possible_truncation)]
        let ku = k as u32;
        flag[k] = ku;
        for &ri in &au.row_idx[au.col_ptr[k]..au.col_ptr[k + 1]] {
            let mut i = ri as usize;
            while flag[i] != ku {
                flag[i] = ku;
                lnz[i] += 1;
                let up = parent[i];
                if up == NONE {
                    break;
                }
                i = up as usize;
            }
        }
    }
    lnz
}

/// Splits a postordered elimination forest into maximal subtrees of at
/// most `threshold` nodes (the parallel tasks, as contiguous column
/// ranges) plus the remaining shared ancestor rows (the serial top
/// pass), both ascending.
fn schedule(parent: &[u32], threshold: usize) -> (Vec<(u32, u32)>, Vec<u32>) {
    let n = parent.len();
    let size = subtree_sizes(parent);
    let mut in_range = vec![false; n];
    let mut ranges = Vec::new();
    for r in 0..n {
        if size[r] > threshold {
            continue;
        }
        let parent_too_big = match parent[r] {
            NONE => true,
            p => size[p as usize] > threshold,
        };
        if parent_too_big {
            let lo = r + 1 - size[r];
            #[allow(clippy::cast_possible_truncation)]
            ranges.push((lo as u32, (r + 1) as u32));
            for slot in &mut in_range[lo..=r] {
                *slot = true;
            }
        }
    }
    #[allow(clippy::cast_possible_truncation)]
    let top = (0..n).filter(|&k| !in_range[k]).map(|k| k as u32).collect();
    (ranges, top)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5-point grid Laplacian with gmin shift and one grounded corner —
    /// SPD by construction, the shape of every power-grid MNA matrix.
    fn grid_laplacian(rows: usize, cols: usize) -> SparseMatrix {
        let n = rows * cols;
        let mut m = SparseMatrix::zeros(n);
        let at = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                m.add(at(r, c), at(r, c), 1e-9);
                let mut couple = |a: usize, b: usize| {
                    m.add(a, a, 1.0);
                    m.add(b, b, 1.0);
                    m.add(a, b, -1.0);
                    m.add(b, a, -1.0);
                };
                if c + 1 < cols {
                    couple(at(r, c), at(r, c + 1));
                }
                if r + 1 < rows {
                    couple(at(r, c), at(r + 1, c));
                }
            }
        }
        m.add(0, 0, 1.0e3);
        m
    }

    fn residual_norm(m: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
        m.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_grid_system() {
        let m = grid_laplacian(11, 13);
        let n = m.n();
        #[allow(clippy::cast_precision_loss)]
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let f = m.factor_cholesky().unwrap();
        let x = f.solve(&b);
        assert!(residual_norm(&m, &x, &b) < 1e-9);
    }

    #[test]
    fn agrees_with_lu() {
        let m = grid_laplacian(9, 9);
        let b: Vec<f64> = (0..m.n())
            .map(|i| if i % 3 == 0 { 1.0 } else { -0.5 })
            .collect();
        let xc = m.factor_cholesky().unwrap().solve(&b);
        let xl = m.factor().unwrap().solve(&b);
        for (a, l) in xc.iter().zip(&xl) {
            assert!((a - l).abs() < 1e-9, "cholesky {a} vs lu {l}");
        }
    }

    #[test]
    fn fill_beats_lu_natural_order() {
        let m = grid_laplacian(20, 20);
        let fc = m.factor_cholesky().unwrap();
        let fl = m.factor().unwrap();
        assert!(
            fc.nnz() < fl.nnz(),
            "cholesky fill {} should undercut LU fill {}",
            fc.nnz(),
            fl.nnz()
        );
    }

    #[test]
    fn serial_and_parallel_schedules_match_bitwise() {
        let m = grid_laplacian(17, 19);
        let fp = m.factor_cholesky().unwrap();
        let fs = m.factor_cholesky_serial().unwrap();
        assert!(fp.subtree_tasks() > 1, "schedule should actually split");
        assert_eq!(fs.subtree_tasks(), 0);
        assert_eq!(
            fp.l_values(),
            fs.l_values(),
            "L values must be bit-identical"
        );
        assert_eq!(fp.diagonal(), fs.diagonal(), "D must be bit-identical");
    }

    #[test]
    fn refactor_is_bitwise_equal_to_fresh_factor() {
        let m = grid_laplacian(10, 10);
        let mut f = m.factor_cholesky().unwrap();
        // Same pattern, scaled values, same stamping order.
        let scaled = {
            let mut s = SparseMatrix::zeros(m.n());
            let at = |r: usize, c: usize| r * 10 + c;
            for r in 0..10 {
                for c in 0..10 {
                    s.add(at(r, c), at(r, c), 2.5e-9);
                    let mut couple = |a: usize, b: usize| {
                        s.add(a, a, 2.5);
                        s.add(b, b, 2.5);
                        s.add(a, b, -2.5);
                        s.add(b, a, -2.5);
                    };
                    if c + 1 < 10 {
                        couple(at(r, c), at(r, c + 1));
                    }
                    if r + 1 < 10 {
                        couple(at(r, c), at(r + 1, c));
                    }
                }
            }
            s.add(0, 0, 2.5e3);
            s
        };
        f.refactor(&scaled).unwrap();
        let fresh = scaled.factor_cholesky().unwrap();
        assert_eq!(f.l_values(), fresh.l_values());
        assert_eq!(f.diagonal(), fresh.diagonal());
    }

    #[test]
    fn rejects_asymmetric_and_zero_diagonal() {
        let mut asym = SparseMatrix::zeros(2);
        asym.add(0, 0, 2.0);
        asym.add(1, 1, 2.0);
        asym.add(0, 1, -1.0); // no (1,0) twin
        assert!(!asym.is_spd_candidate());
        assert!(matches!(
            asym.factor_cholesky(),
            Err(CircuitError::NotPositiveDefinite { .. })
        ));

        // MNA voltage-source shape: zero diagonal on the branch row.
        let mut vsrc = SparseMatrix::zeros(2);
        vsrc.add(0, 0, 1.0);
        vsrc.add(0, 1, 1.0);
        vsrc.add(1, 0, 1.0);
        assert!(!vsrc.is_spd_candidate());
    }

    #[test]
    fn rejects_indefinite_values() {
        // Symmetric with positive diagonal but not positive definite:
        // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        assert!(m.is_spd_candidate(), "screen can't see indefiniteness");
        assert!(matches!(
            m.factor_cholesky(),
            Err(CircuitError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_into_reuses_buffer_and_empty_matrix_works() {
        let m = grid_laplacian(6, 6);
        let f = m.factor_cholesky().unwrap();
        let b1 = vec![1.0; m.n()];
        let b2 = vec![-2.0; m.n()];
        let mut x = Vec::new();
        f.solve_into(&b1, &mut x);
        assert!(residual_norm(&m, &x, &b1) < 1e-9);
        f.solve_into(&b2, &mut x);
        assert!(residual_norm(&m, &x, &b2) < 1e-9);

        let empty = SparseMatrix::zeros(0);
        let fe = empty.factor_cholesky().unwrap();
        assert!(fe.solve(&[]).is_empty());
    }
}
