//! Automatic dense/sparse solver selection for MNA systems.
//!
//! Small systems (repeater testbenches, short RC ladders) are fastest
//! through the cache-friendly dense LU in [`crate::linalg`]; large ones
//! (power grids, long distributed lines) through the sparse backends,
//! whose factor cost grows far slower than O(n³). [`MnaMatrix::auto`]
//! picks dense vs sparse by unknown count at [`SPARSE_THRESHOLD`]; the
//! sparse arm then routes SPD stamps (symmetric, positive diagonal —
//! every power-grid and thermal-map matrix) to the AMD-ordered LDLᵀ in
//! [`crate::cholesky`] and everything else to the pivoting LU in
//! [`crate::sparse`], falling back to LU automatically when an LDLᵀ
//! pivot fails. All backends expose the same stamping and
//! factor-once/solve-many surface so assembly code is
//! representation-agnostic; [`MnaFactorization::path`] reports which
//! backend actually served a factorization.

use crate::cholesky::CholeskyFactorization;
use crate::linalg::Matrix;
use crate::sparse::{Factorization as SparseFactorization, SparseMatrix};
use crate::CircuitError;
use hotwire_obs::health;
use hotwire_obs::metrics;

/// Which concrete backend served a factorization — reported by
/// [`MnaFactorization::path`] and recorded in the bench baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverPath {
    /// Dense LU ([`crate::linalg`]).
    Dense,
    /// Sparse Gilbert–Peierls LU with partial pivoting
    /// ([`crate::sparse`]).
    SparseLu,
    /// Sparse AMD-ordered LDLᵀ ([`crate::cholesky`]).
    SparseCholesky,
}

impl SolverPath {
    /// Stable lowercase label (used in bench JSON and logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::SparseLu => "lu",
            Self::SparseCholesky => "cholesky",
        }
    }
}

impl std::fmt::Display for SolverPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Unknown count at and above which [`MnaMatrix::auto`] picks the sparse
/// backend.
///
/// Around this size the dense LU's n³ flops overtake the sparse path's
/// graph overhead on typical MNA sparsity (≈ 5 entries/row); the exact
/// crossover is machine-dependent but flat near the optimum, so a single
/// fixed threshold is fine (measured with `cargo bench --bench solver`).
pub const SPARSE_THRESHOLD: usize = 128;

/// A square MNA system matrix with a dense or sparse backing store.
#[derive(Debug, Clone)]
pub enum MnaMatrix {
    /// Dense row-major storage (small systems).
    Dense(Matrix),
    /// Compressed sparse storage (large systems).
    Sparse(SparseMatrix),
}

impl MnaMatrix {
    /// Creates an `n × n` zero matrix, choosing the backend by size.
    #[must_use]
    pub fn auto(n: usize) -> Self {
        if n >= SPARSE_THRESHOLD {
            Self::Sparse(SparseMatrix::zeros(n))
        } else {
            Self::Dense(Matrix::zeros(n, n))
        }
    }

    /// Forces the dense backend (benchmarking / comparison).
    #[must_use]
    pub fn dense(n: usize) -> Self {
        Self::Dense(Matrix::zeros(n, n))
    }

    /// Forces the sparse backend (benchmarking / comparison).
    #[must_use]
    pub fn sparse(n: usize) -> Self {
        Self::Sparse(SparseMatrix::zeros(n))
    }

    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Self::Dense(m) => m.rows(),
            Self::Sparse(m) => m.n(),
        }
    }

    /// `true` when backed by the sparse store.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Self::Sparse(_))
    }

    /// Adds `v` to entry `(r, c)` — the MNA stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        match self {
            Self::Dense(m) => m.add(r, c, v),
            Self::Sparse(m) => m.add(r, c, v),
        }
    }

    /// Removes every stamp, keeping allocations for re-stamping.
    pub fn clear(&mut self) {
        match self {
            Self::Dense(m) => m.clear(),
            Self::Sparse(m) => m.clear(),
        }
    }

    /// Factors the current values into a reusable [`MnaFactorization`]
    /// (`self` is left stamped and unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when the system has no unique
    /// solution.
    pub fn factor(&self) -> Result<MnaFactorization, CircuitError> {
        metrics::counter("solver.factor").inc();
        let _t = hotwire_obs::trace::span("solver.factor_time");
        self.factor_dispatch(false)
    }

    /// Factors through the general LU even when the stamps are SPD —
    /// the benchmarking/comparison escape hatch
    /// ([`crate::grid_dc::DcGridSolver::set_lu_only`] routes here).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when the system has no unique
    /// solution.
    pub fn factor_lu(&self) -> Result<MnaFactorization, CircuitError> {
        metrics::counter("solver.factor").inc();
        let _t = hotwire_obs::trace::span("solver.factor_time");
        self.factor_dispatch(true)
    }

    /// Backend dispatch shared by [`MnaMatrix::factor`],
    /// [`MnaMatrix::factor_lu`] and the refactor fallback (which must
    /// not double-increment `solver.factor`).
    fn factor_dispatch(&self, force_lu: bool) -> Result<MnaFactorization, CircuitError> {
        match self {
            Self::Dense(m) => {
                let mut lu = m.clone();
                lu.factor()?;
                Ok(MnaFactorization::Dense(lu))
            }
            Self::Sparse(m) => {
                // SPD fast path: symmetric stamps with a positive
                // diagonal go through AMD + LDLᵀ; anything else — and
                // any LDLᵀ pivot failure — falls back to pivoting LU.
                if !force_lu {
                    match m.factor_cholesky() {
                        Ok(f) => {
                            metrics::gauge(health::names::CHOL_MIN_PIVOT).set(f.min_pivot());
                            return Ok(MnaFactorization::SparseCholesky(f));
                        }
                        Err(_) => metrics::counter("solver.chol.fallback").inc(),
                    }
                }
                let f = m.factor()?;
                #[allow(clippy::cast_precision_loss)]
                metrics::gauge("solver.sparse.fill_nnz").set(f.nnz() as f64);
                metrics::gauge(health::names::PIVOT_GROWTH).set(f.pivot_growth());
                Ok(MnaFactorization::Sparse(f))
            }
        }
    }

    /// Matrix–vector product `A·v` against the current stamps (residual
    /// checks; not a hot path).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        match self {
            Self::Dense(m) => m.mul_vec(v),
            Self::Sparse(m) => m.mul_vec(v),
        }
    }

    /// One-shot solve (factor + substitute), for callers without reuse.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when the system has no unique
    /// solution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        Ok(self.factor()?.solve(b))
    }
}

/// A reusable factorization of an [`MnaMatrix`]: solve any number of
/// right-hand sides, or [`MnaFactorization::refactor`] from same-pattern
/// values (Newton iterations) without redoing symbolic work.
#[derive(Debug, Clone)]
pub enum MnaFactorization {
    /// Factored dense matrix.
    Dense(Matrix),
    /// Sparse LU factors.
    Sparse(SparseFactorization),
    /// Sparse LDLᵀ factors (the SPD fast path).
    SparseCholesky(CholeskyFactorization),
}

impl MnaFactorization {
    /// The backend that served this factorization.
    #[must_use]
    pub fn path(&self) -> SolverPath {
        match self {
            Self::Dense(_) => SolverPath::Dense,
            Self::Sparse(_) => SolverPath::SparseLu,
            Self::SparseCholesky(_) => SolverPath::SparseCholesky,
        }
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics on an rhs length mismatch.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (resized to `n`).
    ///
    /// # Panics
    ///
    /// Panics on an rhs length mismatch.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        match self {
            Self::Dense(lu) => lu.solve_factored_into(b, x),
            Self::Sparse(f) => f.solve_into(b, x),
            Self::SparseCholesky(f) => f.solve_into(b, x),
        }
    }

    /// Hager/Higham 1-norm condition estimate κ₁(A) of the factored
    /// system, reusing the stored factors (a handful of solves, no
    /// refactorization).
    ///
    /// `None` on the dense backend (small testbench systems; the
    /// monitors target the grid-scale sparse paths). The estimate is a
    /// lower bound on the true κ₁, typically within a small factor
    /// (see [`hotwire_obs::health::CONDEST_UNDERESTIMATE_FACTOR`]);
    /// `f64::INFINITY` means numerically singular. Each call records
    /// one `health.cond_est` gauge sample — callers decide the
    /// sampling cadence (e.g. [`crate::grid_dc::DcGridSolver`] samples
    /// the first factorization of a pattern and every
    /// [`crate::grid_dc::COND_RESAMPLE_INTERVAL`]-th refactor).
    #[must_use]
    pub fn condition_estimate(&self) -> Option<f64> {
        let kappa = match self {
            Self::Dense(_) => return None,
            Self::Sparse(f) => {
                let mut buf = Vec::new();
                let mut buf_t = Vec::new();
                health::condest_1norm(
                    f.n(),
                    f.anorm_1(),
                    |b, x| {
                        f.solve_into(b, &mut buf);
                        x.copy_from_slice(&buf);
                    },
                    |b, x| {
                        f.solve_transposed_into(b, &mut buf_t);
                        x.copy_from_slice(&buf_t);
                    },
                )
            }
            Self::SparseCholesky(f) => {
                // LDLᵀ is symmetric: A = Aᵀ, one solve serves both.
                let mut buf = Vec::new();
                let solve = |b: &[f64], x: &mut [f64]| {
                    f.solve_into(b, &mut buf);
                    x.copy_from_slice(&buf);
                };
                let mut buf2 = Vec::new();
                let solve_t = |b: &[f64], x: &mut [f64]| {
                    f.solve_into(b, &mut buf2);
                    x.copy_from_slice(&buf2);
                };
                health::condest_1norm(f.n(), f.anorm_1(), solve, solve_t)
            }
        };
        metrics::gauge(health::names::COND_EST).set(kappa);
        metrics::counter(health::names::COND_SAMPLES).inc();
        Some(kappa)
    }

    /// LU pivot-growth factor `max|U| / max|A|` of the stored factors —
    /// a large value signals element growth eating precision. `None`
    /// on the dense and Cholesky backends (Cholesky health is tracked
    /// through its smallest pivot instead).
    #[must_use]
    pub fn pivot_growth(&self) -> Option<f64> {
        match self {
            Self::Sparse(f) => Some(f.pivot_growth()),
            Self::Dense(_) | Self::SparseCholesky(_) => None,
        }
    }

    /// Refreshes the numeric factors from a matrix with the same
    /// dimension (and, for the sparse backend, the same sparsity
    /// pattern). The sparse path reuses the pivot order and elimination
    /// schedules; on a reused pivot going numerically bad it falls back
    /// to a full re-pivoting factorization automatically.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when the new values are
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics when the backend kind or dimension differs from the
    /// factored one.
    pub fn refactor(&mut self, matrix: &MnaMatrix) -> Result<(), CircuitError> {
        metrics::counter("solver.refactor").inc();
        let _t = hotwire_obs::trace::span("solver.refactor_time");
        let in_place_ok = match (&mut *self, matrix) {
            (Self::Dense(lu), MnaMatrix::Dense(m)) => {
                *lu = m.clone();
                lu.factor()?;
                true
            }
            (Self::Sparse(f), MnaMatrix::Sparse(m)) => {
                let ok = f.refactor(m).is_ok();
                if ok {
                    #[allow(clippy::cast_precision_loss)]
                    metrics::gauge("solver.sparse.fill_nnz").set(f.nnz() as f64);
                    metrics::gauge(health::names::PIVOT_GROWTH).set(f.pivot_growth());
                }
                ok
            }
            (Self::SparseCholesky(f), MnaMatrix::Sparse(m)) => {
                let ok = f.refactor(m).is_ok();
                if ok {
                    metrics::gauge(health::names::CHOL_MIN_PIVOT).set(f.min_pivot());
                }
                ok
            }
            _ => panic!("refactor backend mismatch"),
        };
        if !in_place_ok {
            // Pivot order (LU) or definiteness (LDLᵀ) went stale for the
            // new values; re-dispatch from scratch. A Cholesky backend
            // may come back as LU (values no longer SPD); an LU backend
            // stays LU — it was chosen either by dispatch (non-SPD
            // candidate) or deliberately via `factor_lu`.
            metrics::counter("solver.refactor_fallback").inc();
            let keep_lu = matches!(&*self, Self::Sparse(_));
            *self = matrix.factor_dispatch(keep_lu)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp_test_system(m: &mut MnaMatrix) {
        // 2-resistor divider MNA: nodes 0,1 + branch 2 for a 1 V source.
        m.add(0, 0, 1.0); // 1/R1 at node 0
        m.add(0, 1, -1.0);
        m.add(1, 0, -1.0);
        m.add(1, 1, 1.0 + 0.5); // R1 + R2 to ground
        m.add(0, 2, 1.0); // source branch
        m.add(2, 0, 1.0);
    }

    #[test]
    fn auto_picks_backend_by_size() {
        assert!(!MnaMatrix::auto(SPARSE_THRESHOLD - 1).is_sparse());
        assert!(MnaMatrix::auto(SPARSE_THRESHOLD).is_sparse());
    }

    #[test]
    fn dense_and_sparse_agree() {
        let mut d = MnaMatrix::dense(3);
        let mut s = MnaMatrix::sparse(3);
        stamp_test_system(&mut d);
        stamp_test_system(&mut s);
        let b = [0.0, 0.0, 1.0];
        let xd = d.solve(&b).unwrap();
        let xs = s.solve(&b).unwrap();
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12, "dense {a} vs sparse {b}");
        }
        // Divider: v1 = R2/(R1+R2) · 1 V with R1=1, R2=2 ⇒ 2/3.
        assert!((xd[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn factorization_reuse_and_refactor() {
        for mut m in [MnaMatrix::dense(3), MnaMatrix::sparse(3)] {
            stamp_test_system(&mut m);
            let mut f = m.factor().unwrap();
            let x1 = f.solve(&[0.0, 0.0, 1.0]);
            let x2 = f.solve(&[0.0, 0.0, 2.0]);
            for (a, b) in x1.iter().zip(&x2) {
                assert!((2.0 * a - b).abs() < 1e-12, "linearity under reuse");
            }
            // Restamp with doubled conductances; refactor and re-check.
            m.clear();
            stamp_test_system(&mut m);
            stamp_test_system(&mut m);
            // (doubling every stamp doubles the source row too — still the
            // same solution for a doubled rhs)
            f.refactor(&m).unwrap();
            let x3 = f.solve(&[0.0, 0.0, 2.0]);
            for (a, b) in x1.iter().zip(&x3) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn condition_estimate_tracks_the_diagonal_spread() {
        // Diagonal systems have κ₁ = max/min exactly, and exercise both
        // sparse backends (SPD → LDLᵀ, forced LU via factor_lu).
        let mut m = MnaMatrix::sparse(3);
        m.add(0, 0, 100.0);
        m.add(1, 1, 1.0);
        m.add(2, 2, 10.0);
        for f in [m.factor().unwrap(), m.factor_lu().unwrap()] {
            let est = f.condition_estimate().unwrap();
            assert!((est - 100.0).abs() < 1e-9, "{:?}: {est}", f.path());
        }
        let mut d = MnaMatrix::dense(2);
        d.add(0, 0, 1.0);
        d.add(1, 1, 1.0);
        assert!(d.factor().unwrap().condition_estimate().is_none());
    }

    #[test]
    fn singular_propagates() {
        let m = MnaMatrix::auto(2);
        assert!(matches!(
            m.solve(&[1.0, 1.0]),
            Err(CircuitError::Singular { .. })
        ));
    }
}
