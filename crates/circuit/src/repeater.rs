//! Repeater (buffer) insertion for global interconnects — eqs. (16)–(17)
//! of the paper — and the simulation flow behind its Fig. 7 and
//! Tables 5–6.
//!
//! For a minimum driver with effective resistance `r₀`, input capacitance
//! `c_g` and output parasitic `c_p`, driving a line with per-length `r`
//! and `c`, the delay-optimal segmentation is
//!
//! * `l_opt = √(2·r₀·(c_g + c_p)/(r·c))` — repeater spacing,
//! * `s_opt = √(r₀·c/(r·c_g))` — repeater size (multiple of minimum).
//!
//! [`simulate_repeater`] builds the optimally sized stage driving an
//! optimally long line into the next repeater's gate load, runs two clock
//! periods of transient simulation, and reduces the wire current at the
//! repeater output (where the RMS current peaks) to the peak/RMS current
//! densities and effective duty cycle the thermal analysis consumes.

use hotwire_em::{CurrentStats, SampledWaveform};
use hotwire_tech::Technology;
use hotwire_units::{CurrentDensity, Length, Seconds};
use serde::{Deserialize, Serialize};

use crate::extract::extract_layer;
use crate::netlist::{Circuit, MosParams};
use crate::rcline::{LineParams, RcLine};
use crate::sources::SourceWaveform;
use crate::transient::{simulate, TransientOptions};
use crate::CircuitError;

/// The delay-optimal repeater design for one metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeaterDesign {
    /// Optimal repeater spacing l_opt (eq. 16).
    pub l_opt: Length,
    /// Optimal repeater size s_opt (eq. 17), as a multiple of the minimum
    /// driver.
    pub s_opt: f64,
    /// The extracted line parameters used.
    pub line: LineParams,
    /// First-order per-stage delay estimate (seconds):
    /// `0.7·R_d·(C_line + C_load) + R_line·(0.4·C_line + 0.7·C_gate)`.
    pub stage_delay: f64,
}

/// Computes the optimal design for a layer.
///
/// # Errors
///
/// Propagates extraction errors; rejects degenerate driver parameters.
pub fn optimal_design(
    tech: &Technology,
    layer_index: usize,
) -> Result<RepeaterDesign, CircuitError> {
    let params = extract_layer(tech, layer_index)?.line_params();
    let drv = tech.driver();
    let r0 = drv.r0.value();
    let cg = drv.cg.value();
    let cp = drv.cp.value();
    if !(r0 > 0.0 && cg > 0.0 && cp >= 0.0) {
        return Err(CircuitError::InvalidDevice {
            message: "driver parameters must be positive".to_owned(),
        });
    }
    let r = params.r.value();
    let c = params.c.value();
    let l_opt = (2.0 * r0 * (cg + cp) / (r * c)).sqrt();
    let s_opt = (r0 * c / (r * cg)).sqrt();
    let r_d = r0 / s_opt;
    let c_line = c * l_opt;
    let r_line = r * l_opt;
    let c_gate = s_opt * cg;
    let c_par = s_opt * cp;
    let stage_delay =
        0.7 * r_d * (c_line + c_gate + c_par) + r_line * (0.4 * c_line + 0.7 * c_gate);
    Ok(RepeaterDesign {
        l_opt: Length::new(l_opt),
        s_opt,
        line: params,
        stage_delay,
    })
}

impl RepeaterDesign {
    /// The reduced buffer size for a line shorter than `l_opt` — the
    /// paper's power-saving rule `s = s_opt·(l/l_opt)` (§4.1), clamped to
    /// a minimum-sized driver. Slew rates stay healthy because the
    /// driver-to-load ratio is preserved.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a non-positive length.
    #[must_use]
    pub fn reduced_size_for(&self, length: Length) -> f64 {
        debug_assert!(length.value() > 0.0);
        (self.s_opt * (length.value() / self.l_opt.value())).max(1.0)
    }

    /// Dynamic power of one stage at the given clock and supply, with
    /// switching activity `alpha` (transitions per cycle ∈ [0, 1]):
    /// `P = α·f·(c·l + s·(c_g + c_p))·V_dd²`.
    #[must_use]
    pub fn stage_dynamic_power(
        &self,
        stage_length: Length,
        stage_size: f64,
        drv: hotwire_tech::DriverParams,
        clock: hotwire_units::Frequency,
        vdd: hotwire_units::Voltage,
        alpha: f64,
    ) -> hotwire_units::Power {
        let c_total = self.line.c.value() * stage_length.value()
            + stage_size * (drv.cg.value() + drv.cp.value());
        hotwire_units::Power::new(alpha * clock.value() * c_total * vdd.value() * vdd.value())
    }
}

/// Options for [`simulate_repeater`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeaterSimOptions {
    /// RC-line segments (default 40).
    pub segments: usize,
    /// Time steps per clock period (default 1500).
    pub steps_per_period: usize,
    /// Device threshold voltage as a fraction of V_dd (default 0.2).
    pub vt_fraction: f64,
    /// Simulated periods; statistics use only the last (default 2).
    pub periods: usize,
}

impl Default for RepeaterSimOptions {
    fn default() -> Self {
        Self {
            segments: 40,
            steps_per_period: 1500,
            vt_fraction: 0.2,
            periods: 2,
        }
    }
}

/// The simulated repeater stage, post-processed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeaterReport {
    /// The design that was simulated.
    pub design: RepeaterDesign,
    /// The wire-current waveform at the repeater output over the last
    /// period, as current *density* in the layer's cross-section.
    pub waveform: SampledWaveform,
    /// Peak / average / RMS current densities of the waveform.
    pub stats: CurrentStats,
    /// Effective duty cycle `r_eff = (j_avg/j_rms)²`.
    pub effective_duty_cycle: f64,
    /// 10–90 % output rise time as a fraction of the clock period.
    pub relative_slew: f64,
}

impl RepeaterReport {
    /// Peak current density at the repeater output.
    #[must_use]
    pub fn j_peak(&self) -> CurrentDensity {
        self.stats.peak
    }

    /// RMS current density at the repeater output.
    #[must_use]
    pub fn j_rms(&self) -> CurrentDensity {
        self.stats.rms
    }

    /// The EM-effective average density of the (bipolar) wire current,
    /// after crediting reverse-current healing with efficiency `η`
    /// (see [`hotwire_em::derating::bipolar_effective_density`]). This is
    /// the quantitative form of the paper's §4.1 remark that the unipolar
    /// self-consistent rules are *lower bounds* for signal lines.
    ///
    /// # Errors
    ///
    /// Propagates [`hotwire_em::EmError`] for `η ∉ [0, 1]`.
    pub fn em_effective_density(
        &self,
        recovery_efficiency: f64,
    ) -> Result<CurrentDensity, hotwire_em::EmError> {
        hotwire_em::derating::bipolar_effective_density(&self.waveform, recovery_efficiency)
    }
}

/// Builds and simulates the optimally buffered stage on a layer, driven by
/// the technology clock.
///
/// The testbench is: ideal clock with stage-delay-scale edges → CMOS
/// inverter sized `s_opt` (with its parasitic output capacitance) →
/// `l_opt` of distributed line → gate capacitance of the next repeater.
/// The reported current is the wire current in the first line segment —
/// the repeater-output hot spot.
///
/// # Errors
///
/// Propagates extraction, construction and simulation errors.
pub fn simulate_repeater(
    tech: &Technology,
    layer_index: usize,
    options: RepeaterSimOptions,
) -> Result<RepeaterReport, CircuitError> {
    let design = optimal_design(tech, layer_index)?;
    let layer = tech
        .layer_at(layer_index)
        .map_err(|e| CircuitError::InvalidDevice {
            message: e.to_string(),
        })?;
    let vdd = tech.vdd().value();
    let period = tech.clock().period().value();
    let drv = tech.driver();

    let mut c = Circuit::new();
    let vdd_node = c.node();
    let vin = c.node();
    let vdrv = c.node();
    c.voltage_source(vdd_node, Circuit::GROUND, SourceWaveform::dc(vdd));
    // Input clock: edges comparable to a stage delay, as if driven by the
    // previous identical stage.
    let edge = design.stage_delay.clamp(period * 0.01, period * 0.25);
    c.voltage_source(
        vin,
        Circuit::GROUND,
        SourceWaveform::pulse(0.0, vdd, 0.0, edge, edge, period / 2.0 - edge, period),
    );
    // The repeater: minimum NMOS calibrated to r0, scaled by s_opt; PMOS 2×.
    let nmos_min =
        MosParams::from_effective_resistance(drv.r0.value(), vdd, options.vt_fraction * vdd);
    c.inverter(vin, vdrv, vdd_node, nmos_min.scaled(design.s_opt), 2.0);
    // Driver output parasitic.
    c.try_capacitor(vdrv, Circuit::GROUND, design.s_opt * drv.cp.value())?;
    // The line and the next repeater's gate load.
    let line = RcLine::build(&mut c, vdrv, design.line, design.l_opt, options.segments)?;
    c.try_capacitor(line.output, Circuit::GROUND, design.s_opt * drv.cg.value())?;

    #[allow(clippy::cast_precision_loss)]
    let dt = period / options.steps_per_period as f64;
    #[allow(clippy::cast_precision_loss)]
    let t_stop = period * options.periods as f64;
    let result = simulate(
        &c,
        t_stop,
        TransientOptions {
            dt: Some(dt),
            ..TransientOptions::default()
        },
    )?;

    // Last full period.
    let t_start = t_stop - period;
    let k0 = result
        .times
        .iter()
        .position(|&t| t >= t_start - 0.5 * dt)
        .expect("simulation covers the last period");
    let i_wire = result.resistor_current(&c, line.segment_resistors[0]);
    let area = layer.cross_section().value();
    let times: Vec<Seconds> = result.times[k0..]
        .iter()
        .map(|&t| Seconds::new(t - result.times[k0]))
        .collect();
    let densities: Vec<CurrentDensity> = i_wire[k0..]
        .iter()
        .map(|&i| CurrentDensity::new(i / area))
        .collect();
    let waveform =
        SampledWaveform::new(times, densities).map_err(|e| CircuitError::InvalidDevice {
            message: format!("waveform reduction failed: {e}"),
        })?;
    let stats = waveform.stats();
    let effective_duty_cycle = stats.effective_duty_cycle();

    // 10–90 % rise time of the driver output during the last period.
    let v_out = result.voltage(vdrv);
    let relative_slew = rise_time_fraction(&result.times[k0..], &v_out[k0..], vdd, period);

    Ok(RepeaterReport {
        design,
        waveform,
        stats,
        effective_duty_cycle,
        relative_slew,
    })
}

/// Extracts the 10–90 % rise time of the first rising excursion in the
/// window, as a fraction of the period; 0 when no full swing is found.
fn rise_time_fraction(times: &[f64], v: &[f64], vdd: f64, period: f64) -> f64 {
    let lo = 0.1 * vdd;
    let hi = 0.9 * vdd;
    let mut t_lo = None;
    for (k, &vk) in v.iter().enumerate() {
        match t_lo {
            None => {
                // Arm on a crossing of the 10 % level from below.
                if k > 0 && v[k - 1] < lo && vk >= lo {
                    t_lo = Some(times[k]);
                }
            }
            Some(armed) if vk >= hi => return (times[k] - armed) / period,
            Some(_) => {}
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::presets;

    #[test]
    fn optimum_formulas_match_closed_form() {
        let tech = presets::ntrs_250nm();
        let d = optimal_design(&tech, 5).unwrap();
        let drv = tech.driver();
        let p = extract_layer(&tech, 5).unwrap().line_params();
        let l_expected = (2.0 * drv.r0.value() * (drv.cg.value() + drv.cp.value())
            / (p.r.value() * p.c.value()))
        .sqrt();
        let s_expected = (drv.r0.value() * p.c.value() / (p.r.value() * drv.cg.value())).sqrt();
        assert!((d.l_opt.value() - l_expected).abs() / l_expected < 1e-12);
        assert!((d.s_opt - s_expected).abs() / s_expected < 1e-12);
        // Global repeaters are mm-scale and large.
        assert!(d.l_opt.value() > 1.0e-3 && d.l_opt.value() < 2.0e-2);
        assert!(d.s_opt > 30.0 && d.s_opt < 1000.0, "s_opt = {}", d.s_opt);
    }

    #[test]
    fn lowk_lengthens_and_shrinks_the_optimum() {
        // §4: with low-k, "the optimum unbuffered interconnect length
        // increases and the optimum repeater size decreases".
        let cu = presets::ntrs_250nm();
        let lowk = cu
            .clone()
            .with_inter_level_dielectric(hotwire_tech::Dielectric::lowk2())
            .with_intra_level_dielectric(hotwire_tech::Dielectric::lowk2());
        let d_ox = optimal_design(&cu, 5).unwrap();
        let d_lk = optimal_design(&lowk, 5).unwrap();
        assert!(d_lk.l_opt > d_ox.l_opt);
        assert!(d_lk.s_opt < d_ox.s_opt);
        // s_opt and c·l_opt fall by the same factor ⇒ RMS density ~constant
        let f_s = d_ox.s_opt / d_lk.s_opt;
        let f_cl =
            (d_ox.line.c.value() * d_ox.l_opt.value()) / (d_lk.line.c.value() * d_lk.l_opt.value());
        assert!((f_s - f_cl).abs() / f_s < 1e-9);
    }

    #[test]
    fn simulated_duty_cycle_near_paper_value() {
        // The paper: r_eff = 0.12 ± 0.01 across layers and technologies.
        // Our substitute simulator should land in the same neighbourhood.
        let tech = presets::ntrs_250nm();
        let report = simulate_repeater(&tech, 5, RepeaterSimOptions::default()).unwrap();
        let r = report.effective_duty_cycle;
        assert!(
            (0.03..0.35).contains(&r),
            "effective duty cycle {r} out of the plausible window"
        );
        assert!(report.stats.is_consistent());
        // The wire current is bipolar (charges and discharges).
        assert!(report.waveform.is_bipolar());
    }

    #[test]
    fn current_density_magnitudes_match_table5_scale() {
        // Table 5/6 report j_peak of order MA/cm² on optimally buffered
        // top-level lines.
        let tech = presets::ntrs_250nm();
        let report = simulate_repeater(&tech, 5, RepeaterSimOptions::default()).unwrap();
        let j = report.j_peak().to_mega_amps_per_cm2();
        assert!((0.3..30.0).contains(&j), "j_peak = {j} MA/cm²");
        assert!(report.j_rms() < report.j_peak());
    }

    #[test]
    fn slew_is_a_modest_fraction_of_period() {
        let tech = presets::ntrs_250nm();
        let report = simulate_repeater(&tech, 5, RepeaterSimOptions::default()).unwrap();
        assert!(
            report.relative_slew > 0.005 && report.relative_slew < 0.5,
            "relative slew = {}",
            report.relative_slew
        );
    }

    #[test]
    fn reduced_buffer_shrinks_size_and_power() {
        let tech = presets::ntrs_250nm();
        let d = optimal_design(&tech, 5).unwrap();
        let half = Length::new(d.l_opt.value() / 2.0);
        let s_red = d.reduced_size_for(half);
        assert!((s_red - d.s_opt / 2.0).abs() < 1e-9);
        // tiny stubs clamp to a minimum driver
        assert_eq!(d.reduced_size_for(Length::from_micrometers(0.1)), 1.0);
        let p_full = d.stage_dynamic_power(
            d.l_opt,
            d.s_opt,
            tech.driver(),
            tech.clock(),
            tech.vdd(),
            0.5,
        );
        let p_half =
            d.stage_dynamic_power(half, s_red, tech.driver(), tech.clock(), tech.vdd(), 0.5);
        assert!((p_half.value() - 0.5 * p_full.value()).abs() / p_full.value() < 1e-9);
        // a global stage burns mW-scale power — sanity of magnitude
        assert!(p_full.to_milliwatts() > 0.1 && p_full.to_milliwatts() < 100.0);
    }

    #[test]
    fn rise_time_helper() {
        let times: Vec<f64> = (0..=100).map(|k| f64::from(k) * 0.01).collect();
        let v: Vec<f64> = times.iter().map(|&t| (t * 2.0).min(1.0)).collect();
        // 10 % at 0.05, 90 % at 0.45 ⇒ 0.4 of a period-1 window
        let f = rise_time_fraction(&times, &v, 1.0, 1.0);
        assert!((f - 0.4).abs() < 0.03, "f = {f}");
        // flat waveform has no swing
        let flat = vec![0.0; times.len()];
        assert_eq!(rise_time_fraction(&times, &flat, 1.0, 1.0), 0.0);
    }
}
