//! Fill-reducing orderings and elimination-tree machinery for the SPD
//! Cholesky path.
//!
//! The entry point is [`amd`], an approximate-minimum-degree ordering in
//! the style of Amestoy, Davis and Duff (the quotient-graph formulation
//! with element absorption, supervariable merging and approximate
//! external degrees). The companion helpers — [`etree`], [`postorder`],
//! [`subtree_sizes`] — build the elimination-tree scaffolding the
//! symbolic and parallel numeric phases in [`crate::cholesky`] rest on.
//!
//! Everything here is deterministic: ties in the degree lists break by
//! insertion order, supervariable merges pick the smallest surviving
//! index, and no iteration order depends on hashing or allocation
//! addresses. The parallel factorization's byte-identity guarantee
//! (DESIGN.md §8, §12) starts with this property.

/// Sentinel for "no node" in the u32 index arrays below.
const NONE: u32 = u32::MAX;

/// Computes an approximate-minimum-degree permutation for a symmetric
/// sparsity pattern given in CSC form (`col_ptr`/`row_idx`, diagonal
/// entries ignored). Returns `perm` with `perm[k]` = the original index
/// eliminated at step `k`.
///
/// The pattern must be structurally symmetric; the ordering is still a
/// valid permutation if it is not, but the fill prediction degrades.
pub fn amd(n: usize, col_ptr: &[usize], row_idx: &[u32]) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let mut g = Quotient::new(n, col_ptr, row_idx);
    g.eliminate_all();
    g.into_perm()
}

/// Node status in the quotient graph.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    /// A live supervariable (candidate pivot).
    Alive,
    /// Merged into another supervariable (follow `merge_parent`).
    Merged,
    /// Eliminated; the node id now names an element.
    Eliminated,
}

/// The quotient-graph state for one AMD run.
struct Quotient {
    n: usize,
    status: Vec<Status>,
    /// Union-find parent for merged supervariables.
    merge_parent: Vec<u32>,
    /// Weight (number of original variables) of each supervariable root.
    nv: Vec<usize>,
    /// Live variable neighbors (may contain stale merged entries;
    /// resolved through `find` on read).
    adj_var: Vec<Vec<u32>>,
    /// Adjacent element ids (may contain absorbed entries).
    adj_el: Vec<Vec<u32>>,
    /// Members of each element (valid only while un-absorbed).
    el_members: Vec<Vec<u32>>,
    el_absorbed: Vec<bool>,
    /// Approximate external degree, weighted by `nv`.
    degree: Vec<usize>,
    // Doubly-linked degree buckets.
    deg_head: Vec<u32>,
    deg_next: Vec<u32>,
    deg_prev: Vec<u32>,
    cur_min: usize,
    // Stamp workspaces (monotone u64 tags, never reset). `mark` holds
    // the current pivot's Lp membership; `mark2` is a scratch dedup
    // stamp that must never clobber `mark` mid-pivot.
    mark: Vec<u64>,
    mark2: Vec<u64>,
    tag: u64,
    /// Per-element external weight cache, valid when `w_stamp` equals
    /// the current pivot's Lp tag.
    w_val: Vec<usize>,
    w_stamp: Vec<u64>,
    /// Scratch dedup stamp for element lists.
    el_mark: Vec<u64>,
    // Supervariable group chains: originals output together.
    group_head: Vec<u32>,
    group_tail: Vec<u32>,
    group_next: Vec<u32>,
    /// Elimination order of supervariable roots.
    elim_order: Vec<u32>,
    // Scratch reused across pivots.
    lp: Vec<u32>,
    scratch: Vec<u32>,
}

impl Quotient {
    fn new(n: usize, col_ptr: &[usize], row_idx: &[u32]) -> Self {
        let mut adj_var = vec![Vec::new(); n];
        for c in 0..n {
            let lo = col_ptr[c];
            let hi = col_ptr[c + 1];
            for &r in &row_idx[lo..hi] {
                if r as usize != c {
                    adj_var[c].push(r);
                }
            }
        }
        let degree: Vec<usize> = adj_var.iter().map(Vec::len).collect();
        let mut q = Quotient {
            n,
            status: vec![Status::Alive; n],
            merge_parent: vec![NONE; n],
            nv: vec![1; n],
            adj_var,
            adj_el: vec![Vec::new(); n],
            el_members: vec![Vec::new(); n],
            el_absorbed: vec![false; n],
            degree,
            deg_head: vec![NONE; n + 1],
            deg_next: vec![NONE; n],
            deg_prev: vec![NONE; n],
            cur_min: 0,
            mark: vec![0; n],
            mark2: vec![0; n],
            tag: 0,
            w_val: vec![0; n],
            w_stamp: vec![0; n],
            el_mark: vec![0; n],
            group_head: (0..n as u32).collect(),
            group_tail: (0..n as u32).collect(),
            group_next: vec![NONE; n],
            elim_order: Vec::with_capacity(n),
            lp: Vec::new(),
            scratch: Vec::new(),
        };
        // Insert in reverse so bucket heads hold the smallest index —
        // deterministic tie-breaking toward low indices.
        for i in (0..n as u32).rev() {
            q.bucket_insert(i);
        }
        q
    }

    /// Resolves a (possibly merged) supervariable to its live root,
    /// with path compression.
    fn find(&mut self, mut i: u32) -> u32 {
        let mut root = i;
        while self.merge_parent[root as usize] != NONE {
            root = self.merge_parent[root as usize];
        }
        while self.merge_parent[i as usize] != NONE {
            let next = self.merge_parent[i as usize];
            self.merge_parent[i as usize] = root;
            i = next;
        }
        root
    }

    fn bucket_insert(&mut self, i: u32) {
        let d = self.degree[i as usize].min(self.n);
        let head = self.deg_head[d];
        self.deg_next[i as usize] = head;
        self.deg_prev[i as usize] = NONE;
        if head != NONE {
            self.deg_prev[head as usize] = i;
        }
        self.deg_head[d] = i;
        if d < self.cur_min {
            self.cur_min = d;
        }
    }

    fn bucket_remove(&mut self, i: u32) {
        let d = self.degree[i as usize].min(self.n);
        let prev = self.deg_prev[i as usize];
        let next = self.deg_next[i as usize];
        if prev != NONE {
            self.deg_next[prev as usize] = next;
        } else if self.deg_head[d] == i {
            self.deg_head[d] = next;
        }
        if next != NONE {
            self.deg_prev[next as usize] = prev;
        }
        self.deg_next[i as usize] = NONE;
        self.deg_prev[i as usize] = NONE;
    }

    fn next_tag(&mut self) -> u64 {
        self.tag += 1;
        self.tag
    }

    fn eliminate_all(&mut self) {
        let mut eliminated = 0usize;
        while eliminated < self.n {
            // Find the minimum-degree pivot.
            while self.cur_min <= self.n && self.deg_head[self.cur_min] == NONE {
                self.cur_min += 1;
            }
            let p = self.deg_head[self.cur_min.min(self.n)];
            debug_assert!(p != NONE, "degree lists exhausted early");
            self.bucket_remove(p);
            eliminated += self.nv[p as usize];
            self.eliminate(p);
        }
    }

    /// Eliminates pivot `p`: forms element `p`, absorbs its adjacent
    /// elements, updates degrees of the affected supervariables and
    /// merges indistinguishable ones.
    fn eliminate(&mut self, p: u32) {
        // --- Build Lp: live supervariables adjacent to p (directly or
        // through p's elements), marked with `tag`.
        let tag = self.next_tag();
        self.mark[p as usize] = tag;
        let mut lp = std::mem::take(&mut self.lp);
        lp.clear();
        let vars = std::mem::take(&mut self.adj_var[p as usize]);
        for &v in &vars {
            let r = self.find(v);
            if self.status[r as usize] == Status::Alive && self.mark[r as usize] != tag {
                self.mark[r as usize] = tag;
                lp.push(r);
            }
        }
        let els = std::mem::take(&mut self.adj_el[p as usize]);
        for &e in &els {
            if self.el_absorbed[e as usize] {
                continue;
            }
            let members = std::mem::take(&mut self.el_members[e as usize]);
            for &v in &members {
                let r = self.find(v);
                if self.status[r as usize] == Status::Alive && self.mark[r as usize] != tag {
                    self.mark[r as usize] = tag;
                    lp.push(r);
                }
            }
            self.el_members[e as usize] = members;
        }
        lp.sort_unstable();

        // --- Absorb p's old elements into the new element p.
        for &e in &els {
            if !self.el_absorbed[e as usize] {
                self.el_absorbed[e as usize] = true;
                self.el_members[e as usize] = Vec::new();
            }
        }
        self.status[p as usize] = Status::Eliminated;
        self.elim_order.push(p);

        let lp_weight: usize = lp.iter().map(|&i| self.nv[i as usize]).sum();

        // --- Rebuild adjacency and recompute degrees for i in Lp.
        for &i in &lp {
            self.bucket_remove(i);

            // Compact adj_var[i]: live roots outside Lp, deduped.
            let dedup = self.next_tag();
            let mut vlist = std::mem::take(&mut self.adj_var[i as usize]);
            let mut kept = std::mem::take(&mut self.scratch);
            kept.clear();
            let mut var_weight = 0usize;
            for &v in &vlist {
                let r = self.find(v);
                if self.status[r as usize] != Status::Alive {
                    continue;
                }
                if self.mark[r as usize] == tag {
                    continue; // covered by the new element p
                }
                if self.mark2[r as usize] == dedup {
                    continue;
                }
                self.mark2[r as usize] = dedup;
                kept.push(r);
                var_weight += self.nv[r as usize];
            }
            vlist.clear();
            vlist.extend_from_slice(&kept);
            self.adj_var[i as usize] = vlist;

            // Compact adj_el[i]: un-absorbed elements, deduped, plus p.
            let eldedup = self.next_tag();
            let mut elist = std::mem::take(&mut self.adj_el[i as usize]);
            kept.clear();
            let mut el_weight = 0usize;
            for &e in &elist {
                if self.el_absorbed[e as usize] || self.el_mark[e as usize] == eldedup {
                    continue;
                }
                self.el_mark[e as usize] = eldedup;
                kept.push(e);
                el_weight += self.cached_external_weight(e, tag);
            }
            kept.push(p);
            elist.clear();
            elist.extend_from_slice(&kept);
            self.adj_el[i as usize] = elist;
            self.scratch = kept;

            // Approximate external degree (Amestoy–Davis–Duff bound).
            let d = var_weight + (lp_weight - self.nv[i as usize]) + el_weight;
            self.degree[i as usize] = d.min(self.n - 1);
        }

        // --- Supervariable detection: merge indistinguishable members
        // of Lp (equal adjacency sets). Hash, then confirm exactly.
        self.merge_indistinguishable(&lp);

        // --- Record the new element and reinsert survivors.
        let mut members = Vec::with_capacity(lp.len());
        for &i in &lp {
            if self.status[i as usize] == Status::Alive {
                members.push(i);
                self.bucket_insert(i);
            }
        }
        self.el_members[p as usize] = members;
        self.lp = lp;
    }

    /// External weight of element `e` w.r.t. the current pivot's Lp,
    /// computed once per pivot and cached in `w_val`/`w_stamp` (the
    /// cache key is the Lp tag itself).
    fn cached_external_weight(&mut self, e: u32, lp_tag: u64) -> usize {
        if self.w_stamp[e as usize] == lp_tag {
            return self.w_val[e as usize];
        }
        let w = self.element_external_weight(e, lp_tag);
        self.w_stamp[e as usize] = lp_tag;
        self.w_val[e as usize] = w;
        w
    }

    /// External weight of element `e` w.r.t. the current pivot's Lp
    /// (members marked with `lp_tag`); also compacts the member list to
    /// live roots as a side effect.
    fn element_external_weight(&mut self, e: u32, lp_tag: u64) -> usize {
        let members = std::mem::take(&mut self.el_members[e as usize]);
        let mut w = 0usize;
        let dedup = self.next_tag();
        let mut compact = Vec::with_capacity(members.len());
        for &v in &members {
            let r = self.find(v);
            if self.status[r as usize] != Status::Alive {
                continue;
            }
            if self.mark2[r as usize] == dedup {
                continue;
            }
            self.mark2[r as usize] = dedup;
            compact.push(r);
            if self.mark[r as usize] != lp_tag {
                w += self.nv[r as usize];
            }
        }
        self.el_members[e as usize] = compact;
        w
    }

    fn merge_indistinguishable(&mut self, lp: &[u32]) {
        if lp.len() < 2 {
            return;
        }
        // Cheap commutative hash of the adjacency sets.
        let hash_of = |q: &Quotient, i: u32| -> u64 {
            let mut h = 0u64;
            for &v in &q.adj_var[i as usize] {
                h = h.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(v) + 1));
            }
            for &e in &q.adj_el[i as usize] {
                h = h.wrapping_add(0x85eb_ca6bu64.wrapping_mul(u64::from(e) + 7));
            }
            h
        };
        let mut hashes: Vec<(u64, u32)> = lp.iter().map(|&i| (hash_of(self, i), i)).collect();
        hashes.sort_unstable();
        let mut a = 0;
        while a < hashes.len() {
            let mut b = a + 1;
            while b < hashes.len() && hashes[b].0 == hashes[a].0 {
                b += 1;
            }
            if b - a > 1 {
                self.merge_group(&hashes[a..b]);
            }
            a = b;
        }
    }

    /// Confirms and applies merges within one hash-equal group.
    fn merge_group(&mut self, group: &[(u64, u32)]) {
        for x in 0..group.len() {
            let i = group[x].1;
            if self.status[i as usize] != Status::Alive {
                continue;
            }
            for item in &group[x + 1..] {
                let j = item.1;
                if self.status[j as usize] != Status::Alive {
                    continue;
                }
                if self.same_adjacency(i, j) {
                    // Merge j into i (i < j by sort order).
                    self.status[j as usize] = Status::Merged;
                    self.merge_parent[j as usize] = i;
                    self.nv[i as usize] += self.nv[j as usize];
                    self.degree[i as usize] =
                        self.degree[i as usize].saturating_sub(self.nv[j as usize]);
                    // Splice j's group chain onto i's.
                    let jt = self.group_head[j as usize];
                    self.group_next[self.group_tail[i as usize] as usize] = jt;
                    self.group_tail[i as usize] = self.group_tail[j as usize];
                    self.adj_var[j as usize] = Vec::new();
                    self.adj_el[j as usize] = Vec::new();
                }
            }
        }
    }

    /// Exact set equality of the (just-compacted) adjacency lists,
    /// ignoring i/j themselves.
    fn same_adjacency(&mut self, i: u32, j: u32) -> bool {
        let vi_len = self.adj_var[i as usize].len();
        let vj_len = self.adj_var[j as usize].len();
        let ei_len = self.adj_el[i as usize].len();
        let ej_len = self.adj_el[j as usize].len();
        if ei_len != ej_len {
            return false;
        }
        // Variable lists may differ only by mutual entries (i lists j).
        let t = self.next_tag();
        let mut i_count = 0usize;
        for idx in 0..vi_len {
            let r = self.find(self.adj_var[i as usize][idx]);
            if r == j {
                continue;
            }
            if self.mark2[r as usize] != t {
                self.mark2[r as usize] = t;
                i_count += 1;
            }
        }
        let mut j_count = 0usize;
        for idx in 0..vj_len {
            let r = self.find(self.adj_var[j as usize][idx]);
            if r == i {
                continue;
            }
            if self.mark2[r as usize] != t {
                return false; // j has a neighbor i lacks
            }
            j_count += 1;
        }
        // j_count may count duplicates; require it to cover i's set.
        if j_count < i_count {
            return false;
        }
        let te = self.next_tag();
        for idx in 0..ei_len {
            let e = self.adj_el[i as usize][idx];
            self.el_mark[e as usize] = te;
        }
        for idx in 0..ej_len {
            let e = self.adj_el[j as usize][idx];
            if self.el_mark[e as usize] != te {
                return false;
            }
        }
        true
    }

    /// Expands the supervariable elimination order into a full
    /// permutation over original indices.
    fn into_perm(self) -> Vec<u32> {
        let mut perm = Vec::with_capacity(self.n);
        for &root in &self.elim_order {
            let mut v = self.group_head[root as usize];
            while v != NONE {
                perm.push(v);
                v = self.group_next[v as usize];
            }
        }
        debug_assert_eq!(perm.len(), self.n);
        perm
    }
}

/// Computes the elimination tree of a symmetric matrix given its upper
/// triangle in CSC form (column `k` holds rows `i <= k`). Returns
/// `parent[k]` (or [`u32::MAX`] for roots), using Liu's algorithm with
/// path compression over an ancestor array.
pub fn etree(n: usize, up_colptr: &[usize], up_rows: &[u32]) -> Vec<u32> {
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        for &ri in &up_rows[up_colptr[k]..up_colptr[k + 1]] {
            let mut i = ri as usize;
            while i < k {
                let next = ancestor[i];
                ancestor[i] = k as u32;
                if next == NONE {
                    parent[i] = k as u32;
                    break;
                }
                i = next as usize;
            }
        }
    }
    parent
}

/// Postorders an elimination forest given `parent`. Returns `post` with
/// `post[k]` = the node visited k-th; children are visited in ascending
/// node order (deterministic).
pub fn postorder(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    // Build child lists (ascending by construction).
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for i in (0..n).rev() {
        let p = parent[i];
        if p != NONE {
            next[i] = head[p as usize];
            head[p as usize] = i as u32;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<u32> = Vec::new();
    for r in (0..n).rev() {
        if parent[r] == NONE {
            stack.push(r as u32);
        }
    }
    // Iterative DFS emitting nodes after their children.
    let mut state = vec![false; n]; // false = first visit
    while let Some(&x) = stack.last() {
        let xi = x as usize;
        if !state[xi] {
            state[xi] = true;
            // Push children in reverse so the smallest pops first.
            let mut kids: Vec<u32> = Vec::new();
            let mut c = head[xi];
            while c != NONE {
                kids.push(c);
                c = next[c as usize];
            }
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        } else {
            stack.pop();
            post.push(x);
        }
    }
    post
}

/// Subtree sizes (in nodes, including the root) for an elimination
/// forest in **postorder numbering** — i.e. `parent[k] > k` for every
/// non-root. The subtree rooted at `r` is the contiguous index range
/// `[r + 1 - size[r], r]`.
pub fn subtree_sizes(parent: &[u32]) -> Vec<usize> {
    let n = parent.len();
    let mut size = vec![1usize; n];
    for i in 0..n {
        let p = parent[i];
        if p != NONE {
            let s = size[i];
            size[p as usize] += s;
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the symmetric CSC pattern (with diagonal) of a
    /// rows×cols 5-point grid Laplacian.
    fn grid_pattern(rows: usize, cols: usize) -> (usize, Vec<usize>, Vec<u32>) {
        let n = rows * cols;
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut cols_out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for r in 0..rows {
            for c in 0..cols {
                let me = idx(r, c) as usize;
                cols_out[me].push(me as u32);
                if r > 0 {
                    cols_out[me].push(idx(r - 1, c));
                }
                if r + 1 < rows {
                    cols_out[me].push(idx(r + 1, c));
                }
                if c > 0 {
                    cols_out[me].push(idx(r, c - 1));
                }
                if c + 1 < cols {
                    cols_out[me].push(idx(r, c + 1));
                }
            }
        }
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        for mut col in cols_out {
            col.sort_unstable();
            row_idx.extend_from_slice(&col);
            col_ptr.push(row_idx.len());
        }
        (n, col_ptr, row_idx)
    }

    fn assert_is_perm(perm: &[u32], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(!seen[p as usize], "duplicate in perm: {p}");
            seen[p as usize] = true;
        }
    }

    /// Exact fill count for a symmetric pattern under a permutation,
    /// via the symbolic row-walk (sum of column counts of L).
    fn fill_nnz(n: usize, col_ptr: &[usize], row_idx: &[u32], perm: &[u32]) -> usize {
        let mut pinv = vec![0u32; n];
        for (k, &p) in perm.iter().enumerate() {
            pinv[p as usize] = k as u32;
        }
        // Upper triangle of the permuted pattern, by column.
        let mut up: Vec<Vec<u32>> = vec![Vec::new(); n];
        for c in 0..n {
            for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
                let i = pinv[r as usize];
                let k = pinv[c];
                if i <= k {
                    up[k as usize].push(i);
                }
            }
        }
        let mut up_colptr = vec![0usize];
        let mut up_rows = Vec::new();
        for col in &mut up {
            col.sort_unstable();
            up_rows.extend_from_slice(col);
            up_colptr.push(up_rows.len());
        }
        let parent = etree(n, &up_colptr, &up_rows);
        // Column counts via flagged etree walks.
        let mut lnz = vec![0usize; n];
        let mut flag = vec![u32::MAX; n];
        for k in 0..n {
            flag[k] = k as u32;
            for &ri in &up_rows[up_colptr[k]..up_colptr[k + 1]] {
                let mut i = ri as usize;
                while flag[i] != k as u32 {
                    flag[i] = k as u32;
                    lnz[i] += 1;
                    let p = parent[i];
                    if p == NONE {
                        break;
                    }
                    i = p as usize;
                }
            }
        }
        lnz.iter().sum::<usize>() + n // + diagonal
    }

    #[test]
    fn amd_returns_valid_permutation() {
        for (rows, cols) in [(1, 1), (2, 2), (3, 5), (8, 8), (16, 16)] {
            let (n, cp, ri) = grid_pattern(rows, cols);
            let perm = amd(n, &cp, &ri);
            assert_is_perm(&perm, n);
        }
    }

    #[test]
    fn amd_handles_empty_and_diagonal_only() {
        assert!(amd(0, &[0], &[]).is_empty());
        // 4 isolated nodes (diagonal-only pattern).
        let cp = vec![0, 1, 2, 3, 4];
        let ri = vec![0u32, 1, 2, 3];
        let perm = amd(4, &cp, &ri);
        assert_is_perm(&perm, 4);
    }

    #[test]
    fn amd_reduces_fill_versus_natural_on_grid() {
        let (n, cp, ri) = grid_pattern(24, 24);
        let natural: Vec<u32> = (0..n as u32).collect();
        let perm = amd(n, &cp, &ri);
        assert_is_perm(&perm, n);
        let fill_nat = fill_nnz(n, &cp, &ri, &natural);
        let fill_amd = fill_nnz(n, &cp, &ri, &perm);
        // Natural ordering on a k×k grid fills ~n·k; AMD should cut it
        // by a wide margin. Require at least 2x to be robust.
        assert!(
            fill_amd * 2 < fill_nat,
            "AMD fill {fill_amd} not < half of natural fill {fill_nat}"
        );
    }

    #[test]
    fn etree_of_chain_is_chain() {
        // Tridiagonal pattern: parent[k] = k+1.
        let n = 6;
        let mut cp = vec![0usize];
        let mut ri = Vec::new();
        for k in 0..n {
            if k > 0 {
                ri.push((k - 1) as u32);
            }
            ri.push(k as u32);
            cp.push(ri.len());
        }
        let parent = etree(n, &cp, &ri);
        for (k, &p) in parent.iter().enumerate().take(n - 1) {
            assert_eq!(p, (k + 1) as u32);
        }
        assert_eq!(parent[n - 1], NONE);
    }

    #[test]
    fn postorder_is_valid_and_sizes_are_contiguous() {
        // Star: 0..4 all children of 5, plus a chain 6->7.
        let parent = vec![5, 5, 5, 5, 5, NONE, 7, NONE];
        let post = postorder(&parent);
        assert_is_perm(&post, parent.len());
        // Relabel and check parent[k] > k in the new numbering.
        let mut pinv = vec![0u32; parent.len()];
        for (k, &p) in post.iter().enumerate() {
            pinv[p as usize] = k as u32;
        }
        let relabeled: Vec<u32> = post
            .iter()
            .map(|&old| {
                let p = parent[old as usize];
                if p == NONE {
                    NONE
                } else {
                    pinv[p as usize]
                }
            })
            .collect();
        for (k, &p) in relabeled.iter().enumerate() {
            if p != NONE {
                assert!(p as usize > k, "postorder violated at {k}");
            }
        }
        let sizes = subtree_sizes(&relabeled);
        for (k, &p) in relabeled.iter().enumerate() {
            if p == NONE {
                continue;
            }
            // Subtree range is contiguous and inside the parent's.
            let lo = k + 1 - sizes[k];
            assert!(lo <= k);
        }
        // Root of the star subtree has size 6.
        let star_root = pinv[5] as usize;
        assert_eq!(sizes[star_root], 6);
    }
}
