//! A SPICE-flavoured netlist parser.
//!
//! The transient engine is usually driven programmatically (see
//! [`crate::repeater`]), but interoperability with hand-written decks is
//! part of being a usable circuit tool. The dialect is a compact subset
//! of SPICE:
//!
//! ```text
//! * comment lines start with '*' (or '#'); continuation is not needed
//! VDD vdd 0 DC 2.5
//! VIN in  0 PULSE(0 2.5 0 0.1n 0.1n 2n 4n)
//! R1  in  mid 1k
//! C1  mid 0   10f
//! I1  0   mid DC 1u
//! M1  out in  0   NMOS VT=0.5 K=1m LAMBDA=0.05
//! M2  out in  vdd PMOS VT=0.5 K=2m
//! .end
//! ```
//!
//! * Node `0` (also `gnd`/`GND`) is ground; all other node names are
//!   free-form identifiers allocated on first use.
//! * Values accept the SPICE magnitude suffixes
//!   `f p n u m k meg g t` (case-insensitive).
//! * Device kinds are selected by the first letter of the element name:
//!   `R`, `C`, `V`, `I`, `M`.
//!
//! ```
//! use hotwire_circuit::parser::parse_netlist;
//! use hotwire_circuit::transient::{simulate, TransientOptions};
//!
//! let deck = "\
//! * rc divider
//! V1 in 0 DC 1.0
//! R1 in out 1k
//! C1 out 0 1n
//! ";
//! let parsed = parse_netlist(deck)?;
//! let out = parsed.node("out").expect("declared in the deck");
//! let result = simulate(&parsed.circuit, 10.0e-6, TransientOptions::default())?;
//! assert!((result.voltage(out).last().unwrap() - 1.0).abs() < 1e-2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use crate::netlist::{Circuit, MosParams, MosPolarity, NodeId};
use crate::sources::SourceWaveform;
use crate::CircuitError;

/// The result of parsing a netlist: the circuit plus name → node and
/// name → device-index maps for probing.
#[derive(Debug, Clone, Default)]
pub struct ParsedCircuit {
    /// The assembled circuit.
    pub circuit: Circuit,
    nodes: HashMap<String, NodeId>,
    devices: HashMap<String, usize>,
}

impl ParsedCircuit {
    /// Resolves a node name from the deck (ground aliases return
    /// [`Circuit::GROUND`]).
    #[must_use]
    pub fn node(&self, name: &str) -> Option<NodeId> {
        if is_ground(name) {
            return Some(Circuit::GROUND);
        }
        self.nodes.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves an element name (e.g. `"R1"`) to its device index, usable
    /// with the current probes of [`crate::transient::TransientResult`].
    #[must_use]
    pub fn device(&self, name: &str) -> Option<usize> {
        self.devices.get(&name.to_ascii_uppercase()).copied()
    }

    /// All declared node names (lowercased), sorted.
    #[must_use]
    pub fn node_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.keys().cloned().collect();
        v.sort();
        v
    }
}

fn is_ground(name: &str) -> bool {
    matches!(name.to_ascii_lowercase().as_str(), "0" | "gnd")
}

fn parse_err(line: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::InvalidDevice {
        message: format!("netlist line {line}: {}", message.into()),
    }
}

/// Parses a SPICE magnitude-suffixed value (`1k`, `10f`, `2.5`, `1meg`).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDevice`] for unparseable tokens.
pub fn parse_value(token: &str) -> Result<f64, CircuitError> {
    let t = token.trim().to_ascii_lowercase();
    let (mult, digits) = if let Some(stripped) = t.strip_suffix("meg") {
        (1.0e6, stripped)
    } else if let Some(stripped) = t.strip_suffix('f') {
        (1.0e-15, stripped)
    } else if let Some(stripped) = t.strip_suffix('p') {
        (1.0e-12, stripped)
    } else if let Some(stripped) = t.strip_suffix('n') {
        (1.0e-9, stripped)
    } else if let Some(stripped) = t.strip_suffix('u') {
        (1.0e-6, stripped)
    } else if let Some(stripped) = t.strip_suffix('m') {
        (1.0e-3, stripped)
    } else if let Some(stripped) = t.strip_suffix('k') {
        (1.0e3, stripped)
    } else if let Some(stripped) = t.strip_suffix('g') {
        (1.0e9, stripped)
    } else if let Some(stripped) = t.strip_suffix('t') {
        (1.0e12, stripped)
    } else {
        (1.0, t.as_str())
    };
    digits
        .parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| CircuitError::InvalidDevice {
            message: format!("`{token}` is not a numeric value"),
        })
}

/// Parses a whole deck into a [`ParsedCircuit`].
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDevice`] with a line number for any
/// malformed element.
pub fn parse_netlist(text: &str) -> Result<ParsedCircuit, CircuitError> {
    let mut parsed = ParsedCircuit {
        circuit: Circuit::new(),
        ..ParsedCircuit::default()
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with('#') {
            continue;
        }
        if line.starts_with('.') {
            // dot-commands: only .end is meaningful in this subset
            if line.to_ascii_lowercase().starts_with(".end") {
                break;
            }
            continue;
        }
        // Normalize PULSE(...) style argument lists into whitespace tokens.
        let normalized = line.replace(['(', ')', ','], " ");
        let tokens: Vec<&str> = normalized.split_whitespace().collect();
        let name = tokens[0].to_ascii_uppercase();
        let kind = name.chars().next().expect("non-empty token");
        let device_index = match kind {
            'R' => parse_resistor(&mut parsed, lineno, &tokens)?,
            'C' => parse_capacitor(&mut parsed, lineno, &tokens)?,
            'V' => parse_source(&mut parsed, lineno, &tokens, true)?,
            'I' => parse_source(&mut parsed, lineno, &tokens, false)?,
            'M' => parse_mosfet(&mut parsed, lineno, &tokens)?,
            other => {
                return Err(parse_err(
                    lineno,
                    format!("unsupported element type `{other}` (supported: R C V I M)"),
                ))
            }
        };
        if parsed.devices.insert(name.clone(), device_index).is_some() {
            return Err(parse_err(
                lineno,
                format!("duplicate element name `{name}`"),
            ));
        }
    }
    Ok(parsed)
}

fn resolve_node(parsed: &mut ParsedCircuit, name: &str) -> NodeId {
    if is_ground(name) {
        return Circuit::GROUND;
    }
    let key = name.to_ascii_lowercase();
    if let Some(&id) = parsed.nodes.get(&key) {
        return id;
    }
    let id = parsed.circuit.node();
    parsed.nodes.insert(key, id);
    id
}

fn parse_resistor(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[&str],
) -> Result<usize, CircuitError> {
    if tokens.len() != 4 {
        return Err(parse_err(lineno, "expected `Rname n1 n2 value`"));
    }
    let a = resolve_node(parsed, tokens[1]);
    let b = resolve_node(parsed, tokens[2]);
    let ohms = parse_value(tokens[3]).map_err(|e| parse_err(lineno, e.to_string()))?;
    parsed
        .circuit
        .try_resistor(a, b, ohms)
        .map_err(|e| parse_err(lineno, e.to_string()))
}

fn parse_capacitor(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[&str],
) -> Result<usize, CircuitError> {
    if tokens.len() != 4 {
        return Err(parse_err(lineno, "expected `Cname n1 n2 value`"));
    }
    let a = resolve_node(parsed, tokens[1]);
    let b = resolve_node(parsed, tokens[2]);
    let farads = parse_value(tokens[3]).map_err(|e| parse_err(lineno, e.to_string()))?;
    parsed
        .circuit
        .try_capacitor(a, b, farads)
        .map_err(|e| parse_err(lineno, e.to_string()))
}

fn parse_source(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[&str],
    voltage: bool,
) -> Result<usize, CircuitError> {
    if tokens.len() < 4 {
        return Err(parse_err(
            lineno,
            "expected `Vname n+ n- DC v` or `Vname n+ n- PULSE(v0 v1 td tr tf pw per)`",
        ));
    }
    let plus = resolve_node(parsed, tokens[1]);
    let minus = resolve_node(parsed, tokens[2]);
    let spec = tokens[3].to_ascii_uppercase();
    let waveform = match spec.as_str() {
        "DC" => {
            if tokens.len() != 5 {
                return Err(parse_err(lineno, "DC source needs one value"));
            }
            SourceWaveform::dc(
                parse_value(tokens[4]).map_err(|e| parse_err(lineno, e.to_string()))?,
            )
        }
        "PULSE" => {
            if tokens.len() != 11 {
                return Err(parse_err(
                    lineno,
                    "PULSE needs 7 values: v0 v1 td tr tf pw per",
                ));
            }
            let mut v = [0.0; 7];
            for (slot, tok) in v.iter_mut().zip(&tokens[4..11]) {
                *slot = parse_value(tok).map_err(|e| parse_err(lineno, e.to_string()))?;
            }
            SourceWaveform::pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6])
        }
        _ => {
            // bare value shorthand: `V1 a 0 2.5`
            if tokens.len() != 4 {
                return Err(parse_err(lineno, format!("unknown source spec `{spec}`")));
            }
            SourceWaveform::dc(
                parse_value(tokens[3]).map_err(|e| parse_err(lineno, e.to_string()))?,
            )
        }
    };
    Ok(if voltage {
        parsed.circuit.voltage_source(plus, minus, waveform)
    } else {
        // SPICE convention: current flows from n+ through the source to n−
        parsed.circuit.current_source(plus, minus, waveform)
    })
}

fn parse_mosfet(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[&str],
) -> Result<usize, CircuitError> {
    if tokens.len() < 5 {
        return Err(parse_err(
            lineno,
            "expected `Mname d g s NMOS|PMOS [VT=..] [K=..] [LAMBDA=..]`",
        ));
    }
    let d = resolve_node(parsed, tokens[1]);
    let g = resolve_node(parsed, tokens[2]);
    let s = resolve_node(parsed, tokens[3]);
    let polarity = match tokens[4].to_ascii_uppercase().as_str() {
        "NMOS" => MosPolarity::Nmos,
        "PMOS" => MosPolarity::Pmos,
        other => return Err(parse_err(lineno, format!("unknown model `{other}`"))),
    };
    let mut params = MosParams {
        vt: 0.5,
        k: 1.0e-3,
        lambda: 0.0,
    };
    for tok in &tokens[5..] {
        let Some((key, val)) = tok.split_once('=') else {
            return Err(parse_err(
                lineno,
                format!("expected KEY=value, got `{tok}`"),
            ));
        };
        let v = parse_value(val).map_err(|e| parse_err(lineno, e.to_string()))?;
        match key.to_ascii_uppercase().as_str() {
            "VT" => params.vt = v,
            "K" => params.k = v,
            "LAMBDA" => params.lambda = v,
            other => return Err(parse_err(lineno, format!("unknown parameter `{other}`"))),
        }
    }
    parsed
        .circuit
        .try_mosfet(d, g, s, params, polarity)
        .map_err(|e| parse_err(lineno, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{simulate, TransientOptions};

    #[test]
    fn value_suffixes() {
        let close = |tok: &str, expect: f64| {
            let v = parse_value(tok).unwrap();
            assert!(
                (v - expect).abs() <= 1e-12 * expect.abs(),
                "{tok}: {v} vs {expect}"
            );
        };
        close("1k", 1.0e3);
        close("10f", 1.0e-14);
        close("2.5", 2.5);
        close("1meg", 1.0e6);
        close("0.1N", 1.0e-10);
        close("3u", 3.0e-6);
        close("2m", 2.0e-3);
        close("1g", 1.0e9);
        close("1t", 1.0e12);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("1x").is_err());
    }

    #[test]
    fn rc_deck_simulates() {
        let deck = "\
* rc filter
V1 in 0 DC 1.0
R1 in out 1k
C1 out gnd 1n
.end
ignored after end
";
        let p = parse_netlist(deck).unwrap();
        assert_eq!(p.circuit.devices().len(), 3);
        let out = p.node("out").unwrap();
        let r = simulate(&p.circuit, 1.0e-5, TransientOptions::default()).unwrap();
        assert!((r.voltage(out).last().unwrap() - 1.0).abs() < 1e-2);
        // current probe through the named resistor
        let i = r.resistor_current(&p.circuit, p.device("r1").unwrap());
        assert!(i[1] > 0.5e-3);
    }

    #[test]
    fn pulse_source_and_case_insensitivity() {
        let deck = "vin A 0 pulse(0 2.5 1n 0.2n 0.2n 3n 8n)\nr1 a 0 1K\n";
        let p = parse_netlist(deck).unwrap();
        // `A` and `a` are the same node
        assert_eq!(p.circuit.node_count(), 1);
        let r = simulate(
            &p.circuit,
            4.0e-9,
            TransientOptions {
                dt: Some(2.0e-11),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let v = r.voltage(p.node("a").unwrap());
        let k = r.times.iter().position(|&t| t > 2.0e-9).unwrap();
        assert!((v[k] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn inverter_deck() {
        let deck = "\
VDD vdd 0 DC 2.5
VIN in 0 PULSE(0 2.5 1n 0.1n 0.1n 4n 10n)
M1 out in 0 NMOS VT=0.5 K=1m
M2 out in vdd PMOS VT=0.5 K=2m LAMBDA=0.05
CL out 0 20f
";
        let p = parse_netlist(deck).unwrap();
        let out = p.node("out").unwrap();
        let r = simulate(
            &p.circuit,
            10.0e-9,
            TransientOptions {
                dt: Some(5.0e-12),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let k_pre = r.times.iter().position(|&t| t > 0.9e-9).unwrap();
        assert!(r.voltage_at(out, k_pre) > 2.2);
        let k_mid = r.times.iter().position(|&t| t > 3.0e-9).unwrap();
        assert!(r.voltage_at(out, k_mid) < 0.3);
    }

    #[test]
    fn current_source_direction() {
        // SPICE: current flows n+ → (through source) → n−, i.e. out of n−
        // into the external circuit. `I1 0 x 1m` pushes 1 mA into node x.
        let deck = "I1 0 x DC 1m\nR1 x 0 2k\n";
        let p = parse_netlist(deck).unwrap();
        let r = simulate(&p.circuit, 1.0e-6, TransientOptions::default()).unwrap();
        let v = r.voltage_at(p.node("x").unwrap(), 5);
        assert!((v - 2.0).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        for (deck, needle) in [
            ("R1 a b\n", "line 1"),
            ("R1 a b 1x\n", "not a numeric"),
            ("X1 a b 1k\n", "unsupported element"),
            ("V1 a 0 PULSE(1 2 3)\n", "PULSE needs 7"),
            ("M1 a b c QMOS\n", "unknown model"),
            ("M1 a b c NMOS FOO=1\n", "unknown parameter"),
            ("M1 a b c NMOS VT\n", "KEY=value"),
            ("R1 a 0 1k\nR1 a 0 1k\n", "duplicate element"),
            ("V1 a 0 AC 1\n", "unknown source spec"),
        ] {
            let err = parse_netlist(deck).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "deck {deck:?}: got `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn node_names_listing() {
        let p = parse_netlist("R1 alpha beta 1k\nR2 beta 0 1k\n").unwrap();
        assert_eq!(p.node_names(), vec!["alpha".to_owned(), "beta".to_owned()]);
        assert_eq!(p.node("0"), Some(Circuit::GROUND));
        assert_eq!(p.node("GND"), Some(Circuit::GROUND));
        assert_eq!(p.node("missing"), None);
        assert_eq!(p.device("zz"), None);
    }
}
