//! A SPICE-flavoured netlist parser.
//!
//! The transient engine is usually driven programmatically (see
//! [`crate::repeater`]), but interoperability with hand-written decks is
//! part of being a usable circuit tool. The dialect is a compact subset
//! of SPICE:
//!
//! ```text
//! * comment lines start with '*' (or '#'); continuation is not needed
//! VDD vdd 0 DC 2.5
//! VIN in  0 PULSE(0 2.5 0 0.1n 0.1n 2n 4n)
//! R1  in  mid 1k
//! C1  mid 0   10f
//! I1  0   mid DC 1u
//! M1  out in  0   NMOS VT=0.5 K=1m LAMBDA=0.05
//! M2  out in  vdd PMOS VT=0.5 K=2m
//! .end
//! ```
//!
//! * Node `0` (also `gnd`/`GND`) is ground; all other node names are
//!   free-form identifiers allocated on first use.
//! * Values accept the SPICE magnitude suffixes
//!   `f p n u m k meg g t` (case-insensitive).
//! * Device kinds are selected by the first letter of the element name:
//!   `R`, `C`, `V`, `I`, `M`.
//!
//! Parse failures come back as a typed [`ParseError`] carrying the
//! 1-based line and column of the offending token, so a CLI (or an
//! editor integration) can point at the deck rather than merely quote
//! it.
//!
//! ```
//! use hotwire_circuit::parser::parse_netlist;
//! use hotwire_circuit::transient::{simulate, TransientOptions};
//!
//! let deck = "\
//! * rc divider
//! V1 in 0 DC 1.0
//! R1 in out 1k
//! C1 out 0 1n
//! ";
//! let parsed = parse_netlist(deck)?;
//! let out = parsed.node("out").expect("declared in the deck");
//! let result = simulate(&parsed.circuit, 10.0e-6, TransientOptions::default())?;
//! assert!((result.voltage(out).last().unwrap() - 1.0).abs() < 1e-2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use crate::netlist::{Circuit, MosParams, MosPolarity, NodeId};
use crate::sources::SourceWaveform;
use crate::CircuitError;

/// A netlist parse failure, pointing at the offending token.
///
/// Every variant carries `line` and `column` (both 1-based; the column
/// is a byte offset into the raw deck line), so diagnostics can be
/// rendered `deck.sp:12:7`-style.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A token where a numeric value was expected does not parse as
    /// one (bad digits or an unknown magnitude suffix).
    BadValue {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the token.
        column: usize,
        /// The offending token, verbatim.
        token: String,
    },
    /// An element line has the wrong number of tokens for its kind.
    WrongArity {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the element name.
        column: usize,
        /// What the element kind expects, human-readable.
        expected: &'static str,
    },
    /// The element name starts with a letter no device kind claims.
    UnsupportedElement {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the element name.
        column: usize,
        /// The unrecognized leading letter.
        kind: char,
    },
    /// A MOSFET references a model other than `NMOS`/`PMOS`.
    UnknownModel {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the model token.
        column: usize,
        /// The unrecognized model name.
        model: String,
    },
    /// A MOSFET `KEY=value` parameter key is not recognized.
    UnknownParameter {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the parameter token.
        column: usize,
        /// The unrecognized key.
        parameter: String,
    },
    /// A source specification is neither `DC`, `PULSE`, nor a bare
    /// value.
    UnknownSourceSpec {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the spec token.
        column: usize,
        /// The unrecognized specification keyword.
        spec: String,
    },
    /// A MOSFET parameter token is not of the form `KEY=value`.
    ExpectedKeyValue {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the token.
        column: usize,
        /// The malformed token, verbatim.
        token: String,
    },
    /// Two elements share a name (names are case-insensitive).
    DuplicateElement {
        /// 1-based deck line of the *second* occurrence.
        line: usize,
        /// 1-based byte column of the element name.
        column: usize,
        /// The duplicated name (uppercased).
        name: String,
    },
    /// The parsed values were rejected by device construction
    /// (negative resistance, non-physical MOSFET parameters, …).
    Device {
        /// 1-based deck line.
        line: usize,
        /// 1-based byte column of the element name.
        column: usize,
        /// The device-level complaint.
        message: String,
    },
}

impl ParseError {
    /// The 1-based deck line the error points at.
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            Self::BadValue { line, .. }
            | Self::WrongArity { line, .. }
            | Self::UnsupportedElement { line, .. }
            | Self::UnknownModel { line, .. }
            | Self::UnknownParameter { line, .. }
            | Self::UnknownSourceSpec { line, .. }
            | Self::ExpectedKeyValue { line, .. }
            | Self::DuplicateElement { line, .. }
            | Self::Device { line, .. } => *line,
        }
    }

    /// The 1-based byte column the error points at.
    #[must_use]
    pub fn column(&self) -> usize {
        match self {
            Self::BadValue { column, .. }
            | Self::WrongArity { column, .. }
            | Self::UnsupportedElement { column, .. }
            | Self::UnknownModel { column, .. }
            | Self::UnknownParameter { column, .. }
            | Self::UnknownSourceSpec { column, .. }
            | Self::ExpectedKeyValue { column, .. }
            | Self::DuplicateElement { column, .. }
            | Self::Device { column, .. } => *column,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "netlist line {}, column {}: ",
            self.line(),
            self.column()
        )?;
        match self {
            Self::BadValue { token, .. } => write!(f, "`{token}` is not a numeric value"),
            Self::WrongArity { expected, .. } => f.write_str(expected),
            Self::UnsupportedElement { kind, .. } => {
                write!(
                    f,
                    "unsupported element type `{kind}` (supported: R C V I M)"
                )
            }
            Self::UnknownModel { model, .. } => write!(f, "unknown model `{model}`"),
            Self::UnknownParameter { parameter, .. } => {
                write!(f, "unknown parameter `{parameter}`")
            }
            Self::UnknownSourceSpec { spec, .. } => write!(f, "unknown source spec `{spec}`"),
            Self::ExpectedKeyValue { token, .. } => {
                write!(f, "expected KEY=value, got `{token}`")
            }
            Self::DuplicateElement { name, .. } => write!(f, "duplicate element name `{name}`"),
            Self::Device { message, .. } => f.write_str(message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for CircuitError {
    fn from(e: ParseError) -> Self {
        Self::InvalidDevice {
            message: e.to_string(),
        }
    }
}

/// The result of parsing a netlist: the circuit plus name → node and
/// name → device-index maps for probing.
#[derive(Debug, Clone, Default)]
pub struct ParsedCircuit {
    /// The assembled circuit.
    pub circuit: Circuit,
    nodes: HashMap<String, NodeId>,
    devices: HashMap<String, usize>,
}

impl ParsedCircuit {
    /// Resolves a node name from the deck (ground aliases return
    /// [`Circuit::GROUND`]).
    #[must_use]
    pub fn node(&self, name: &str) -> Option<NodeId> {
        if is_ground(name) {
            return Some(Circuit::GROUND);
        }
        self.nodes.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves an element name (e.g. `"R1"`) to its device index, usable
    /// with the current probes of [`crate::transient::TransientResult`].
    #[must_use]
    pub fn device(&self, name: &str) -> Option<usize> {
        self.devices.get(&name.to_ascii_uppercase()).copied()
    }

    /// All declared node names (lowercased), sorted.
    #[must_use]
    pub fn node_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.keys().cloned().collect();
        v.sort();
        v
    }
}

fn is_ground(name: &str) -> bool {
    matches!(name.to_ascii_lowercase().as_str(), "0" | "gnd")
}

/// The numeric value of a SPICE magnitude-suffixed token, if it is one.
fn raw_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    let (mult, digits) = if let Some(stripped) = t.strip_suffix("meg") {
        (1.0e6, stripped)
    } else if let Some(stripped) = t.strip_suffix('f') {
        (1.0e-15, stripped)
    } else if let Some(stripped) = t.strip_suffix('p') {
        (1.0e-12, stripped)
    } else if let Some(stripped) = t.strip_suffix('n') {
        (1.0e-9, stripped)
    } else if let Some(stripped) = t.strip_suffix('u') {
        (1.0e-6, stripped)
    } else if let Some(stripped) = t.strip_suffix('m') {
        (1.0e-3, stripped)
    } else if let Some(stripped) = t.strip_suffix('k') {
        (1.0e3, stripped)
    } else if let Some(stripped) = t.strip_suffix('g') {
        (1.0e9, stripped)
    } else if let Some(stripped) = t.strip_suffix('t') {
        (1.0e12, stripped)
    } else {
        (1.0, t.as_str())
    };
    digits.parse::<f64>().ok().map(|v| v * mult)
}

/// Parses a SPICE magnitude-suffixed value (`1k`, `10f`, `2.5`, `1meg`).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDevice`] for unparseable tokens.
pub fn parse_value(token: &str) -> Result<f64, CircuitError> {
    raw_value(token).ok_or_else(|| CircuitError::InvalidDevice {
        message: format!("`{token}` is not a numeric value"),
    })
}

/// One deck token with its 1-based byte column in the raw line.
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

impl Tok<'_> {
    /// The token's numeric value, or a positioned [`ParseError`].
    fn value(&self, line: usize) -> Result<f64, ParseError> {
        raw_value(self.text).ok_or_else(|| ParseError::BadValue {
            line,
            column: self.col,
            token: self.text.to_owned(),
        })
    }
}

/// Splits a normalized deck line into tokens with columns. Because
/// normalization maps `(`, `)`, and `,` to single spaces, byte offsets
/// in the normalized line equal offsets in the raw line.
fn tokenize(normalized: &str) -> Vec<Tok<'_>> {
    let mut out = Vec::new();
    let bytes = normalized.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push(Tok {
            text: &normalized[start..i],
            col: start + 1,
        });
    }
    out
}

/// Parses a whole deck into a [`ParsedCircuit`].
///
/// # Errors
///
/// Returns a [`ParseError`] pointing (line, column) at any malformed
/// element.
pub fn parse_netlist(text: &str) -> Result<ParsedCircuit, ParseError> {
    let mut parsed = ParsedCircuit {
        circuit: Circuit::new(),
        ..ParsedCircuit::default()
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with('#') {
            continue;
        }
        if line.starts_with('.') {
            // dot-commands: only .end is meaningful in this subset
            if line.to_ascii_lowercase().starts_with(".end") {
                break;
            }
            continue;
        }
        // Normalize PULSE(...) style argument lists into whitespace
        // tokens; the raw (untrimmed) line keeps columns honest.
        let normalized = raw.replace(['(', ')', ','], " ");
        let tokens = tokenize(&normalized);
        let Some(first) = tokens.first() else {
            continue;
        };
        let name = first.text.to_ascii_uppercase();
        let Some(kind) = name.chars().next() else {
            continue;
        };
        let device_index = match kind {
            'R' => parse_resistor(&mut parsed, lineno, &tokens)?,
            'C' => parse_capacitor(&mut parsed, lineno, &tokens)?,
            'V' => parse_source(&mut parsed, lineno, &tokens, true)?,
            'I' => parse_source(&mut parsed, lineno, &tokens, false)?,
            'M' => parse_mosfet(&mut parsed, lineno, &tokens)?,
            other => {
                return Err(ParseError::UnsupportedElement {
                    line: lineno,
                    column: first.col,
                    kind: other,
                })
            }
        };
        if parsed.devices.insert(name.clone(), device_index).is_some() {
            return Err(ParseError::DuplicateElement {
                line: lineno,
                column: first.col,
                name,
            });
        }
    }
    Ok(parsed)
}

fn resolve_node(parsed: &mut ParsedCircuit, name: &str) -> NodeId {
    if is_ground(name) {
        return Circuit::GROUND;
    }
    let key = name.to_ascii_lowercase();
    if let Some(&id) = parsed.nodes.get(&key) {
        return id;
    }
    let id = parsed.circuit.node();
    parsed.nodes.insert(key, id);
    id
}

/// Wraps a device-construction failure with the element's position.
fn device_err(lineno: usize, column: usize) -> impl FnOnce(CircuitError) -> ParseError {
    move |e| ParseError::Device {
        line: lineno,
        column,
        message: e.to_string(),
    }
}

fn parse_resistor(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[Tok<'_>],
) -> Result<usize, ParseError> {
    let [name, n1, n2, value] = tokens else {
        return Err(ParseError::WrongArity {
            line: lineno,
            column: tokens[0].col,
            expected: "expected `Rname n1 n2 value`",
        });
    };
    let a = resolve_node(parsed, n1.text);
    let b = resolve_node(parsed, n2.text);
    let ohms = value.value(lineno)?;
    parsed
        .circuit
        .try_resistor(a, b, ohms)
        .map_err(device_err(lineno, name.col))
}

fn parse_capacitor(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[Tok<'_>],
) -> Result<usize, ParseError> {
    let [name, n1, n2, value] = tokens else {
        return Err(ParseError::WrongArity {
            line: lineno,
            column: tokens[0].col,
            expected: "expected `Cname n1 n2 value`",
        });
    };
    let a = resolve_node(parsed, n1.text);
    let b = resolve_node(parsed, n2.text);
    let farads = value.value(lineno)?;
    parsed
        .circuit
        .try_capacitor(a, b, farads)
        .map_err(device_err(lineno, name.col))
}

fn parse_source(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[Tok<'_>],
    voltage: bool,
) -> Result<usize, ParseError> {
    if tokens.len() < 4 {
        return Err(ParseError::WrongArity {
            line: lineno,
            column: tokens[0].col,
            expected: "expected `Vname n+ n- DC v` or `Vname n+ n- PULSE(v0 v1 td tr tf pw per)`",
        });
    }
    let plus = resolve_node(parsed, tokens[1].text);
    let minus = resolve_node(parsed, tokens[2].text);
    let spec = tokens[3].text.to_ascii_uppercase();
    let waveform = match spec.as_str() {
        "DC" => {
            if tokens.len() != 5 {
                return Err(ParseError::WrongArity {
                    line: lineno,
                    column: tokens[3].col,
                    expected: "DC source needs one value",
                });
            }
            SourceWaveform::dc(tokens[4].value(lineno)?)
        }
        "PULSE" => {
            if tokens.len() != 11 {
                return Err(ParseError::WrongArity {
                    line: lineno,
                    column: tokens[3].col,
                    expected: "PULSE needs 7 values: v0 v1 td tr tf pw per",
                });
            }
            let mut v = [0.0; 7];
            for (slot, tok) in v.iter_mut().zip(&tokens[4..11]) {
                *slot = tok.value(lineno)?;
            }
            SourceWaveform::pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6])
        }
        _ => {
            // bare value shorthand: `V1 a 0 2.5`
            if tokens.len() != 4 {
                return Err(ParseError::UnknownSourceSpec {
                    line: lineno,
                    column: tokens[3].col,
                    spec,
                });
            }
            SourceWaveform::dc(tokens[3].value(lineno)?)
        }
    };
    Ok(if voltage {
        parsed.circuit.voltage_source(plus, minus, waveform)
    } else {
        // SPICE convention: current flows from n+ through the source to n−
        parsed.circuit.current_source(plus, minus, waveform)
    })
}

fn parse_mosfet(
    parsed: &mut ParsedCircuit,
    lineno: usize,
    tokens: &[Tok<'_>],
) -> Result<usize, ParseError> {
    if tokens.len() < 5 {
        return Err(ParseError::WrongArity {
            line: lineno,
            column: tokens[0].col,
            expected: "expected `Mname d g s NMOS|PMOS [VT=..] [K=..] [LAMBDA=..]`",
        });
    }
    let d = resolve_node(parsed, tokens[1].text);
    let g = resolve_node(parsed, tokens[2].text);
    let s = resolve_node(parsed, tokens[3].text);
    let polarity = match tokens[4].text.to_ascii_uppercase().as_str() {
        "NMOS" => MosPolarity::Nmos,
        "PMOS" => MosPolarity::Pmos,
        other => {
            return Err(ParseError::UnknownModel {
                line: lineno,
                column: tokens[4].col,
                model: other.to_owned(),
            })
        }
    };
    let mut params = MosParams {
        vt: 0.5,
        k: 1.0e-3,
        lambda: 0.0,
    };
    for tok in &tokens[5..] {
        let Some((key, val)) = tok.text.split_once('=') else {
            return Err(ParseError::ExpectedKeyValue {
                line: lineno,
                column: tok.col,
                token: tok.text.to_owned(),
            });
        };
        let v = raw_value(val).ok_or_else(|| ParseError::BadValue {
            line: lineno,
            column: tok.col + key.len() + 1,
            token: val.to_owned(),
        })?;
        match key.to_ascii_uppercase().as_str() {
            "VT" => params.vt = v,
            "K" => params.k = v,
            "LAMBDA" => params.lambda = v,
            other => {
                return Err(ParseError::UnknownParameter {
                    line: lineno,
                    column: tok.col,
                    parameter: other.to_owned(),
                })
            }
        }
    }
    parsed
        .circuit
        .try_mosfet(d, g, s, params, polarity)
        .map_err(device_err(lineno, tokens[0].col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{simulate, TransientOptions};

    #[test]
    fn value_suffixes() {
        let close = |tok: &str, expect: f64| {
            let v = parse_value(tok).unwrap();
            assert!(
                (v - expect).abs() <= 1e-12 * expect.abs(),
                "{tok}: {v} vs {expect}"
            );
        };
        close("1k", 1.0e3);
        close("10f", 1.0e-14);
        close("2.5", 2.5);
        close("1meg", 1.0e6);
        close("0.1N", 1.0e-10);
        close("3u", 3.0e-6);
        close("2m", 2.0e-3);
        close("1g", 1.0e9);
        close("1t", 1.0e12);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("1x").is_err());
    }

    #[test]
    fn rc_deck_simulates() {
        let deck = "\
* rc filter
V1 in 0 DC 1.0
R1 in out 1k
C1 out gnd 1n
.end
ignored after end
";
        let p = parse_netlist(deck).unwrap();
        assert_eq!(p.circuit.devices().len(), 3);
        let out = p.node("out").unwrap();
        let r = simulate(&p.circuit, 1.0e-5, TransientOptions::default()).unwrap();
        assert!((r.voltage(out).last().unwrap() - 1.0).abs() < 1e-2);
        // current probe through the named resistor
        let i = r.resistor_current(&p.circuit, p.device("r1").unwrap());
        assert!(i[1] > 0.5e-3);
    }

    #[test]
    fn pulse_source_and_case_insensitivity() {
        let deck = "vin A 0 pulse(0 2.5 1n 0.2n 0.2n 3n 8n)\nr1 a 0 1K\n";
        let p = parse_netlist(deck).unwrap();
        // `A` and `a` are the same node
        assert_eq!(p.circuit.node_count(), 1);
        let r = simulate(
            &p.circuit,
            4.0e-9,
            TransientOptions {
                dt: Some(2.0e-11),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let v = r.voltage(p.node("a").unwrap());
        let k = r.times.iter().position(|&t| t > 2.0e-9).unwrap();
        assert!((v[k] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn inverter_deck() {
        let deck = "\
VDD vdd 0 DC 2.5
VIN in 0 PULSE(0 2.5 1n 0.1n 0.1n 4n 10n)
M1 out in 0 NMOS VT=0.5 K=1m
M2 out in vdd PMOS VT=0.5 K=2m LAMBDA=0.05
CL out 0 20f
";
        let p = parse_netlist(deck).unwrap();
        let out = p.node("out").unwrap();
        let r = simulate(
            &p.circuit,
            10.0e-9,
            TransientOptions {
                dt: Some(5.0e-12),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let k_pre = r.times.iter().position(|&t| t > 0.9e-9).unwrap();
        assert!(r.voltage_at(out, k_pre) > 2.2);
        let k_mid = r.times.iter().position(|&t| t > 3.0e-9).unwrap();
        assert!(r.voltage_at(out, k_mid) < 0.3);
    }

    #[test]
    fn current_source_direction() {
        // SPICE: current flows n+ → (through source) → n−, i.e. out of n−
        // into the external circuit. `I1 0 x 1m` pushes 1 mA into node x.
        let deck = "I1 0 x DC 1m\nR1 x 0 2k\n";
        let p = parse_netlist(deck).unwrap();
        let r = simulate(&p.circuit, 1.0e-6, TransientOptions::default()).unwrap();
        let v = r.voltage_at(p.node("x").unwrap(), 5);
        assert!((v - 2.0).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        for (deck, needle) in [
            ("R1 a b\n", "line 1"),
            ("R1 a b 1x\n", "not a numeric"),
            ("X1 a b 1k\n", "unsupported element"),
            ("V1 a 0 PULSE(1 2 3)\n", "PULSE needs 7"),
            ("M1 a b c QMOS\n", "unknown model"),
            ("M1 a b c NMOS FOO=1\n", "unknown parameter"),
            ("M1 a b c NMOS VT\n", "KEY=value"),
            ("R1 a 0 1k\nR1 a 0 1k\n", "duplicate element"),
            ("V1 a 0 AC 1\n", "unknown source spec"),
        ] {
            let err = parse_netlist(deck).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "deck {deck:?}: got `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The bad value `1x` starts at byte 8 of line 2.
        let err = parse_netlist("* lead\nR1 a b  1x\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 9));
        assert!(matches!(err, ParseError::BadValue { ref token, .. } if token == "1x"));

        // The unknown model is the 5th token.
        let err = parse_netlist("M1 a b c QMOS\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 10));
        assert!(matches!(err, ParseError::UnknownModel { ref model, .. } if model == "QMOS"));

        // Duplicate names point at the second occurrence.
        let err = parse_netlist("R1 a 0 1k\nR1 a 0 1k\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(matches!(err, ParseError::DuplicateElement { .. }));

        // Device-level rejection keeps the element position.
        let err = parse_netlist("R1 a 0 -5\n").unwrap_err();
        assert!(
            matches!(
                err,
                ParseError::Device {
                    line: 1,
                    column: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn parse_error_converts_to_circuit_error() {
        let err = parse_netlist("R1 a b\n").unwrap_err();
        let circuit_err = CircuitError::from(err);
        assert!(circuit_err.to_string().contains("line 1"));
    }

    #[test]
    fn node_names_listing() {
        let p = parse_netlist("R1 alpha beta 1k\nR2 beta 0 1k\n").unwrap();
        assert_eq!(p.node_names(), vec!["alpha".to_owned(), "beta".to_owned()]);
        assert_eq!(p.node("0"), Some(Circuit::GROUND));
        assert_eq!(p.node("GND"), Some(Circuit::GROUND));
        assert_eq!(p.node("missing"), None);
        assert_eq!(p.device("zz"), None);
    }
}
