//! A compact transient circuit simulator and interconnect-optimization
//! toolkit — the substitute for the paper's HSPICE + SPACE3D flow (§4).
//!
//! What the paper needed from SPICE is narrow: the **current waveform at
//! the output of an optimally sized repeater driving an optimally long
//! distributed RC line** (its Fig. 7), reduced to peak/RMS current
//! densities and an effective duty cycle (its Tables 5–6). This crate
//! rebuilds that flow from scratch:
//!
//! * [`linalg`] — dense LU with partial pivoting; [`sparse`] — sparse
//!   LU (Gilbert–Peierls) with factorization reuse; [`solver`] — the
//!   automatic dense/sparse crossover both assembly paths stamp into.
//! * [`netlist`] — R/C/V/I devices plus a level-1 MOSFET and a CMOS
//!   inverter macro; [`sources`] provides DC/pulse/PWL waveforms.
//! * [`transient`] — MNA assembly, Newton iteration, and
//!   backward-Euler/trapezoidal integration.
//! * [`rcline`] — N-segment π-ladder distributed lines.
//! * [`extract`] — closed-form per-layer r and c extraction
//!   (Sakurai–Tamaru), replacing the 3-D field solver.
//! * [`repeater`] — the optimum of eqs. (16)–(17)
//!   (`l_opt`, `s_opt`), testbench construction, and waveform
//!   post-processing into [`hotwire_em::CurrentStats`].
//!
//! # Examples
//!
//! ```
//! use hotwire_circuit::netlist::Circuit;
//! use hotwire_circuit::sources::SourceWaveform;
//! use hotwire_circuit::transient::{simulate, TransientOptions};
//!
//! // An RC low-pass: 1 kΩ into 1 nF, driven by a 1 V step.
//! let mut c = Circuit::new();
//! let vin = c.node();
//! let vout = c.node();
//! c.voltage_source(vin, Circuit::GROUND, SourceWaveform::dc(1.0));
//! c.resistor(vin, vout, 1.0e3);
//! c.capacitor(vout, Circuit::GROUND, 1.0e-9);
//! let result = simulate(&c, 5.0e-6, TransientOptions::default())?;
//! let v_end = *result.voltage(vout).last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-2, "settles to the rail");
//! # Ok::<(), hotwire_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod cholesky;
mod error;
pub mod extract;
pub mod grid_dc;
pub mod linalg;
pub mod netlist;
pub mod ordering;
pub mod parser;
pub mod power_grid;
pub mod rcline;
pub mod repeater;
pub mod solver;
pub mod sources;
pub mod sparse;
pub mod transient;

pub use error::CircuitError;
pub use parser::ParseError;
