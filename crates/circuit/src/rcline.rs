//! Distributed RC transmission lines as N-segment π-ladders.

use hotwire_units::{CapacitancePerLength, Length, ResistancePerLength};
use serde::{Deserialize, Serialize};

use crate::netlist::{Circuit, NodeId};
use crate::CircuitError;

/// Per-unit-length electrical parameters of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineParams {
    /// Resistance per length, Ω/m.
    pub r: ResistancePerLength,
    /// Capacitance per length (to ground + coupling), F/m.
    pub c: CapacitancePerLength,
}

impl LineParams {
    /// The distributed RC delay constant `0.38·r·c·l²` of an unbuffered
    /// line of length `l` (Sakurai's coefficient for 50 % delay).
    #[must_use]
    pub fn elmore_delay(&self, length: Length) -> f64 {
        0.38 * self.r.value() * self.c.value() * length.value() * length.value()
    }

    /// Total line resistance.
    #[must_use]
    pub fn total_resistance(&self, length: Length) -> f64 {
        self.r.value() * length.value()
    }

    /// Total line capacitance.
    #[must_use]
    pub fn total_capacitance(&self, length: Length) -> f64 {
        self.c.value() * length.value()
    }
}

/// Handles into an RC line instantiated inside a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcLine {
    /// Node at the driven (near) end.
    pub input: NodeId,
    /// Node at the far end.
    pub output: NodeId,
    /// All segment-boundary nodes, input first, output last.
    pub taps: Vec<NodeId>,
    /// Device indices of the segment resistors, near to far — probe these
    /// for the current waveform along the line.
    pub segment_resistors: Vec<usize>,
}

impl RcLine {
    /// Builds an `n`-segment π-ladder between `input` and a new far-end
    /// node: each segment is R/n with C/(2n) to ground at both ends
    /// (adjacent halves merge, giving the classic π distribution).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] when `n = 0` or the line
    /// length is non-positive.
    pub fn build(
        circuit: &mut Circuit,
        input: NodeId,
        params: LineParams,
        length: Length,
        n: usize,
    ) -> Result<Self, CircuitError> {
        if n == 0 {
            return Err(CircuitError::InvalidDevice {
                message: "RC line needs at least one segment".to_owned(),
            });
        }
        if !(length.value() > 0.0) {
            return Err(CircuitError::InvalidDevice {
                message: "RC line length must be positive".to_owned(),
            });
        }
        #[allow(clippy::cast_precision_loss)]
        let seg_r = params.total_resistance(length) / n as f64;
        #[allow(clippy::cast_precision_loss)]
        let seg_c = params.total_capacitance(length) / n as f64;

        let mut taps = vec![input];
        let mut segment_resistors = Vec::with_capacity(n);
        // half-capacitor at the near end
        circuit.try_capacitor(input, Circuit::GROUND, seg_c / 2.0)?;
        let mut prev = input;
        for k in 0..n {
            let next = circuit.node();
            segment_resistors.push(circuit.try_resistor(prev, next, seg_r)?);
            // interior nodes get a full segment capacitance, the far end a half
            let c_here = if k == n - 1 { seg_c / 2.0 } else { seg_c };
            circuit.try_capacitor(next, Circuit::GROUND, c_here)?;
            taps.push(next);
            prev = next;
        }
        Ok(Self {
            input,
            output: prev,
            taps,
            segment_resistors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::SourceWaveform;
    use crate::transient::{simulate, TransientOptions};

    fn params() -> LineParams {
        LineParams {
            r: ResistancePerLength::new(15.0e3),   // 15 kΩ/m
            c: CapacitancePerLength::new(2.0e-10), // 200 pF/m
        }
    }

    #[test]
    fn totals_scale_with_length() {
        let p = params();
        let l = Length::from_millimeters(5.0);
        assert!((p.total_resistance(l) - 75.0).abs() < 1e-9);
        assert!((p.total_capacitance(l) - 1.0e-12).abs() < 1e-24);
        assert!(p.elmore_delay(l) > 0.0);
    }

    #[test]
    fn build_validation() {
        let mut c = Circuit::new();
        let a = c.node();
        assert!(RcLine::build(&mut c, a, params(), Length::from_millimeters(1.0), 0).is_err());
        assert!(RcLine::build(&mut c, a, params(), Length::ZERO, 4).is_err());
        let line = RcLine::build(&mut c, a, params(), Length::from_millimeters(1.0), 4).unwrap();
        assert_eq!(line.taps.len(), 5);
        assert_eq!(line.segment_resistors.len(), 4);
        assert_eq!(line.input, a);
        assert_eq!(*line.taps.last().unwrap(), line.output);
    }

    #[test]
    fn step_response_delay_matches_distributed_theory() {
        // Drive a 5 mm line with an ideal step; 50 % delay at the far end of
        // a distributed RC line is ≈ 0.38·R·C (Sakurai). A 32-segment ladder
        // should reproduce it within a few percent.
        let p = params();
        let l = Length::from_millimeters(5.0);
        let mut c = Circuit::new();
        let drv = c.node();
        c.voltage_source(drv, Circuit::GROUND, SourceWaveform::dc(1.0));
        let line = RcLine::build(&mut c, drv, p, l, 32).unwrap();
        let t_expected = p.elmore_delay(l);
        let result = simulate(
            &c,
            6.0 * t_expected,
            TransientOptions {
                dt: Some(t_expected / 400.0),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let v_out = result.voltage(line.output);
        let k50 = v_out.iter().position(|&v| v >= 0.5).expect("reaches 50 %");
        let t50 = result.times[k50];
        assert!(
            (t50 - t_expected).abs() / t_expected < 0.08,
            "t50 = {t50:.3e} vs 0.38·R·C = {t_expected:.3e}"
        );
    }

    #[test]
    fn more_segments_converge() {
        // The far-end 50 % delay should converge as segments increase.
        let p = params();
        let l = Length::from_millimeters(3.0);
        let mut t50s = Vec::new();
        for n in [2, 8, 32] {
            let mut c = Circuit::new();
            let drv = c.node();
            c.voltage_source(drv, Circuit::GROUND, SourceWaveform::dc(1.0));
            let line = RcLine::build(&mut c, drv, p, l, n).unwrap();
            let t_ref = p.elmore_delay(l);
            let result = simulate(
                &c,
                8.0 * t_ref,
                TransientOptions {
                    dt: Some(t_ref / 500.0),
                    ..TransientOptions::default()
                },
            )
            .unwrap();
            let v_out = result.voltage(line.output);
            let k50 = v_out.iter().position(|&v| v >= 0.5).unwrap();
            t50s.push(result.times[k50]);
        }
        let d_coarse = (t50s[0] - t50s[2]).abs();
        let d_fine = (t50s[1] - t50s[2]).abs();
        assert!(
            d_fine < d_coarse,
            "refinement must reduce discretization error: {t50s:?}"
        );
    }

    #[test]
    fn near_end_current_exceeds_far_end_current_during_charging() {
        // The paper: "the maximum RMS current occurs close to the repeater
        // output" — charge injected near the driver feeds the whole line.
        let p = params();
        let l = Length::from_millimeters(5.0);
        let mut c = Circuit::new();
        let drv = c.node();
        c.voltage_source(drv, Circuit::GROUND, SourceWaveform::dc(1.0));
        let line = RcLine::build(&mut c, drv, p, l, 16).unwrap();
        let t_ref = p.elmore_delay(l);
        let result = simulate(
            &c,
            6.0 * t_ref,
            TransientOptions {
                dt: Some(t_ref / 300.0),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        let i_near = result.resistor_current(&c, line.segment_resistors[0]);
        let i_far = result.resistor_current(&c, *line.segment_resistors.last().unwrap());
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(
            rms(&i_near) > 1.5 * rms(&i_far),
            "near RMS {} vs far RMS {}",
            rms(&i_near),
            rms(&i_far)
        );
    }
}
