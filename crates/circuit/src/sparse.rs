//! Sparse linear algebra for large MNA systems: compressed-column
//! storage, left-looking LU with partial pivoting (Gilbert–Peierls), and
//! a factorization object that separates the *symbolic* work (sparsity
//! pattern, pivot order, per-column elimination schedules) from the
//! *numeric* work (the actual values).
//!
//! Why this exists: MNA matrices of RC meshes and power grids are ≥ 99 %
//! zero beyond a few hundred nodes, and the engine solves the **same
//! structure repeatedly** — every timestep of a linear transient reuses
//! one factorization verbatim, and every Newton iteration of a nonlinear
//! one reuses the pivot order and fill pattern with new values
//! ([`Factorization::refactor`]). Dense LU is O(n³) per solve; this path
//! is O(nnz(L+U)) per re-solve and, on banded grid matrices, roughly
//! O(n·b²) to factor (b = bandwidth) instead of O(n³).
//!
//! ```
//! use hotwire_circuit::sparse::SparseMatrix;
//!
//! let mut m = SparseMatrix::zeros(3);
//! for i in 0..3 {
//!     m.add(i, i, 2.0);
//! }
//! m.add(0, 1, -1.0);
//! m.add(1, 0, -1.0);
//! let f = m.factor()?;
//! let x = f.solve(&[1.0, 0.0, 4.0]);
//! // tridiagonal-ish system; check A·x = b
//! assert!((2.0 * x[0] - x[1] - 1.0).abs() < 1e-12);
//! assert!((2.0 * x[2] - 4.0).abs() < 1e-12);
//! # Ok::<(), hotwire_circuit::CircuitError>(())
//! ```

use crate::CircuitError;

/// Pivot magnitudes below this are treated as singular (matches the
/// dense path in [`crate::linalg::Matrix`]).
const PIVOT_TINY: f64 = 1e-300;

/// A square sparse matrix assembled by MNA-style stamping.
///
/// Stamps are collected as coordinate triplets — duplicate `(r, c)`
/// stamps sum, exactly like the dense [`crate::linalg::Matrix::add`] —
/// and compressed to column-major form when factored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl SparseMatrix {
    /// Creates an empty `n × n` matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            triplets: Vec::new(),
        }
    }

    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stamped triplets (before duplicate combination).
    #[must_use]
    pub fn stamp_count(&self) -> usize {
        self.triplets.len()
    }

    /// Removes every stamp (capacity is kept for re-stamping).
    pub fn clear(&mut self) {
        self.triplets.clear();
    }

    /// Adds `v` to entry `(r, c)` — the MNA stamping primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n && c < self.n, "index ({r},{c}) out of bounds");
        // CAST(row/col indices are < n, asserted above, and grid sizes
        // stay far below u32::MAX): compact triplet storage.
        #[allow(clippy::cast_possible_truncation)]
        self.triplets.push((r as u32, c as u32, v));
    }

    /// Matrix–vector product `A·v` (for tests and residual checks).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        let mut out = vec![0.0; self.n];
        for &(r, c, val) in &self.triplets {
            out[r as usize] += val * v[c as usize];
        }
        out
    }

    /// Compresses the triplets into column-major (CSC) form, summing
    /// duplicates. Shared with the SPD path in [`crate::cholesky`].
    pub(crate) fn to_csc(&self) -> Csc {
        let n = self.n;
        let mut count = vec![0usize; n + 1];
        for &(_, c, _) in &self.triplets {
            count[c as usize + 1] += 1;
        }
        for j in 0..n {
            count[j + 1] += count[j];
        }
        let mut entries: Vec<(u32, f64)> = vec![(0, 0.0); self.triplets.len()];
        let mut cursor = count.clone();
        for &(r, c, v) in &self.triplets {
            let slot = cursor[c as usize];
            entries[slot] = (r, v);
            cursor[c as usize] += 1;
        }
        // Sort each column by row and combine duplicates in place.
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for j in 0..n {
            let col = &mut entries[count[j]..count[j + 1]];
            col.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in col.iter() {
                if row_idx.len() > col_ptr[j] && *row_idx.last().unwrap() == r {
                    *values.last_mut().unwrap() += v;
                } else {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = row_idx.len();
        }
        Csc {
            col_ptr,
            row_idx,
            values,
        }
    }

    /// The 1-norm ‖A‖₁ (maximum column absolute sum) of the stamped
    /// matrix, with duplicate stamps summed first — the cheap half of
    /// the Hager/Higham condition estimate.
    #[must_use]
    pub fn norm_1(&self) -> f64 {
        let csc = self.to_csc();
        csc.norm_1()
    }

    /// Factors `A = P⁻¹·L·U` by left-looking sparse LU with partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when no acceptable pivot exists
    /// in some column.
    pub fn factor(&self) -> Result<Factorization, CircuitError> {
        let csc = self.to_csc();
        Factorization::compute(self.n, &csc)
    }
}

/// Compressed-sparse-column view used internally by the factorizations
/// (both the LU here and the LDLᵀ in [`crate::cholesky`]).
#[derive(Debug, Clone)]
pub(crate) struct Csc {
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) row_idx: Vec<u32>,
    pub(crate) values: Vec<f64>,
}

impl Csc {
    /// ‖A‖₁ — maximum column absolute sum (duplicates already combined).
    pub(crate) fn norm_1(&self) -> f64 {
        (0..self.col_ptr.len().saturating_sub(1))
            .map(|j| {
                self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
                    .iter()
                    .map(|v| v.abs())
                    .sum()
            })
            .fold(0.0, f64::max)
    }

    /// Largest entry magnitude (pivot-growth denominator).
    pub(crate) fn max_abs(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }
}

/// A sparse LU factorization `P·A = L·U`.
///
/// The *symbolic* state — pivot order and the per-column topological
/// elimination schedules discovered during the first factorization — is
/// retained, so [`Factorization::refactor`] can refresh the numeric
/// values from a matrix with the **same sparsity pattern** without any
/// graph traversal, and [`Factorization::solve`] can be called any number
/// of times. This is what lets a linear transient factor once and
/// re-solve per timestep, and a Newton loop re-pivot-free per iteration.
#[derive(Debug, Clone)]
pub struct Factorization {
    n: usize,
    /// Strictly-lower L by column, row indices in pivot space.
    l_colptr: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// Strictly-upper U by column, row indices in pivot space.
    u_colptr: Vec<usize>,
    u_rows: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `pinv[orig_row] = pivot position`.
    pinv: Vec<u32>,
    /// Per-column elimination schedule (pivot space, topological order),
    /// for `refactor`.
    pattern_ptr: Vec<usize>,
    pattern_rows: Vec<u32>,
    /// ‖A‖₁ of the matrix behind the current numeric values, refreshed
    /// by [`Factorization::refactor`] — the cheap half of a condition
    /// estimate.
    anorm_1: f64,
    /// Pivot growth max|U| / max|A| of the current numeric values; a
    /// large factor means the elimination amplified entries and the
    /// factorization's backward error budget is spent.
    pivot_growth: f64,
}

impl Factorization {
    fn compute(n: usize, a: &Csc) -> Result<Self, CircuitError> {
        let mut f = Self {
            n,
            l_colptr: vec![0; n + 1],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_colptr: vec![0; n + 1],
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![0.0; n],
            pinv: vec![u32::MAX; n],
            pattern_ptr: vec![0; n + 1],
            pattern_rows: Vec::new(),
            anorm_1: a.norm_1(),
            pivot_growth: 0.0,
        };
        // Workspaces, all indexed by ORIGINAL row during factorization.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![u32::MAX; n]; // mark[i] == j ⇒ visited in column j
        let mut topo: Vec<u32> = Vec::with_capacity(n); // reach, topological order
        let mut dfs_stack: Vec<(u32, usize)> = Vec::new();

        // L columns during factorization carry ORIGINAL row indices; they
        // are remapped to pivot space once the pivot order is complete.
        for j in 0..n {
            // ---- symbolic: topo = Reach_L(pattern(A[:,j])) ----
            topo.clear();
            // CAST(column index j < n fits u32 — matrix dimensions are
            // bounded by the u32 index representation): mark-array tag.
            #[allow(clippy::cast_possible_truncation)]
            let ju = j as u32;
            for &r in &a.row_idx[a.col_ptr[j]..a.col_ptr[j + 1]] {
                if mark[r as usize] == ju {
                    continue;
                }
                // Iterative DFS over the graph of L (edges from a pivoted
                // row to the rows of its L column).
                dfs_stack.push((r, 0));
                mark[r as usize] = ju;
                while let Some(&(i, child)) = dfs_stack.last() {
                    let k = f.pinv[i as usize];
                    let mut descend: Option<u32> = None;
                    let mut child = child;
                    if k != u32::MAX {
                        let lo = f.l_colptr[k as usize];
                        let hi = f.l_colptr[k as usize + 1];
                        while lo + child < hi {
                            let next = f.l_rows[lo + child];
                            child += 1;
                            if mark[next as usize] != ju {
                                mark[next as usize] = ju;
                                descend = Some(next);
                                break;
                            }
                        }
                    }
                    if let Some(next) = descend {
                        dfs_stack.last_mut().unwrap().1 = child;
                        dfs_stack.push((next, 0));
                    } else {
                        dfs_stack.pop();
                        topo.push(i); // post-order ⇒ reverse is topological
                    }
                }
            }
            topo.reverse();

            // ---- numeric: sparse triangular solve then pivot ----
            for &i in &topo {
                x[i as usize] = 0.0;
            }
            for (&r, &v) in a.row_idx[a.col_ptr[j]..a.col_ptr[j + 1]]
                .iter()
                .zip(&a.values[a.col_ptr[j]..a.col_ptr[j + 1]])
            {
                x[r as usize] = v;
            }
            for &i in &topo {
                let k = f.pinv[i as usize];
                if k == u32::MAX {
                    continue;
                }
                let xi = x[i as usize];
                if xi != 0.0 {
                    let (lo, hi) = (f.l_colptr[k as usize], f.l_colptr[k as usize + 1]);
                    for (&r, &v) in f.l_rows[lo..hi].iter().zip(&f.l_vals[lo..hi]) {
                        x[r as usize] -= v * xi;
                    }
                }
            }

            // Partial pivot: the largest unpivoted entry.
            let mut pivot_row = u32::MAX;
            let mut pivot_abs = 0.0f64;
            for &i in &topo {
                if f.pinv[i as usize] == u32::MAX {
                    let v = x[i as usize].abs();
                    if v > pivot_abs {
                        pivot_abs = v;
                        pivot_row = i;
                    }
                }
            }
            if pivot_abs < PIVOT_TINY {
                return Err(CircuitError::Singular { row: j });
            }
            #[allow(clippy::cast_possible_truncation)]
            {
                // CAST(pivot position j < n fits u32 — same bound as the
                // row indices it inverts): pinv stores positions compactly.
                f.pinv[pivot_row as usize] = j as u32;
            }
            let pivot_val = x[pivot_row as usize];
            f.u_diag[j] = pivot_val;

            // Emit U (already-pivoted rows) and L (the rest), and record
            // the elimination schedule for refactor.
            for &i in &topo {
                let k = f.pinv[i as usize];
                if i == pivot_row {
                    continue;
                }
                if k != u32::MAX && (k as usize) < j {
                    f.u_rows.push(k);
                    f.u_vals.push(x[i as usize]);
                } else {
                    f.l_rows.push(i); // original space; remapped below
                    f.l_vals.push(x[i as usize] / pivot_val);
                }
            }
            f.u_colptr[j + 1] = f.u_rows.len();
            f.l_colptr[j + 1] = f.l_rows.len();
            f.pattern_rows.extend_from_slice(&topo);
            f.pattern_ptr[j + 1] = f.pattern_rows.len();
        }

        // Remap L rows and the stored schedules into pivot space: every
        // original row now has a pivot position.
        for r in &mut f.l_rows {
            *r = f.pinv[*r as usize];
        }
        for r in &mut f.pattern_rows {
            *r = f.pinv[*r as usize];
        }
        f.pivot_growth = Self::growth(&f.u_vals, &f.u_diag, a.max_abs());
        Ok(f)
    }

    /// max|U| / max|A| — how much elimination amplified the entries.
    fn growth(u_vals: &[f64], u_diag: &[f64], max_a: f64) -> f64 {
        let max_u = u_vals
            .iter()
            .chain(u_diag)
            .map(|v| v.abs())
            .fold(0.0, f64::max);
        if max_a > 0.0 {
            max_u / max_a
        } else {
            0.0
        }
    }

    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros in `L + U` (fill-in diagnostic).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// ‖A‖₁ of the matrix behind the current numeric values (refreshed
    /// on [`Factorization::refactor`]).
    #[must_use]
    pub fn anorm_1(&self) -> f64 {
        self.anorm_1
    }

    /// Pivot growth max|U| / max|A| of the current numeric values. Near
    /// 1 on well-behaved MNA stamps; large values mean the factors have
    /// amplified round-off and the solve's backward error is degraded.
    #[must_use]
    pub fn pivot_growth(&self) -> f64 {
        self.pivot_growth
    }

    /// Recomputes the numeric factors from a matrix with the **same
    /// sparsity pattern** (same stamping structure), reusing the pivot
    /// order and elimination schedules — no graph traversal, no pivot
    /// search. This is the Newton-iteration fast path.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] when a reused pivot becomes
    /// numerically zero; callers should fall back to a fresh
    /// [`SparseMatrix::factor`] (which re-pivots) in that case.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension differs from the factored one.
    pub fn refactor(&mut self, matrix: &SparseMatrix) -> Result<(), CircuitError> {
        assert_eq!(matrix.n, self.n, "refactor dimension mismatch");
        let a = matrix.to_csc();
        let mut x = vec![0.0f64; self.n];
        for j in 0..self.n {
            let pattern = &self.pattern_rows[self.pattern_ptr[j]..self.pattern_ptr[j + 1]];
            for &k in pattern {
                x[k as usize] = 0.0;
            }
            for (&r, &v) in a.row_idx[a.col_ptr[j]..a.col_ptr[j + 1]]
                .iter()
                .zip(&a.values[a.col_ptr[j]..a.col_ptr[j + 1]])
            {
                x[self.pinv[r as usize] as usize] = v;
            }
            for &k in pattern {
                let k = k as usize;
                if k >= j {
                    continue;
                }
                let xk = x[k];
                if xk != 0.0 {
                    let (lo, hi) = (self.l_colptr[k], self.l_colptr[k + 1]);
                    for (&r, &v) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                        x[r as usize] -= v * xk;
                    }
                }
            }
            let pivot_val = x[j];
            if pivot_val.abs() < PIVOT_TINY {
                return Err(CircuitError::Singular { row: j });
            }
            self.u_diag[j] = pivot_val;
            for slot in self.u_colptr[j]..self.u_colptr[j + 1] {
                self.u_vals[slot] = x[self.u_rows[slot] as usize];
            }
            for slot in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.l_vals[slot] = x[self.l_rows[slot] as usize] / pivot_val;
            }
        }
        self.anorm_1 = a.norm_1();
        self.pivot_growth = Self::growth(&self.u_vals, &self.u_diag, a.max_abs());
        Ok(())
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (resized to `n`) —
    /// the allocation-free per-timestep path.
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        x.clear();
        x.resize(self.n, 0.0);
        // x ← P·b
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i] as usize] = bi;
        }
        // Forward: L·y = P·b (unit diagonal).
        for j in 0..self.n {
            let xj = x[j];
            if xj != 0.0 {
                let (lo, hi) = (self.l_colptr[j], self.l_colptr[j + 1]);
                for (&r, &v) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                    x[r as usize] -= v * xj;
                }
            }
        }
        // Backward: U·x = y.
        for j in (0..self.n).rev() {
            let xj = x[j] / self.u_diag[j];
            x[j] = xj;
            if xj != 0.0 {
                let (lo, hi) = (self.u_colptr[j], self.u_colptr[j + 1]);
                for (&r, &v) in self.u_rows[lo..hi].iter().zip(&self.u_vals[lo..hi]) {
                    x[r as usize] -= v * xj;
                }
            }
        }
    }

    /// Solves `Aᵀ·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    #[must_use]
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_transposed_into(b, &mut x);
        x
    }

    /// Solves `Aᵀ·x = b` into a caller-provided buffer (resized to `n`).
    ///
    /// With `A = P⁻¹·L·U` this is `Uᵀ·Lᵀ·P·x = b`: a forward pass on
    /// `Uᵀ` (gathering each stored U column as a row), a backward pass
    /// on `Lᵀ`, and a final un-permutation. Same O(nnz(L+U)) cost as
    /// [`Factorization::solve_into`] — it powers the `Aᵀ` solves of the
    /// Hager/Higham condition estimator without a second factorization.
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != n`.
    pub fn solve_transposed_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let mut w = b.to_vec();
        // Forward: Uᵀ·w = b. Row j of Uᵀ is stored as U's column j
        // (rows r < j), so this is a gather (dot product) per row.
        for j in 0..self.n {
            let (lo, hi) = (self.u_colptr[j], self.u_colptr[j + 1]);
            let mut acc = w[j];
            for (&r, &v) in self.u_rows[lo..hi].iter().zip(&self.u_vals[lo..hi]) {
                acc -= v * w[r as usize];
            }
            w[j] = acc / self.u_diag[j];
        }
        // Backward: Lᵀ·v = w (unit diagonal); row j of Lᵀ is L's
        // column j (rows r > j).
        for j in (0..self.n).rev() {
            let (lo, hi) = (self.l_colptr[j], self.l_colptr[j + 1]);
            let mut acc = w[j];
            for (&r, &v) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                acc -= v * w[r as usize];
            }
            w[j] = acc;
        }
        // Un-permute: x = Pᵀ·v, the inverse of solve_into's scatter.
        x.clear();
        x.resize(self.n, 0.0);
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = w[self.pinv[i] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the 5-point Laplacian of a `rows × cols` grid plus a small
    /// diagonal shift — the shape of every power-grid MNA matrix here.
    fn grid_laplacian(rows: usize, cols: usize) -> SparseMatrix {
        let n = rows * cols;
        let mut m = SparseMatrix::zeros(n);
        let at = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                m.add(at(r, c), at(r, c), 1e-9); // gmin-like shift
                let mut couple = |a: usize, b: usize| {
                    m.add(a, a, 1.0);
                    m.add(b, b, 1.0);
                    m.add(a, b, -1.0);
                    m.add(b, a, -1.0);
                };
                if c + 1 < cols {
                    couple(at(r, c), at(r, c + 1));
                }
                if r + 1 < rows {
                    couple(at(r, c), at(r + 1, c));
                }
            }
        }
        // Ground one corner strongly so the system is well-posed.
        m.add(0, 0, 1.0e3);
        m
    }

    fn residual_norm(m: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
        m.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn identity_solve() {
        let mut m = SparseMatrix::zeros(4);
        for i in 0..4 {
            m.add(i, i, 2.0);
        }
        let f = m.factor().unwrap();
        let x = f.solve(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] — MNA voltage-source incidence shape.
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.factor().unwrap().solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_stamps_sum() {
        let mut m = SparseMatrix::zeros(1);
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        let x = m.factor().unwrap().solve(&[4.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grid_system_round_trip() {
        let m = grid_laplacian(13, 17);
        let n = m.n();
        #[allow(clippy::cast_precision_loss)]
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let f = m.factor().unwrap();
        let x = f.solve(&b);
        assert!(residual_norm(&m, &x, &b) < 1e-9);
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        let m = grid_laplacian(9, 9);
        let mut f = m.factor().unwrap();
        // Same pattern, scaled values.
        let mut m2 = SparseMatrix::zeros(m.n());
        for &(r, c, v) in &m.triplets {
            m2.add(r as usize, c as usize, v * 3.25);
        }
        f.refactor(&m2).unwrap();
        let b: Vec<f64> = (0..m.n())
            .map(|i| f64::from(u32::try_from(i % 5).unwrap()))
            .collect();
        let x = f.solve(&b);
        assert!(
            residual_norm(&m2, &x, &b) < 1e-9,
            "refactored solve must satisfy A2"
        );
    }

    #[test]
    fn singular_detected() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        assert!(matches!(m.factor(), Err(CircuitError::Singular { .. })));
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let mut m = SparseMatrix::zeros(3);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        // column 2 never stamped
        assert!(matches!(m.factor(), Err(CircuitError::Singular { .. })));
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let m = grid_laplacian(6, 6);
        let f = m.factor().unwrap();
        let b1 = vec![1.0; m.n()];
        let b2 = vec![-2.0; m.n()];
        let mut x = Vec::new();
        f.solve_into(&b1, &mut x);
        assert!(residual_norm(&m, &x, &b1) < 1e-9);
        f.solve_into(&b2, &mut x);
        assert!(residual_norm(&m, &x, &b2) < 1e-9);
    }

    #[test]
    fn transposed_solve_satisfies_the_transposed_system() {
        // Unsymmetric matrix, so Aᵀ ≠ A and the permutation matters.
        let mut m = SparseMatrix::zeros(4);
        let entries = [
            (0, 0, 0.1),
            (0, 1, 2.0),
            (1, 0, 3.0),
            (1, 2, -1.0),
            (2, 1, -4.0),
            (2, 2, 5.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (3, 3, 2.5),
        ];
        for (r, c, v) in entries {
            m.add(r, c, v);
        }
        let f = m.factor().unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let x = f.solve_transposed(&b);
        // Aᵀx = b ⇔ for each column c of A: Σ_r A[r,c]·x[r] = b[c].
        let mut atx = [0.0; 4];
        for (r, c, v) in entries {
            atx[c] += v * x[r];
        }
        for (got, want) in atx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12, "{atx:?} vs {b:?}");
        }
    }

    #[test]
    fn transposed_solve_matches_plain_solve_on_symmetric_grids() {
        let m = grid_laplacian(7, 5);
        let f = m.factor().unwrap();
        let b: Vec<f64> = (0..m.n()).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let x = f.solve(&b);
        let xt = f.solve_transposed(&b);
        for (a, b) in x.iter().zip(&xt) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn norm_and_growth_diagnostics() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 3.0);
        m.add(0, 0, 1.0); // duplicate sums before |·|
        m.add(1, 0, -2.0);
        m.add(1, 1, 5.0);
        assert!((m.norm_1() - 6.0).abs() < 1e-15, "max(4+2, 5) = 6");
        let mut f = m.factor().unwrap();
        assert!((f.anorm_1() - 6.0).abs() < 1e-15);
        // Partial pivoting keeps growth modest on any 2×2.
        assert!(f.pivot_growth() >= 1.0 - 1e-12 && f.pivot_growth() <= 2.0);
        let mut m2 = SparseMatrix::zeros(2);
        m2.add(0, 0, 8.0);
        m2.add(1, 0, -4.0);
        m2.add(1, 1, 10.0);
        f.refactor(&m2).unwrap();
        assert!((f.anorm_1() - 12.0).abs() < 1e-15, "refreshed on refactor");
        assert!(f.pivot_growth() > 0.0);
    }

    #[test]
    fn fill_in_stays_sparse_on_grids() {
        // A 20×20 grid (400 unknowns): dense LU would hold 160 000
        // entries; banded fill should stay far below that.
        let m = grid_laplacian(20, 20);
        let f = m.factor().unwrap();
        assert!(
            f.nnz() < 40_000,
            "fill-in {} should be ≪ dense 160000",
            f.nnz()
        );
    }
}
