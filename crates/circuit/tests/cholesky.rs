//! Integration properties of the SPD Cholesky fast path: agreement with
//! the LU reference on random grid stamps, backend dispatch (SPD →
//! LDLᵀ, anything else → LU), and schedule-independent determinism.

use hotwire_circuit::solver::{MnaMatrix, SolverPath};
use hotwire_circuit::sparse::SparseMatrix;
use proptest::prelude::*;

/// Splitmix64 — a tiny deterministic generator so each case derives its
/// whole random grid from one proptest-supplied seed.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }
}

/// Stamps the weighted 5-point Laplacian of a `rows × cols` grid plus a
/// per-node leak to ground — exactly the shape `DcGridSolver` stamps,
/// and SPD by construction (diagonally dominant with positive diagonal).
fn random_spd_grid(rows: usize, cols: usize, mix: &mut Mix) -> SparseMatrix {
    let n = rows * cols;
    let mut m = SparseMatrix::zeros(n);
    let branch = |m: &mut SparseMatrix, a: usize, b: usize, g: f64| {
        m.add(a, a, g);
        m.add(b, b, g);
        m.add(a, b, -g);
        m.add(b, a, -g);
    };
    for r in 0..rows {
        for c in 0..cols {
            let here = r * cols + c;
            if c + 1 < cols {
                branch(&mut m, here, here + 1, mix.in_range(0.1, 10.0));
            }
            if r + 1 < rows {
                branch(&mut m, here, here + cols, mix.in_range(0.1, 10.0));
            }
            m.add(here, here, mix.in_range(1.0e-3, 1.0));
        }
    }
    m
}

fn random_rhs(n: usize, mix: &mut Mix) -> Vec<f64> {
    (0..n).map(|_| mix.in_range(-1.0, 1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any SPD grid stamp the LDLᵀ solution must agree with the
    /// Gilbert–Peierls LU solution to 1e-9 relative.
    #[test]
    fn cholesky_agrees_with_lu_on_random_spd_grids(
        rows in 2_usize..14,
        cols in 2_usize..14,
        seed in 0_u64..u64::MAX,
    ) {
        let mut mix = Mix(seed);
        let m = random_spd_grid(rows, cols, &mut mix);
        let b = random_rhs(rows * cols, &mut mix);
        let chol = m.factor_cholesky().expect("grid stamp is SPD");
        let lu = m.factor().expect("grid stamp is nonsingular");
        let xc = chol.solve(&b);
        let xl = lu.solve(&b);
        let scale = xl.iter().fold(1.0_f64, |s, &v| s.max(v.abs()));
        for (k, (&a, &r)) in xc.iter().zip(&xl).enumerate() {
            prop_assert!(
                (a - r).abs() <= 1.0e-9 * scale,
                "node {k}: cholesky {a} vs lu {r} (scale {scale})"
            );
        }
    }

    /// The parallel subtree schedule must produce the factor the serial
    /// elimination produces, bit for bit — same arithmetic, same order.
    #[test]
    fn parallel_factorization_is_bitwise_deterministic(
        rows in 2_usize..16,
        cols in 2_usize..16,
        seed in 0_u64..u64::MAX,
    ) {
        let mut mix = Mix(seed);
        let m = random_spd_grid(rows, cols, &mut mix);
        let par = m.factor_cholesky().expect("parallel factor");
        let ser = m.factor_cholesky_serial().expect("serial factor");
        prop_assert_eq!(par.nnz(), ser.nnz());
        for (a, b) in par.l_values().iter().zip(ser.l_values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in par.diagonal().iter().zip(ser.diagonal()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Breaking symmetry (or definiteness) on an otherwise-SPD stamp
    /// must route the `MnaMatrix` dispatch to sparse LU, and the LU
    /// answer must still satisfy the system.
    #[test]
    fn non_spd_stamps_fall_back_to_lu(
        rows in 6_usize..14,
        cols in 6_usize..14,
        seed in 0_u64..u64::MAX,
        flip_sign in any::<bool>(),
    ) {
        let n = rows * cols;
        let mut m = MnaMatrix::sparse(n);
        stamp_grid_into(&mut m, rows, cols, &mut Mix(seed));
        if flip_sign {
            // Kill a diagonal: subtract more than the dominant entry.
            m.add(0, 0, -1.0e6);
        } else {
            // Break symmetry.
            m.add(0, 1, 17.0);
        }
        let f = m.factor().expect("LU fallback still factors");
        prop_assert_eq!(f.path(), SolverPath::SparseLu);
        let b = random_rhs(n, &mut Mix(seed ^ 0xabcd));
        let x = f.solve(&b);
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }
}

/// Stamps the same random grid as [`random_spd_grid`] into an
/// [`MnaMatrix`], consuming the `Mix` stream identically.
fn stamp_grid_into(m: &mut MnaMatrix, rows: usize, cols: usize, mix: &mut Mix) {
    let branch = |m: &mut MnaMatrix, a: usize, b: usize, g: f64| {
        m.add(a, a, g);
        m.add(b, b, g);
        m.add(a, b, -g);
        m.add(b, a, -g);
    };
    for r in 0..rows {
        for c in 0..cols {
            let here = r * cols + c;
            if c + 1 < cols {
                branch(m, here, here + 1, mix.in_range(0.1, 10.0));
            }
            if r + 1 < rows {
                branch(m, here, here + cols, mix.in_range(0.1, 10.0));
            }
            m.add(here, here, mix.in_range(1.0e-3, 1.0));
        }
    }
}

/// The dispatch-side positive control: the SPD stamp itself must come
/// back on the Cholesky path (the fallback test above only proves the
/// negative direction).
#[test]
fn spd_stamps_take_the_cholesky_path() {
    let (rows, cols) = (12, 13);
    let n = rows * cols;
    let mut m = MnaMatrix::sparse(n);
    stamp_grid_into(&mut m, rows, cols, &mut Mix(42));
    let f = m.factor().expect("SPD stamp factors");
    assert_eq!(f.path(), SolverPath::SparseCholesky);
    // And the residual closes: rebuild the same matrix as SparseMatrix.
    let mut mix = Mix(42);
    let a = random_spd_grid(rows, cols, &mut mix);
    let b = random_rhs(n, &mut mix);
    let x = f.solve(&b);
    let ax = a.mul_vec(&x);
    let scale = b.iter().fold(1.0_f64, |s, &v| s.max(v.abs()));
    for (k, (&lhs, &rhs)) in ax.iter().zip(&b).enumerate() {
        assert!(
            (lhs - rhs).abs() < 1.0e-9 * scale,
            "residual at node {k}: {lhs} vs {rhs}"
        );
    }
}
