//! The `hotwire serve` HTTP layer: a dependency-free blocking listener
//! that makes the metrics registry scrapeable and the coupled signoff
//! engine callable while the process stays up.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the process-wide registry in Prometheus
//!   text-exposition format 0.0.4 ([`hotwire_obs::prom`]).
//! * `GET /healthz` — liveness; `200 ok` whenever the accept loop runs.
//! * `POST /signoff` — runs one coupled EM–IR–thermal signoff on the
//!   server's template grid (optionally overridden by a JSON body with
//!   `rows`/`cols`) and returns a JSON verdict. Each request exercises
//!   the real engine, so scraping `/metrics` during a load burst shows
//!   the solver's latency distribution, not synthetic numbers.
//!
//! The implementation is std-only: a nonblocking [`TcpListener`] accept
//! loop that polls a shutdown flag (so SIGTERM/ctrl-c can stop it
//! between accepts) and hands connections to a small fixed thread pool
//! over an [`mpsc`] channel. HTTP support is the minimal correct subset:
//! one request per connection, `Connection: close` semantics, bodies up
//! to [`MAX_REQUEST_BYTES`].
//!
//! Every response carries a process-unique `X-Hotwire-Request-Id`
//! header. The same ID tags the request's root `serve.request` span
//! (whose latency histogram is scrapeable on `/metrics`) and any
//! structured error event the handler emits, so a failing client call
//! can be matched to the server-side diagnostics it produced.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hotwire_coupled::{CoupledEngine, CoupledError, CoupledGridSpec, CoupledOptions};
use hotwire_obs::json::Json;
use hotwire_obs::trace::{self, FieldValue, Level};
use hotwire_obs::{metrics, prom, recorder};

/// Hard cap on a request (start line + headers + body); larger
/// requests are answered `413` and the connection dropped.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// How long the accept loop sleeps when no connection is pending
/// before re-checking the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection socket read timeout, so a stalled client cannot pin
/// a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// What the server needs besides a socket: worker count and the
/// signoff template a `POST /signoff` instantiates.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling accepted connections.
    pub threads: usize,
    /// Grid template for per-request signoffs.
    pub spec: CoupledGridSpec,
    /// Solver options for per-request signoffs.
    pub options: CoupledOptions,
    /// Where diagnostic bundles land (failed signoffs, SIGUSR1
    /// snapshots). `None` disables bundle writing.
    pub bundle_dir: Option<String>,
}

impl ServeConfig {
    /// A small default: 4 workers, the demo 20×20 grid, no bundles.
    #[must_use]
    pub fn demo() -> Self {
        Self {
            threads: 4,
            spec: CoupledGridSpec::demo(20, 20),
            options: CoupledOptions::default(),
            bundle_dir: None,
        }
    }
}

/// Operator-requested bundle-dump flag: the CLI's SIGUSR1 handler sets
/// it (an atomic store is async-signal-safe), and the accept loop polls
/// it between accepts — the dump itself runs on the server thread, not
/// in the handler.
static DUMP_REQUEST: AtomicBool = AtomicBool::new(false);

/// The flag a SIGUSR1 handler should set to request a diagnostic
/// bundle from a running [`Server`].
#[must_use]
pub fn dump_flag() -> &'static AtomicBool {
    &DUMP_REQUEST
}

/// A bound-but-not-yet-serving listener, so callers (and the e2e test)
/// can learn the ephemeral port before the accept loop starts.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port taken, privileged port, …).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener })
    }

    /// The actual bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` becomes `true`, then drains the worker
    /// pool and returns. The flag is polled between accepts (every
    /// [`ACCEPT_POLL`] at the latest), so a signal handler that only
    /// sets the flag produces a graceful exit.
    ///
    /// # Errors
    ///
    /// Returns the error that made the listener unusable; per-connection
    /// I/O failures are counted (`serve.errors`) and do not stop the
    /// loop.
    pub fn run(self, config: &ServeConfig, shutdown: &Arc<AtomicBool>) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for _ in 0..config.threads.max(1) {
            let rx = Arc::clone(&rx);
            let config = config.clone();
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock only for recv keeps hand-off fair.
                let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                match next {
                    Ok(stream) => handle_connection(stream, &config),
                    Err(_) => break, // sender dropped: shutting down
                }
            }));
        }
        // SAFETY(ordering): SeqCst load pairing with the signal
        // handler's SeqCst store; the loop only needs to eventually
        // observe the flag, and stronger-than-needed is fine here.
        while !shutdown.load(Ordering::SeqCst) {
            // SAFETY(ordering): swap is the whole protocol — the handler
            // stores true, exactly one poll observes and clears it.
            if DUMP_REQUEST.swap(false, Ordering::SeqCst) {
                match &config.bundle_dir {
                    Some(dir) => match recorder::write_bundle(
                        dir,
                        "sigusr1",
                        "operator-requested snapshot (SIGUSR1)",
                        None,
                        None,
                    ) {
                        Ok(path) => println!("diagnostic bundle: {path}"),
                        Err(_) => metrics::counter("serve.errors").inc(),
                    },
                    None => recorder::record(
                        "error",
                        format_args!("SIGUSR1 received but no --bundle-dir configured"),
                    ),
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    drop(tx);
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            }
        }
        drop(tx); // workers drain queued connections, then exit
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// A parsed-enough HTTP request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the parser).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// A response ready to serialize: status, content type, body, and the
/// request ID echoed back as `X-Hotwire-Request-Id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Server-assigned request ID (`req-xxxxxxxx`), sent back in the
    /// `X-Hotwire-Request-Id` header so a client-observed failure can
    /// be matched to the server's structured error events and the
    /// captured `serve.request` span.
    pub request_id: Option<String>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            request_id: None,
        }
    }

    fn json(status: u16, body: &Json) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: format!("{}\n", body.to_pretty_string()).into_bytes(),
            request_id: None,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            _ => "Internal Server Error",
        }
    }
}

/// Process-wide allocator behind every `X-Hotwire-Request-Id`.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates the next request ID in its rendered `req-xxxxxxxx` form.
fn next_request_id() -> String {
    format!(
        "req-{:08x}",
        // SAFETY(ordering): pure ID allocator — uniqueness is the only
        // requirement, which fetch_add guarantees at any ordering.
        NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
    )
}

/// Routes one request. Pure (no I/O beyond the signoff engine), so the
/// unit tests exercise every endpoint without opening sockets.
///
/// Every request gets a process-unique ID: it roots the request-scoped
/// `serve.request` span (feeding the latency histogram of the same
/// name on `/metrics`), tags any structured error event the handler
/// emits, and is echoed to the client via [`Response::request_id`].
#[must_use]
pub fn route(request: &Request, config: &ServeConfig) -> Response {
    metrics::counter("serve.requests").inc();
    let request_id = next_request_id();
    let _span = trace::span_with(
        "serve.request",
        &[("request_id", FieldValue::Str(&request_id))],
    );
    let mut response = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => Response {
            status: 200,
            // The exposition-format content type, version pinned.
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: prom::render(&metrics::snapshot()).into_bytes(),
            request_id: None,
        },
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("POST", "/signoff") => signoff_response(&request.body, config, &request_id),
        (_, "/metrics" | "/healthz" | "/signoff") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    };
    recorder::record(
        "request",
        format_args!(
            "{request_id} {} {} -> {}",
            request.method, request.path, response.status
        ),
    );
    response.request_id = Some(request_id);
    response
}

/// Runs one coupled signoff from the template (body may override
/// `rows`/`cols`) and renders the verdict as JSON. Engine failures are
/// logged as structured error events carrying `request_id`, and the
/// same ID rides in the 500 body so the client can quote it.
fn signoff_response(body: &[u8], config: &ServeConfig, request_id: &str) -> Response {
    let mut spec = config.spec.clone();
    if !body.is_empty() {
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::text(400, "body is not UTF-8\n");
        };
        let parsed = match hotwire_obs::json::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::text(400, format!("bad JSON body: {e}\n")),
        };
        let dim = |key: &str, default: usize| -> Result<usize, Response> {
            match parsed.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .filter(|&n| (2..=500).contains(&n))
                    .ok_or_else(|| {
                        Response::text(400, format!("`{key}` must be an integer in [2, 500]\n"))
                    }),
            }
        };
        match (dim("rows", spec.rows), dim("cols", spec.cols)) {
            (Ok(rows), Ok(cols)) => {
                spec.rows = rows;
                spec.cols = cols;
                // The demo pad layout is the four corners; keep it
                // valid for the overridden dimensions.
                spec.pads = vec![(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)];
            }
            (Err(r), _) | (_, Err(r)) => return r,
        }
    }
    metrics::counter("serve.signoffs").inc();
    let _timer = metrics::timer("serve.signoff").start();
    // Keep the engine reachable on failure: its health report (Picard
    // rate fit, condition estimate, residuals) goes into the bundle.
    let result: Result<_, (CoupledError, Option<Json>)> =
        match CoupledEngine::new(spec, config.options.clone()) {
            Err(e) => Err((e, None)),
            Ok(mut engine) => match engine.run().and_then(|()| engine.assess()) {
                Ok(report) => Ok(report),
                Err(e) => {
                    let health = engine.health_report().to_json();
                    Err((e, Some(health)))
                }
            },
        };
    match result {
        Ok(report) => {
            let violations = report.violations().len();
            Response::json(
                200,
                &Json::object([
                    ("ok", Json::from(report.passes())),
                    (
                        "iterations",
                        Json::from(u64::try_from(report.iterations).unwrap_or(0)),
                    ),
                    (
                        "worst_ir_drop_mv",
                        Json::from(report.worst_ir_drop.value() * 1e3),
                    ),
                    (
                        "peak_temperature_c",
                        Json::from(report.peak_temperature.to_celsius().value()),
                    ),
                    (
                        "straps",
                        Json::from(u64::try_from(report.branches.len()).unwrap_or(0)),
                    ),
                    (
                        "violations",
                        Json::from(u64::try_from(violations).unwrap_or(0)),
                    ),
                    (
                        "chip_ttf_hours",
                        report
                            .chip_ttf
                            .map_or(Json::Null, |t| Json::from(t.value() / 3600.0)),
                    ),
                ]),
            )
        }
        Err((e, health)) => {
            metrics::counter("serve.errors").inc();
            let message = e.to_string();
            trace::event(
                Level::Error,
                "serve",
                "signoff failed",
                &[
                    ("request_id", FieldValue::Str(request_id)),
                    ("error", FieldValue::Str(&message)),
                ],
            );
            recorder::record(
                "error",
                format_args!("{request_id} signoff failed: {message}"),
            );
            // A failed request is exactly when the flight recorder pays
            // off: freeze it into a bundle and quote the path next to
            // the request ID, so `hotwire doctor <bundle>` picks up
            // where the 500 left off.
            let bundle_path = config.bundle_dir.as_deref().and_then(|dir| {
                recorder::write_bundle(
                    dir,
                    "request-error",
                    &format!("{request_id}: {message}"),
                    health.as_ref(),
                    None,
                )
                .ok()
            });
            Response::json(
                500,
                &Json::object([
                    ("error", Json::from(message)),
                    ("request_id", Json::from(request_id)),
                    ("bundle", bundle_path.map_or(Json::Null, Json::from)),
                ]),
            )
        }
    }
}

/// Reads one request off the stream, routes it, writes the response,
/// closes. Any protocol or I/O failure just counts an error — a broken
/// client must not take the server down.
fn handle_connection(stream: TcpStream, config: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut stream = stream;
    let response = match read_request(&mut stream) {
        Ok(request) => route(&request, config),
        Err(status) => {
            metrics::counter("serve.errors").inc();
            let request_id = next_request_id();
            trace::event(
                Level::Error,
                "serve",
                "unreadable request",
                &[
                    ("request_id", FieldValue::Str(&request_id)),
                    ("status", FieldValue::U64(u64::from(status))),
                ],
            );
            let mut response = Response::text(status, "bad request\n");
            response.request_id = Some(request_id);
            response
        }
    };
    let mut header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    if let Some(id) = &response.request_id {
        header.push_str(&format!("X-Hotwire-Request-Id: {id}\r\n"));
    }
    header.push_str("Connection: close\r\n\r\n");
    let _ = stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush());
}

/// Reads start line + headers + `Content-Length` body. Returns the
/// HTTP status to answer with on failure.
fn read_request(stream: &mut TcpStream) -> Result<Request, u16> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0_u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(413);
        }
        let n = stream.read(&mut chunk).map_err(|_| 400_u16)?;
        if n == 0 {
            return Err(400);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| 400_u16)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(400_u16)?;
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or(400_u16)?.to_uppercase();
    let target = parts.next().ok_or(400_u16)?;
    let path = target.split('?').next().unwrap_or(target).to_owned();
    let mut content_length = 0_usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| 400_u16)?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(413);
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| 400_u16)?;
        if n == 0 {
            return Err(400);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            body: Vec::new(),
        }
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            threads: 1,
            spec: CoupledGridSpec::demo(6, 6),
            options: CoupledOptions::default(),
            bundle_dir: None,
        }
    }

    #[test]
    fn healthz_is_200() {
        let r = route(&get("/healthz"), &small_config());
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"ok\n");
    }

    #[test]
    fn metrics_render_exposition() {
        let r = route(&get("/metrics"), &small_config());
        assert_eq!(r.status, 200);
        assert!(r.content_type.contains("version=0.0.4"));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("hotwire_telemetry_enabled"));
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_405() {
        assert_eq!(route(&get("/nope"), &small_config()).status, 404);
        let r = route(
            &Request {
                method: "DELETE".to_owned(),
                path: "/metrics".to_owned(),
                body: Vec::new(),
            },
            &small_config(),
        );
        assert_eq!(r.status, 405);
    }

    #[test]
    fn signoff_runs_the_engine() {
        let r = route(
            &Request {
                method: "POST".to_owned(),
                path: "/signoff".to_owned(),
                body: Vec::new(),
            },
            &small_config(),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let json = hotwire_obs::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert!(json.get("iterations").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(json.get("straps").and_then(Json::as_u64).unwrap(), 60);
    }

    #[test]
    fn signoff_rejects_bad_overrides() {
        for body in [&b"not json"[..], br#"{"rows": 1}"#, br#"{"cols": 100000}"#] {
            let r = route(
                &Request {
                    method: "POST".to_owned(),
                    path: "/signoff".to_owned(),
                    body: body.to_vec(),
                },
                &small_config(),
            );
            assert_eq!(r.status, 400, "{:?}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn header_terminator_is_found() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn every_response_carries_a_unique_request_id() {
        let a = route(&get("/healthz"), &small_config());
        let b = route(&get("/nope"), &small_config());
        let id_a = a.request_id.expect("healthz response has a request id");
        let id_b = b.request_id.expect("404 response has a request id");
        assert!(id_a.starts_with("req-"), "{id_a}");
        assert_ne!(id_a, id_b, "request ids must be process-unique");
    }

    #[test]
    fn failed_signoff_quotes_the_request_id_in_the_body() {
        // An unbuildable template (no pads) makes the engine fail, which
        // must produce a 500 whose JSON body names the request id.
        let mut config = small_config();
        config.spec.pads.clear();
        let r = route(
            &Request {
                method: "POST".to_owned(),
                path: "/signoff".to_owned(),
                body: Vec::new(),
            },
            &config,
        );
        assert_eq!(r.status, 500);
        let json = hotwire_obs::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let body_id = json.get("request_id").and_then(Json::as_str).unwrap();
        assert_eq!(Some(body_id.to_owned()), r.request_id);
        // No --bundle-dir configured: the field is present but null.
        assert_eq!(json.get("bundle"), Some(&Json::Null));
    }

    #[test]
    fn failed_signoff_writes_a_bundle_when_a_dir_is_configured() {
        let dir = std::env::temp_dir().join(format!("hotwire-serve-bundle-{}", std::process::id()));
        let mut config = small_config();
        config.spec.pads.clear();
        config.bundle_dir = Some(dir.to_string_lossy().into_owned());
        let r = route(
            &Request {
                method: "POST".to_owned(),
                path: "/signoff".to_owned(),
                body: Vec::new(),
            },
            &config,
        );
        assert_eq!(r.status, 500);
        let json = hotwire_obs::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let bundle_path = json
            .get("bundle")
            .and_then(Json::as_str)
            .expect("500 body quotes the bundle path")
            .to_owned();
        let text = std::fs::read_to_string(&bundle_path).expect("bundle file exists");
        let bundle = hotwire_obs::json::parse(&text).unwrap();
        assert_eq!(
            bundle.get("schema").and_then(Json::as_str),
            Some(hotwire_obs::recorder::BUNDLE_SCHEMA)
        );
        assert_eq!(
            bundle.get("reason").and_then(Json::as_str),
            Some("request-error")
        );
        let _ = std::fs::remove_file(&bundle_path);
        let _ = std::fs::remove_dir(&dir);
    }
}
