//! # hotwire
//!
//! Self-consistent electromigration + self-heating design rules for deep
//! sub-micron VLSI interconnects — a from-scratch Rust reproduction of
//! *K. Banerjee, A. Mehrotra, A. Sangiovanni-Vincentelli, C. Hu, "On
//! Thermal Effects in Deep Sub-Micron VLSI Interconnects", DAC 1999*.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | Module | Crate | What it holds |
//! |---|---|---|
//! | [`units`] | `hotwire-units` | typed physical quantities |
//! | [`tech`] | `hotwire-tech` | materials, metal stacks, NTRS presets, tech files |
//! | [`em`] | `hotwire-em` | waveform statistics, Black's equation, deratings |
//! | [`em_tree`] | `hotwire-em-tree` | Korhonen stress evolution on interconnect trees |
//! | [`thermal`] | `hotwire-thermal` | θ models, fin solutions, 2-D finite volumes, transients |
//! | [`core`] | `hotwire-core` | the self-consistent solver + design-rule tables |
//! | [`circuit`] | `hotwire-circuit` | MNA transient simulation, extraction, repeaters |
//! | [`coupled`] | `hotwire-coupled` | chip-level coupled EM–IR–thermal signoff |
//! | [`esd`] | `hotwire-esd` | ESD stress models and robustness rules |
//! | [`obs`] | `hotwire-obs` | metrics registry, tracing events, JSON (see `docs/OBSERVABILITY.md`) |
//! | [`serve`] | — | the `hotwire serve` HTTP layer: `/metrics`, `/healthz`, `POST /signoff` |
//!
//! # Quickstart
//!
//! How hot does an optimally utilized global Cu line run, and how much
//! peak current may it legally carry?
//!
//! ```
//! use hotwire::core::SelfConsistentProblem;
//! use hotwire::tech::{presets, Dielectric};
//! use hotwire::thermal::impedance::LineGeometry;
//! use hotwire::units::{CurrentDensity, Length};
//!
//! let tech = presets::ntrs_250nm();
//! let m6 = tech.layer("M6").expect("six-level stack");
//! let problem = SelfConsistentProblem::builder()
//!     .metal(tech.metal().clone())
//!     .line(LineGeometry::new(
//!         m6.width(),
//!         m6.thickness(),
//!         Length::from_micrometers(1000.0),
//!     )?)
//!     .stack(hotwire::core::rules::layer_stack(
//!         &tech,
//!         m6.index(),
//!         &Dielectric::oxide(),
//!     )?)
//!     .duty_cycle(0.1)
//!     .build()?;
//! let sol = problem.solve()?;
//! assert!(sol.j_peak > CurrentDensity::from_mega_amps_per_cm2(1.0));
//! println!(
//!     "M6 signal lines: T_m = {:.1}, j_peak ≤ {:.2} MA/cm²",
//!     sol.metal_temperature.to_celsius(),
//!     sol.j_peak.to_mega_amps_per_cm2()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for complete workflows (design-rule
//! tables, repeater planning with a thermal cross-check, ESD robustness
//! audits) and `hotwire-bench`'s `repro` binary for the regeneration of
//! every table and figure in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

pub use hotwire_circuit as circuit;
pub use hotwire_core as core;
pub use hotwire_coupled as coupled;
pub use hotwire_em as em;
pub use hotwire_em_tree as em_tree;
pub use hotwire_esd as esd;
pub use hotwire_obs as obs;
pub use hotwire_tech as tech;
pub use hotwire_thermal as thermal;
pub use hotwire_units as units;
