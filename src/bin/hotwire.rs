//! The `hotwire` command-line tool: thermally-aware interconnect
//! design-rule queries from the shell.
//!
//! ```text
//! hotwire solve    --tech ntrs-250 --layer M6 --dielectric HSQ --r 0.1
//! hotwire rules    --tech ntrs-100 --j0 1.8e6 --levels 2
//! hotwire sweep    --tech ntrs-250 --layer M6 --points 17        # CSV
//! hotwire repeater --tech ntrs-250 --layer M6
//! hotwire esd      --stress hbm:2000 --width-um 3 --metal alcu
//! hotwire techfile --tech ntrs-250                               # dump
//! hotwire serve    --addr 127.0.0.1:9184                         # HTTP
//! ```
//!
//! `--tech` accepts the built-in presets (`ntrs-250`, `ntrs-100`,
//! `ntrs-250-alcu`, `ntrs-100-alcu`) or a path to a tech file.
//!
//! Every command additionally understands the observability flags
//! (`docs/OBSERVABILITY.md`): `--log-level error|warn|info|debug|trace`
//! and `--log-format text|json` control diagnostic events on stderr,
//! and `--metrics-out <path>` dumps the process-wide metrics snapshot
//! as JSON after the command runs. `--trace-out <path>` captures the
//! span tree of the run: `--trace-format jsonl` (retained span records,
//! the default everywhere but `coupled-signoff`) or `chrome` (Trace
//! Event JSON loadable in Perfetto / `chrome://tracing`). On
//! `coupled-signoff` the historical default `--trace-format
//! convergence` writes the per-iteration convergence trace instead.
//! `hotwire trace <capture>` analyzes a captured span tree: self-time
//! per span name, slowest-child critical paths, and folded stacks for
//! flamegraph tools. The span capture is independent of `--log-level`;
//! the level filter decides what is printed on stderr, never what the
//! retained trace keeps.
//!
//! Exit codes: 0 success, 1 internal/solver failure, 2 usage error,
//! 3 signoff violation.

use std::collections::HashMap;
use std::fmt;
use std::process::ExitCode;

use hotwire::circuit::repeater::{optimal_design, simulate_repeater, RepeaterSimOptions};
use hotwire::core::rules::{layer_stack, DesignRuleSpec, DesignRuleTable};
use hotwire::core::signoff::{ranked_violations, signoff, NetSpec, SignoffConfig};
use hotwire::core::sweep::{duty_cycle_sweep, log_spaced};
use hotwire::core::SelfConsistentProblem;
use hotwire::coupled::{CoupledEngine, CoupledError, CoupledGridSpec, CoupledOptions};
use hotwire::esd::{check_robustness, EsdStress};
use hotwire::obs::json::Json;
use hotwire::obs::{LogConfig, LogFormat};
use hotwire::tech::{format as techformat, presets, Dielectric, Metal, Technology};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry, QUASI_2D_PHI};
use hotwire::units::{Celsius, CurrentDensity, Length, Seconds};

/// Graceful-shutdown plumbing for `hotwire serve`: SIGINT/SIGTERM set a
/// flag the accept loop polls, so the process drains in-flight requests
/// and exits 0 instead of dying mid-response.
///
/// Installed with the raw C `signal(2)` — the workspace has no `libc`
/// crate (offline build), and the two constants below are part of the
/// Linux/POSIX ABI this binary targets. This is the only unsafe in the
/// workspace; every library crate stays `#![forbid(unsafe_code)]`.
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::sync::OnceLock;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIGUSR1: i32 = 10;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    fn flag_cell() -> &'static Arc<AtomicBool> {
        static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
        FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)))
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only the async-signal-safe store; everything else reacts to it.
        // SAFETY(ordering): SeqCst store from a signal handler — the
        // polling loop must observe it, and handlers run rarely enough
        // that the fence cost is irrelevant.
        flag_cell().store(true, Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_signum: i32) {
        // Again only an atomic store: the serve accept loop polls this
        // flag and writes the diagnostic bundle outside the handler.
        // SAFETY(ordering): same as on_signal — SeqCst store, polled
        // outside the handler, no surrounding data to order against.
        hotwire::serve::dump_flag().store(true, Ordering::SeqCst);
    }

    /// Installs the handlers (idempotent) and returns the shared flag.
    pub fn install() -> Arc<AtomicBool> {
        let flag = Arc::clone(flag_cell());
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        flag
    }

    /// Installs the SIGUSR1 → bundle-dump handler (`hotwire serve`).
    pub fn install_usr1() {
        let handler = on_usr1 as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGUSR1, handler);
        }
    }
}

/// Cross-cutting bundle state: the last numerical-health report a
/// command produced, so the error-exit bundle writer in [`run`] can
/// embed it without every command threading it back explicitly.
mod bundle_state {
    use std::sync::Mutex;

    use hotwire::obs::json::Json;

    static LAST_HEALTH: Mutex<Option<Json>> = Mutex::new(None);

    /// Stores the most recent health report (overwrites the previous).
    pub fn set_health(health: Json) {
        if let Ok(mut guard) = LAST_HEALTH.lock() {
            *guard = Some(health);
        }
    }

    /// Takes the stored report, leaving `None`.
    pub fn take_health() -> Option<Json> {
        LAST_HEALTH.lock().ok().and_then(|mut g| g.take())
    }
}

/// FNV-1a fingerprint of the resolved invocation (command + flags), so
/// bundles from different workloads are tellable apart at a glance.
fn spec_hash(args: &[String]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for arg in args {
        for b in arg.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x1f; // unit separator between args
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv-{hash:016x}")
}

/// Exit code of a usage error (bad flags, unknown command).
const EXIT_USAGE: u8 = 2;
/// Exit code when the analysis ran but the design fails its rules.
const EXIT_VIOLATION: u8 = 3;
/// Exit code of an internal/solver failure.
const EXIT_INTERNAL: u8 = 1;

/// A classified CLI failure, so scripts can tell "you typed it wrong"
/// (exit 2) from "the design fails signoff" (exit 3) from "the engine
/// could not produce an answer" (exit 1).
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command, missing/unparsable flag.
    Usage(String),
    /// The command ran to completion and the design violates its rules.
    Violation(String),
    /// The engine failed; carries the typed error so the full
    /// `source()` chain reaches the error report.
    Internal(Box<dyn std::error::Error>),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self::Usage(message.into())
    }

    fn violation(message: impl Into<String>) -> Self {
        Self::Violation(message.into())
    }

    fn internal(e: impl std::error::Error + 'static) -> Self {
        Self::Internal(Box::new(e))
    }

    /// Wraps `e` with a context line while keeping it as `source()`.
    fn context(message: impl Into<String>, e: impl std::error::Error + 'static) -> Self {
        Self::Internal(Box::new(ContextError {
            context: message.into(),
            source: Box::new(e),
        }))
    }

    fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => EXIT_USAGE,
            Self::Violation(_) => EXIT_VIOLATION,
            Self::Internal(_) => EXIT_INTERNAL,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Self::Usage(_) => "usage",
            Self::Violation(_) => "violation",
            Self::Internal(_) => "internal",
        }
    }

    /// The `source()` chain below the top-level message, outermost
    /// first (empty for usage/violation errors).
    fn causes(&self) -> Vec<String> {
        let mut chain = Vec::new();
        if let Self::Internal(e) = self {
            let mut cursor = e.source();
            while let Some(cause) = cursor {
                chain.push(cause.to_string());
                cursor = cause.source();
            }
        }
        chain
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(m) | Self::Violation(m) => f.write_str(m),
            Self::Internal(e) => write!(f, "{e}"),
        }
    }
}

/// An error wrapped with a human context line; the wrapped error stays
/// reachable through `source()` for the caused-by report.
#[derive(Debug)]
struct ContextError {
    context: String,
    source: Box<dyn std::error::Error>,
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.context)
    }
}

impl std::error::Error for ContextError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Renders a failure on stderr: classic `error:` lines (plus the
/// `caused by:` chain) in text mode, one structured JSONL event in
/// json mode.
fn report_error(err: &CliError, format: LogFormat) {
    let causes = err.causes();
    match format {
        LogFormat::Text => {
            eprintln!("error: {err}");
            for cause in &causes {
                eprintln!("  caused by: {cause}");
            }
        }
        LogFormat::Json => {
            let event = Json::object([
                ("level", Json::from("error")),
                ("target", Json::from("hotwire")),
                ("msg", Json::from(err.to_string())),
                ("kind", Json::from(err.kind())),
                (
                    "cause",
                    Json::Arr(causes.into_iter().map(Json::from).collect()),
                ),
            ]);
            eprintln!("{event}");
        }
    }
}

/// Extracts `--log-level` / `--log-format` from the raw argument list
/// (they ride in the same `--flag value` stream as everything else, but
/// the subscriber must be installed before the command dispatches).
fn log_config(args: &[String]) -> Result<LogConfig, CliError> {
    let mut config = LogConfig::default();
    for pair in args.windows(2) {
        match pair[0].as_str() {
            "--log-level" => config.level = pair[1].parse().map_err(CliError::Usage)?,
            "--log-format" => config.format = pair[1].parse().map_err(CliError::Usage)?,
            _ => {}
        }
    }
    Ok(config)
}

/// The `--bundle-dir` value, pulled from the raw argument stream (the
/// panic hook must know it before the flag parser runs).
fn bundle_dir(args: &[String]) -> Option<String> {
    args.windows(2)
        .find(|pair| pair[0] == "--bundle-dir")
        .map(|pair| pair[1].clone())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match log_config(&args) {
        Ok(config) => config,
        Err(e) => {
            report_error(&e, LogFormat::Text);
            return ExitCode::from(e.exit_code());
        }
    };
    hotwire::obs::trace::init(config);
    if let Some(dir) = bundle_dir(&args) {
        // A panic is the one failure the error-exit writer in run()
        // cannot see — freeze the flight recorder from the hook itself.
        let hash = spec_hash(&args);
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let detail = info.to_string();
            match hotwire::obs::recorder::write_bundle(&dir, "panic", &detail, None, Some(&hash)) {
                Ok(path) => eprintln!("diagnostic bundle: {path}"),
                Err(e) => eprintln!("error: cannot write panic bundle: {e}"),
            }
            default_hook(info);
        }));
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            report_error(&e, config.format);
            ExitCode::from(e.exit_code())
        }
    }
}

/// What `--trace-out` writes. `convergence` is the historical
/// per-iteration residual trace of `coupled-signoff`; the span formats
/// dump the captured span tree of the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    /// `coupled-signoff` per-iteration convergence records (JSON).
    Convergence,
    /// Retained span records, one JSON object per line.
    Jsonl,
    /// Chrome Trace Event JSON, loadable in Perfetto.
    Chrome,
}

/// Resolves `--trace-format`, defaulting to the back-compatible
/// convergence trace on `coupled-signoff` and span JSONL elsewhere.
fn trace_format(opts: &Flags, command: &str) -> Result<TraceFormat, CliError> {
    match opts.get("trace-format").map(String::as_str) {
        None => Ok(if command == "coupled-signoff" {
            TraceFormat::Convergence
        } else {
            TraceFormat::Jsonl
        }),
        Some("convergence") if command == "coupled-signoff" => Ok(TraceFormat::Convergence),
        Some("convergence") => Err(CliError::usage(
            "--trace-format convergence is only available on coupled-signoff \
             (use jsonl or chrome for span traces)",
        )),
        Some("jsonl") => Ok(TraceFormat::Jsonl),
        Some("chrome") => Ok(TraceFormat::Chrome),
        Some(other) => Err(CliError::usage(format!(
            "--trace-format: unknown format `{other}` (convergence|jsonl|chrome)"
        ))),
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(());
    };
    // `trace` and `doctor` take positional files, which the strict
    // `--flag value` parser below would reject — dispatch them first.
    if command == "trace" {
        return cmd_trace(&args[1..]);
    }
    if command == "doctor" {
        return cmd_doctor(&args[1..]);
    }
    let opts = parse_flags(&args[1..])?;
    let format = trace_format(&opts, command)?;
    let capture_spans = opts.contains_key("trace-out") && format != TraceFormat::Convergence;
    if capture_spans {
        hotwire::obs::spantree::capture_start();
    }
    let result = match command.as_str() {
        "solve" => cmd_solve(&opts),
        "rules" => cmd_rules(&opts),
        "sweep" => cmd_sweep(&opts),
        "repeater" => cmd_repeater(&opts),
        "esd" => cmd_esd(&opts),
        "signoff" => cmd_signoff(&opts),
        "coupled-signoff" => cmd_coupled_signoff(&opts, format),
        "tree-signoff" => cmd_tree_signoff(&opts),
        "serve" => cmd_serve(&opts),
        "simulate" => cmd_simulate(&opts),
        "techfile" => cmd_techfile(&opts),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}` (try `hotwire help`)"
        ))),
    };
    // The metrics snapshot is a post-mortem artifact: write it whenever
    // the command actually ran, violations and solver failures
    // included. Only a usage error (nothing executed) skips it.
    let metrics = match (&result, opts.get("metrics-out")) {
        (Err(CliError::Usage(_)), _) | (_, None) => Ok(()),
        (_, Some(path)) => write_json_file(path, &hotwire::obs::metrics::snapshot().to_json()),
    };
    // Same policy for the span trace: a failed signoff is exactly when
    // the profile matters, so only a usage error skips the write.
    let trace = match (&result, opts.get("trace-out")) {
        (Err(CliError::Usage(_)), _) | (_, None) => Ok(()),
        (_, Some(path)) if capture_spans => {
            let captured = hotwire::obs::spantree::capture_take();
            match format {
                TraceFormat::Chrome => write_json_file(path, &captured.to_chrome()),
                _ => std::fs::write(path, captured.to_jsonl())
                    .map_err(|e| CliError::context(format!("cannot write {path}"), e)),
            }
        }
        // Convergence format: cmd_coupled_signoff wrote it already.
        (_, Some(_)) => Ok(()),
    };
    let outcome = result.and(metrics).and(trace);
    // Error-path exits (internal failure or signoff violation) freeze
    // the flight recorder into a diagnostic bundle when the operator
    // gave us somewhere to put it. A usage error recorded nothing worth
    // bundling.
    if let (Err(e), Some(dir)) = (&outcome, opts.get("bundle-dir")) {
        if !matches!(e, CliError::Usage(_)) {
            let health = bundle_state::take_health();
            let hash = spec_hash(args);
            match hotwire::obs::recorder::write_bundle(
                dir,
                e.kind(),
                &e.to_string(),
                health.as_ref(),
                Some(&hash),
            ) {
                Ok(path) => eprintln!("diagnostic bundle: {path}"),
                Err(we) => eprintln!("error: cannot write bundle to {dir}: {we}"),
            }
        }
    }
    outcome
}

/// Writes pretty-printed JSON (with a trailing newline) to `path`.
fn write_json_file(path: &str, json: &Json) -> Result<(), CliError> {
    std::fs::write(path, format!("{}\n", json.to_pretty_string()))
        .map_err(|e| CliError::context(format!("cannot write {path}"), e))
}

fn print_help() {
    println!(
        "hotwire — self-consistent EM + self-heating interconnect design rules\n\
         (reproduction of Banerjee et al., DAC 1999)\n\n\
         usage: hotwire <command> [--flag value]...\n\n\
         commands:\n\
           solve     one self-consistent solve for a layer\n\
                     --tech <preset|path> --layer <name> [--dielectric <name>]\n\
                     [--r <duty>] [--j0 <A/cm²>] [--length-um <L>] [--phi <φ>]\n\
           rules     a Tables 2-4 style design-rule grid\n\
                     --tech <preset|path> [--j0 <A/cm²>] [--levels <n>]\n\
           sweep     Fig. 2 duty-cycle sweep as CSV on stdout\n\
                     --tech <preset|path> --layer <name> [--points <n>]\n\
           repeater  eq. (16)/(17) buffer plan + simulated currents\n\
                     --tech <preset|path> --layer <name>\n\
           esd       single-pulse robustness of a line\n\
                     --stress hbm:<V>|mm:<V>|cdm:<A>|tlp:<A>:<ns> --width-um <W>\n\
                     [--thickness-um <t>] [--metal cu|alcu]\n\
           signoff   composite rule check of a net list (CSV)\n\
                     --tech <preset|path> --nets <csv>\n\
                     (columns: name,layer,width_um,length_um,duty_cycle,j_peak_ma_cm2)\n\
           coupled-signoff\n\
                     chip-level coupled IR-thermal-EM power-grid signoff\n\
                     [--rows <n>] [--cols <n>] [--pitch-um <p>] [--width-um <W>]\n\
                     [--thickness-um <t>] [--tox-um <t>] [--dielectric <name>]\n\
                     [--metal cu|alcu] [--vdd <V>] [--sink-ma <I>] [--ref-c <T>]\n\
                     [--pads r:c,r:c,...] [--tol <K>] [--max-iters <n>]\n\
                     [--damping <a>] [--sigma <s>] [--quantile <f>]\n\
                     (--trace-out defaults to the per-iteration convergence\n\
                     trace here; pass --trace-format jsonl|chrome for spans)\n\
           tree-signoff\n\
                     Korhonen stress-evolution EM signoff of supply trees\n\
                     extracted from a SPICE-subset netlist (resistor trees\n\
                     fed by V-sources, loads as I-sources)\n\
                     --netlist <path> [--width-um <W>] [--thickness-um <t>]\n\
                     [--metal cu|alcu] [--temp-c <T>] [--horizon-years <y>]\n\
                     [--steady-only true] [--sigma <s>] [--quantile <f>]\n\
           serve     HTTP observability endpoint (blocks until SIGTERM/ctrl-c)\n\
                     [--addr <ip:port>] [--threads <n>] plus the\n\
                     coupled-signoff grid flags (template for POST /signoff);\n\
                     serves GET /metrics (Prometheus 0.0.4), GET /healthz,\n\
                     POST /signoff (optional JSON body {{\"rows\": n, \"cols\": n}})\n\
           simulate  transient-simulate a SPICE-subset netlist\n\
                     --netlist <path> --tstop <seconds> [--dt <seconds>]\n\
                     [--probe <node>[,<node>...]] (CSV on stdout)\n\
           techfile  dump a technology as a tech file\n\
                     --tech <preset|path>\n\
           trace     analyze a span trace captured with --trace-out\n\
                     <capture> [--folded] [--critical-path <name>]\n\
                     (self-time table + critical paths + folded stacks;\n\
                     --folded emits only inferno/speedscope folded lines)\n\
           doctor    analyze a diagnostic bundle written by --bundle-dir\n\
                     <bundle.json> (timeline + health summary + failure\n\
                     classification + remediation hints)\n\n\
         observability (any command):\n\
           --log-level error|warn|info|debug|trace   stderr event threshold\n\
           --log-format text|json                    event rendering (JSONL)\n\
           --metrics-out <path>                      metrics snapshot (JSON)\n\
           --trace-out <path>                        span tree of the run\n\
           --trace-format jsonl|chrome|convergence   span records (default),\n\
                     Perfetto-loadable Chrome Trace Event JSON, or (on\n\
                     coupled-signoff only, its default) the convergence trace\n\
           --bundle-dir <dir>                        on error exit, panic, a\n\
                     serve 500, or SIGUSR1 (serve), freeze the flight\n\
                     recorder + metrics + health into a diagnostic bundle\n\
                     JSON there (analyze with `hotwire doctor`)\n\n\
         exit codes: 0 ok, 1 internal failure, 2 usage, 3 signoff violation\n\n\
         presets: ntrs-250, ntrs-100, ntrs-250-alcu, ntrs-100-alcu"
    );
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::usage(format!("expected a --flag, got `{}`", args[i])))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
        map.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn flag<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, CliError> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("missing required flag --{key}")))
}

fn flag_or<'a>(opts: &'a Flags, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map_or(default, String::as_str)
}

fn parse_f64(opts: &Flags, key: &str, default: f64) -> Result<f64, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| CliError::usage(format!("--{key}: `{v}` is not a number"))),
    }
}

fn load_tech(opts: &Flags) -> Result<Technology, CliError> {
    let spec = flag(opts, "tech")?;
    match spec {
        "ntrs-250" | "ntrs-0.25um" => Ok(presets::ntrs_250nm()),
        "ntrs-100" | "ntrs-0.1um" => Ok(presets::ntrs_100nm()),
        "ntrs-250-alcu" => Ok(presets::ntrs_250nm_alcu()),
        "ntrs-100-alcu" => Ok(presets::ntrs_100nm_alcu()),
        path => techformat::read_file(path)
            .map_err(|e| CliError::context(format!("cannot load tech file {path}"), e)),
    }
}

fn pick_dielectric(opts: &Flags) -> Result<Dielectric, CliError> {
    let name = flag_or(opts, "dielectric", "oxide");
    Dielectric::builtin(name).ok_or_else(|| CliError::usage(format!("unknown dielectric `{name}`")))
}

fn build_problem(
    opts: &Flags,
    tech: &Technology,
) -> Result<(SelfConsistentProblem, String), CliError> {
    let layer_name = flag(opts, "layer")?;
    let layer = tech
        .layer(layer_name)
        .ok_or_else(|| CliError::usage(format!("technology has no layer `{layer_name}`")))?;
    let dielectric = pick_dielectric(opts)?;
    let r = parse_f64(opts, "r", 0.1)?;
    let length = Length::from_micrometers(parse_f64(opts, "length-um", 1000.0)?);
    let phi = parse_f64(opts, "phi", QUASI_2D_PHI)?;
    let mut metal = tech.metal().clone();
    if let Some(j0) = opts.get("j0") {
        let v = j0
            .parse::<f64>()
            .map_err(|_| CliError::usage(format!("--j0: `{j0}` is not a number")))?;
        metal = metal.with_design_rule_j0(CurrentDensity::from_amps_per_cm2(v));
    }
    let problem = SelfConsistentProblem::builder()
        .metal(metal)
        .line(
            LineGeometry::new(layer.width(), layer.thickness(), length)
                .map_err(CliError::internal)?,
        )
        .stack(layer_stack(tech, layer.index(), &dielectric).map_err(CliError::internal)?)
        .phi(phi)
        .duty_cycle(r)
        .reference_temperature(tech.reference_temperature())
        .build()
        .map_err(CliError::internal)?;
    Ok((problem, format!("{layer_name}/{}", dielectric.name())))
}

fn cmd_solve(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    let (problem, label) = build_problem(opts, &tech)?;
    let sol = problem.solve().map_err(CliError::internal)?;
    println!("{} {label} @ r = {}", tech.name(), problem.duty_cycle());
    println!("  T_m      = {:.2}", sol.metal_temperature.to_celsius());
    println!("  ΔT       = {:.2}", sol.temperature_rise);
    println!(
        "  j_peak   = {:.3} MA/cm²   (EM-only would allow {:.3})",
        sol.j_peak.to_mega_amps_per_cm2(),
        problem.em_only_peak().to_mega_amps_per_cm2()
    );
    println!(
        "  j_rms    = {:.3} MA/cm²",
        sol.j_rms.to_mega_amps_per_cm2()
    );
    println!(
        "  j_avg    = {:.3} MA/cm²",
        sol.j_avg.to_mega_amps_per_cm2()
    );
    Ok(())
}

fn cmd_rules(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    let j0 = CurrentDensity::from_amps_per_cm2(parse_f64(opts, "j0", 6.0e5)?);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let levels = parse_f64(opts, "levels", 2.0)? as usize;
    let spec = DesignRuleSpec::paper_defaults(&tech, levels, j0);
    let table = DesignRuleTable::generate(&spec).map_err(CliError::internal)?;
    println!(
        "{} — max allowed j_peak [MA/cm²], j0 = {:.2e} A/cm²\n",
        tech.name(),
        j0.to_amps_per_cm2()
    );
    print!("{table}");
    Ok(())
}

fn cmd_sweep(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    let (problem, _) = build_problem(opts, &tech)?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let points = parse_f64(opts, "points", 17.0)? as usize;
    let rs = log_spaced(1.0e-4, 1.0, points.max(2));
    let sweep = duty_cycle_sweep(&problem, &rs).map_err(CliError::internal)?;
    println!("r,metal_temperature_c,j_peak_ma_cm2,em_only_peak_ma_cm2");
    for p in sweep {
        println!(
            "{:.6e},{:.3},{:.4},{:.4}",
            p.duty_cycle,
            p.solution.metal_temperature.to_celsius().value(),
            p.solution.j_peak.to_mega_amps_per_cm2(),
            p.em_only_peak.to_mega_amps_per_cm2()
        );
    }
    Ok(())
}

fn cmd_repeater(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    let layer_name = flag(opts, "layer")?;
    let layer = tech
        .layer(layer_name)
        .ok_or_else(|| CliError::usage(format!("technology has no layer `{layer_name}`")))?;
    let design = optimal_design(&tech, layer.index()).map_err(CliError::internal)?;
    println!("{} {layer_name} — delay-optimal buffering:", tech.name());
    println!(
        "  l_opt = {:.2} mm, s_opt = {:.0}×min, est. stage delay {:.1} ps",
        design.l_opt.value() * 1e3,
        design.s_opt,
        design.stage_delay * 1e12
    );
    let report = simulate_repeater(&tech, layer.index(), RepeaterSimOptions::default())
        .map_err(CliError::internal)?;
    println!(
        "  simulated: j_peak {:.2} MA/cm², j_rms {:.2} MA/cm², r_eff {:.3}, slew {:.3}",
        report.j_peak().to_mega_amps_per_cm2(),
        report.j_rms().to_mega_amps_per_cm2(),
        report.effective_duty_cycle,
        report.relative_slew
    );
    Ok(())
}

fn parse_stress(spec: &str) -> Result<EsdStress, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<f64, CliError> {
        s.parse::<f64>()
            .map_err(|_| CliError::usage(format!("`{s}` is not a number in stress spec `{spec}`")))
    };
    match parts.as_slice() {
        ["hbm", v] => Ok(EsdStress::human_body(num(v)?)),
        ["mm", v] => Ok(EsdStress::machine(num(v)?)),
        ["cdm", a] => Ok(EsdStress::charged_device(num(a)?)),
        ["tlp", a, ns] => Ok(EsdStress::tlp(num(a)?, Seconds::from_nanos(num(ns)?))),
        _ => Err(CliError::usage(format!(
            "bad stress `{spec}` (expected hbm:<V>, mm:<V>, cdm:<A>, tlp:<A>:<ns>)"
        ))),
    }
}

fn cmd_esd(opts: &Flags) -> Result<(), CliError> {
    let stress = parse_stress(flag(opts, "stress")?)?;
    let width = Length::from_micrometers(parse_f64(opts, "width-um", 3.0)?);
    let thickness = Length::from_micrometers(parse_f64(opts, "thickness-um", 0.55)?);
    let metal_name = flag_or(opts, "metal", "alcu");
    let metal = Metal::builtin(metal_name)
        .ok_or_else(|| CliError::usage(format!("unknown metal `{metal_name}`")))?;
    let line = LineGeometry::new(width, thickness, Length::from_micrometers(150.0))
        .map_err(CliError::internal)?;
    let stack = InsulatorStack::single(
        Length::from_micrometers(parse_f64(opts, "tox-um", 1.2)?),
        &Dielectric::oxide(),
    );
    let verdict = check_robustness(
        &metal,
        line,
        &stack,
        QUASI_2D_PHI,
        Celsius::new(parse_f64(opts, "ambient-c", 25.0)?).to_kelvin(),
        &stress,
    )
    .map_err(CliError::internal)?;
    println!(
        "{} line {:.2} × {:.2} µm under {stress:?}:",
        metal.name(),
        width.to_micrometers(),
        thickness.to_micrometers()
    );
    println!(
        "  outcome {:?}, peak {:.0} °C, j_peak {:.1} MA/cm², EM lifetime ×{:.2}",
        verdict.outcome,
        verdict.peak_temperature.to_celsius().value(),
        verdict.peak_density.to_mega_amps_per_cm2(),
        verdict.em_lifetime_factor
    );
    Ok(())
}

fn parse_nets_csv(text: &str) -> Result<Vec<NetSpec>, CliError> {
    let mut nets = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || (idx == 0 && line.starts_with("name")) {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        if cols.len() != 6 {
            return Err(CliError::usage(format!(
                "nets csv line {}: expected 6 columns, got {}",
                idx + 1,
                cols.len()
            )));
        }
        let num = |k: usize| -> Result<f64, CliError> {
            cols[k].parse::<f64>().map_err(|_| {
                CliError::usage(format!(
                    "nets csv line {}: `{}` is not a number",
                    idx + 1,
                    cols[k]
                ))
            })
        };
        nets.push(NetSpec {
            name: cols[0].to_owned(),
            layer: cols[1].to_owned(),
            width: Length::from_micrometers(num(2)?),
            length: Length::from_micrometers(num(3)?),
            duty_cycle: num(4)?,
            j_peak: CurrentDensity::from_mega_amps_per_cm2(num(5)?),
        });
    }
    if nets.is_empty() {
        return Err(CliError::usage("nets csv contains no nets"));
    }
    Ok(nets)
}

fn cmd_signoff(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    let path = flag(opts, "nets")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::context(format!("cannot read {path}"), e))?;
    let nets = parse_nets_csv(&text)?;
    let mut config = SignoffConfig {
        intra_dielectric: pick_dielectric(opts)?,
        ..SignoffConfig::paper_defaults()
    };
    if let Some(j0) = opts.get("j0") {
        let v = j0
            .parse::<f64>()
            .map_err(|_| CliError::usage(format!("--j0: `{j0}` is not a number")))?;
        config.j0 = CurrentDensity::from_amps_per_cm2(v);
    }
    let verdicts = signoff(&tech, &config, &nets).map_err(CliError::internal)?;
    println!(
        "{:<16}{:>8}{:>18}{:>14}{:>18}{:>10}",
        "net", "layer", "allowed [MA/cm²]", "utilization", "governing", "verdict"
    );
    for (v, n) in verdicts.iter().zip(&nets) {
        println!(
            "{:<16}{:>8}{:>18.2}{:>14.2}{:>18}{:>10}",
            v.net,
            n.layer,
            v.allowed_j_peak.to_mega_amps_per_cm2(),
            v.utilization,
            v.governing.label(),
            if v.passes() { "pass" } else { "VIOLATION" },
        );
    }
    let violations = ranked_violations(&verdicts);
    if violations.is_empty() {
        println!("all {} nets pass", verdicts.len());
        Ok(())
    } else {
        println!(
            "worst offender: {} ({:.2}×)",
            violations[0].net, violations[0].utilization
        );
        Err(CliError::violation(format!(
            "{} net(s) violate their rules",
            violations.len()
        )))
    }
}

fn parse_pads(spec: &str, rows: usize, cols: usize) -> Result<Vec<(usize, usize)>, CliError> {
    let mut pads = Vec::new();
    for part in spec.split(',') {
        let (r, c) = part
            .split_once(':')
            .ok_or_else(|| CliError::usage(format!("bad pad `{part}` (expected row:col)")))?;
        let parse = |s: &str| -> Result<usize, CliError> {
            s.trim()
                .parse::<usize>()
                .map_err(|_| CliError::usage(format!("bad pad index `{s}` in `{part}`")))
        };
        let (r, c) = (parse(r)?, parse(c)?);
        if r >= rows || c >= cols {
            return Err(CliError::usage(format!(
                "pad {r}:{c} outside the {rows}×{cols} grid"
            )));
        }
        pads.push((r, c));
    }
    Ok(pads)
}

/// Maps a coupled-engine failure: a rejected spec is the user's input
/// (usage), everything else is the solver's problem (internal).
fn coupled_error(e: CoupledError) -> CliError {
    match e {
        CoupledError::InvalidSpec { message } => CliError::usage(message),
        // The iteration cap is a verdict, not an engine failure: the
        // analysis ran and the design failed to settle within budget —
        // exit 3, like any other failed signoff.
        e @ CoupledError::NotConverged { .. } => CliError::violation(e.to_string()),
        other => CliError::internal(other),
    }
}

/// Builds the coupled grid spec + solver options from the shared flag
/// set (`coupled-signoff` and `serve` accept the same grid flags, with
/// per-command defaults for the grid size).
fn coupled_setup(
    opts: &Flags,
    default_edge: f64,
) -> Result<(CoupledGridSpec, CoupledOptions), CliError> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let (rows, cols) = (
        parse_f64(opts, "rows", default_edge)? as usize,
        parse_f64(opts, "cols", default_edge)? as usize,
    );
    let metal_name = flag_or(opts, "metal", "cu");
    let metal = Metal::builtin(metal_name)
        .ok_or_else(|| CliError::usage(format!("unknown metal `{metal_name}`")))?;
    let mut spec = CoupledGridSpec {
        metal,
        dielectric: pick_dielectric(opts)?,
        ..CoupledGridSpec::demo(rows, cols)
    };
    spec.pitch = Length::from_micrometers(parse_f64(opts, "pitch-um", 100.0)?);
    spec.strap_width = Length::from_micrometers(parse_f64(opts, "width-um", 2.0)?);
    spec.strap_thickness = Length::from_micrometers(parse_f64(opts, "thickness-um", 0.8)?);
    spec.dielectric_thickness = Length::from_micrometers(parse_f64(opts, "tox-um", 1.0)?);
    spec.phi = parse_f64(opts, "phi", QUASI_2D_PHI)?;
    spec.vdd = hotwire::units::Voltage::new(parse_f64(opts, "vdd", 2.5)?);
    spec.sink_per_node = hotwire::units::Current::from_milliamps(parse_f64(opts, "sink-ma", 0.2)?);
    spec.reference_temperature = Celsius::new(parse_f64(opts, "ref-c", 100.0)?).to_kelvin();
    if let Some(pads) = opts.get("pads") {
        spec.pads = parse_pads(pads, rows, cols)?;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let options = CoupledOptions {
        tolerance: parse_f64(opts, "tol", 0.05)?,
        max_iterations: parse_f64(opts, "max-iters", 100.0)? as usize,
        damping: parse_f64(opts, "damping", 0.7)?,
        sigma: parse_f64(opts, "sigma", 0.5)?,
        failure_quantile: parse_f64(opts, "quantile", 1.0e-3)?,
        ..CoupledOptions::default()
    };
    Ok((spec, options))
}

fn cmd_coupled_signoff(opts: &Flags, format: TraceFormat) -> Result<(), CliError> {
    let (spec, options) = coupled_setup(opts, 50.0)?;
    let (rows, cols) = (spec.rows, spec.cols);
    let options_quantile = options.failure_quantile;
    let mut engine = CoupledEngine::new(spec, options).map_err(coupled_error)?;
    let run_result = engine.run();
    // Whatever happens next, the health report (Picard rate fit,
    // condition estimate, residuals) is ready for an error-exit bundle.
    bundle_state::set_health(engine.health_report().to_json());
    // The convergence trace is most valuable exactly when run() failed —
    // write it before propagating, so a NotConverged/Diverged post-mortem
    // still has the residual history on disk. (Span formats are written
    // by `run()` after the command returns, covering the whole process.)
    if format == TraceFormat::Convergence {
        if let Some(path) = opts.get("trace-out") {
            write_json_file(path, &engine.trace().to_json())?;
        }
    }
    run_result.map_err(coupled_error)?;
    let report = engine.assess().map_err(coupled_error)?;
    println!(
        "{rows}×{cols} grid: fixed point in {} iterations (last max |dT| = {:.3e} K)",
        report.iterations,
        report.iteration_deltas.last().copied().unwrap_or(0.0)
    );
    println!(
        "  worst IR drop  = {:.1} mV at node ({}, {})",
        report.worst_ir_drop.value() * 1e3,
        report.worst_node.0,
        report.worst_node.1
    );
    println!(
        "  peak strap T   = {:.2} ({:.2})",
        report.peak_temperature.to_celsius(),
        report.peak_temperature
    );
    match report.chip_ttf {
        Some(ttf) => println!(
            "  chip TTF       = {:.2e} h at the {:.0e} failure quantile ({} mortal straps)",
            ttf.value() / 3600.0,
            options_quantile,
            report
                .chip_failure
                .as_ref()
                .map_or(0, hotwire::em::lifetime::WeakestLinkPopulation::len)
        ),
        None => println!("  chip TTF       = unbounded (every strap Blech-immortal or idle)"),
    }
    let violations = report.violations();
    if violations.is_empty() {
        println!("all {} straps pass", report.branches.len());
        Ok(())
    } else {
        println!("\ntop violations (of {}):", violations.len());
        println!(
            "{:<26}{:>14}{:>16}{:>12}{:>18}",
            "strap", "T_m [°C]", "j [MA/cm²]", "util", "governing"
        );
        for v in violations.iter().take(10) {
            println!(
                "{:<26}{:>14.1}{:>16.2}{:>12.2}{:>18}",
                v.verdict.net,
                v.temperature.to_celsius().value(),
                v.density.to_mega_amps_per_cm2(),
                v.verdict.utilization,
                v.verdict.governing.label(),
            );
        }
        Err(CliError::violation(format!(
            "{} strap(s) violate their rules",
            violations.len()
        )))
    }
}

/// Renders a lifetime in the unit a signoff reader expects — years
/// when it is at least a month, hours below that (a grossly overdriven
/// tree fails in hours, and "0.00 years" hides that).
fn format_horizon_time(t: Seconds) -> String {
    let years = t.to_years();
    if years >= 0.1 {
        format!("{years:.2} years")
    } else {
        format!("{:.2} hours", t.value() / 3600.0)
    }
}

fn cmd_tree_signoff(opts: &Flags) -> Result<(), CliError> {
    use hotwire::em_tree::model::KorhonenModel;
    use hotwire::em_tree::netlist::{trees_from_netlist_text, NetlistTreeOptions};
    use hotwire::em_tree::steady::batch_steady_state;
    use hotwire::em_tree::transient::{batch_to_failure, TransientOptions};

    let path = flag(opts, "netlist")?;
    let deck = std::fs::read_to_string(path)
        .map_err(|e| CliError::context(format!("cannot read {path}"), e))?;
    let metal_name = flag_or(opts, "metal", "cu");
    let metal = Metal::builtin(metal_name)
        .ok_or_else(|| CliError::usage(format!("unknown metal `{metal_name}`")))?;
    let model = KorhonenModel::for_metal_name(metal_name).map_err(CliError::internal)?;
    let temperature = Celsius::new(parse_f64(opts, "temp-c", 100.0)?).to_kelvin();
    let netlist_options = NetlistTreeOptions {
        width: Length::from_micrometers(parse_f64(opts, "width-um", 0.5)?),
        thickness: Length::from_micrometers(parse_f64(opts, "thickness-um", 0.5)?),
        metal,
        temperature,
    };
    let horizon = Seconds::from_years(parse_f64(opts, "horizon-years", 10.0)?);
    let steady_only = flag_or(opts, "steady-only", "false") != "false";
    let sigma = parse_f64(opts, "sigma", 0.5)?;
    let quantile = parse_f64(opts, "quantile", 1e-3)?;

    let extracted = trees_from_netlist_text(&deck, &netlist_options).map_err(CliError::internal)?;
    if extracted.is_empty() {
        return Err(CliError::usage(format!(
            "{path} contains no resistor trees to assess"
        )));
    }
    let trees: Vec<_> = extracted.iter().map(|e| e.tree.clone()).collect();
    let steady = batch_steady_state(&trees, &model, true).map_err(CliError::internal)?;

    let mortal: Vec<usize> = (0..trees.len()).filter(|&i| !steady[i].immortal).collect();
    let mut outcomes = vec![None; trees.len()];
    if !steady_only && !mortal.is_empty() {
        let mortal_trees: Vec<_> = mortal.iter().map(|&i| trees[i].clone()).collect();
        let runs = batch_to_failure(
            &mortal_trees,
            &model,
            TransientOptions::for_horizon(horizon),
            true,
        )
        .map_err(CliError::internal)?;
        for (&i, o) in mortal.iter().zip(runs) {
            outcomes[i] = Some(o);
        }
    }

    println!(
        "{} tree(s) from {path} at {:.1} ({} horizon: {:.1} years)",
        trees.len(),
        temperature.to_celsius(),
        if steady_only {
            "filter only;"
        } else {
            "signoff"
        },
        horizon.to_years()
    );
    println!(
        "{:<16}{:>10}{:>16}{:>14}  {:>28}",
        "tree", "segments", "peak σ [MPa]", "immortal", "outcome"
    );
    let sigma_crit = model.critical_stress();
    let mut failures: Vec<Seconds> = Vec::new();
    let mut mortal_unresolved = 0usize;
    for ((e, s), o) in extracted.iter().zip(&steady).zip(&outcomes) {
        let outcome = match (s.immortal, o) {
            (true, _) => "below σ_crit forever".to_owned(),
            (false, None) => {
                mortal_unresolved += 1;
                format!("σ would reach {:.0} MPa", s.max_tensile.value() * 1e-6)
            }
            (false, Some(out)) => match (out.failure_time, out.nucleation_time) {
                (Some(t), _) => {
                    failures.push(t);
                    format!("fails at {}", format_horizon_time(t))
                }
                (None, Some(t)) => format!("void at {}, survives", format_horizon_time(t)),
                (None, None) => "no void within horizon".to_owned(),
            },
        };
        // Cathode = tree-local node where the steady tensile peak sits;
        // name it in netlist terms so the report is actionable.
        let peak_mpa = s.max_tensile.value() * 1e-6;
        println!(
            "{:<16}{:>10}{:>16.1}{:>14}  {:>28}",
            e.tree.name(),
            e.tree.segments().len(),
            peak_mpa,
            if s.immortal { "yes" } else { "no" },
            outcome
        );
    }
    println!(
        "σ_crit = {:.0} MPa ({}, Blech-calibrated at 100 °C)",
        sigma_crit.value() * 1e-6,
        metal_name
    );
    if !failures.is_empty() {
        let mut members = Vec::with_capacity(failures.len());
        for &t in &failures {
            members.push(
                hotwire::em::lifetime::LognormalLifetime::from_quantile(t, quantile, sigma)
                    .map_err(CliError::internal)?,
            );
        }
        let pop = hotwire::em::lifetime::WeakestLinkPopulation::new(members)
            .map_err(CliError::internal)?;
        let ttf = pop.time_to_fraction(quantile).map_err(CliError::internal)?;
        println!(
            "chip TTF = {} at the {quantile:.0e} failure quantile ({} failing tree(s))",
            format_horizon_time(ttf),
            failures.len()
        );
        return Err(CliError::violation(format!(
            "{} tree(s) fail within the {:.1}-year horizon",
            failures.len(),
            horizon.to_years()
        )));
    }
    if steady_only && mortal_unresolved > 0 {
        return Err(CliError::violation(format!(
            "{mortal_unresolved} tree(s) exceed σ_crit in steady state (run without \
             --steady-only for nucleation/growth times)"
        )));
    }
    println!("all trees survive the horizon");
    Ok(())
}

fn cmd_serve(opts: &Flags) -> Result<(), CliError> {
    let addr = flag_or(opts, "addr", "127.0.0.1:9184");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let threads = parse_f64(opts, "threads", 4.0)? as usize;
    // The per-request signoff grid defaults small (20×20) so a scrape
    // burst cannot wedge the server behind multi-second solves.
    let (spec, options) = coupled_setup(opts, 20.0)?;
    let config = hotwire::serve::ServeConfig {
        threads,
        spec,
        options,
        bundle_dir: opts.get("bundle-dir").cloned(),
    };
    // Validate the template eagerly: a bad grid should fail at startup
    // with a usage error, not 500 on the first POST.
    CoupledEngine::new(config.spec.clone(), config.options.clone()).map_err(coupled_error)?;
    let server = hotwire::serve::Server::bind(addr)
        .map_err(|e| CliError::context(format!("cannot bind {addr}"), e))?;
    let bound = server
        .local_addr()
        .map_err(|e| CliError::context("cannot read bound address", e))?;
    let stop = shutdown::install();
    shutdown::install_usr1();
    // On stdout (not a trace event) so scripts and the e2e test can
    // scrape the ephemeral port without parsing log formats.
    println!("listening on http://{bound} (/metrics /healthz POST /signoff)");
    server
        .run(&config, &stop)
        .map_err(|e| CliError::context("server failed", e))
}

fn cmd_simulate(opts: &Flags) -> Result<(), CliError> {
    let path = flag(opts, "netlist")?;
    let deck = std::fs::read_to_string(path)
        .map_err(|e| CliError::context(format!("cannot read {path}"), e))?;
    let parsed = hotwire::circuit::parser::parse_netlist(&deck).map_err(CliError::internal)?;
    let t_stop = flag(opts, "tstop")?
        .parse::<f64>()
        .map_err(|_| CliError::usage("--tstop must be a number in seconds"))?;
    let dt = match opts.get("dt") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| CliError::usage("--dt must be a number in seconds"))?,
        ),
    };
    let probes: Vec<String> = match opts.get("probe") {
        Some(list) => list.split(',').map(|s| s.trim().to_owned()).collect(),
        None => parsed.node_names(),
    };
    let mut probe_ids = Vec::new();
    for name in &probes {
        let id = parsed
            .node(name)
            .ok_or_else(|| CliError::usage(format!("netlist has no node `{name}`")))?;
        probe_ids.push(id);
    }
    let result = hotwire::circuit::transient::simulate(
        &parsed.circuit,
        t_stop,
        hotwire::circuit::transient::TransientOptions {
            dt,
            ..hotwire::circuit::transient::TransientOptions::default()
        },
    )
    .map_err(CliError::internal)?;
    println!("time_s,{}", probes.join(","));
    for (k, t) in result.times.iter().enumerate() {
        let mut row = format!("{t:.6e}");
        for &id in &probe_ids {
            row.push_str(&format!(",{:.6e}", result.voltage_at(id, k)));
        }
        println!("{row}");
    }
    Ok(())
}

fn cmd_techfile(opts: &Flags) -> Result<(), CliError> {
    let tech = load_tech(opts)?;
    print!("{}", techformat::serialize(&tech));
    Ok(())
}

/// `hotwire trace <capture>`: offline analyzer for a span trace
/// captured with `--trace-out` (either JSONL or Chrome format; the
/// parser auto-detects). Prints a self-time table, the slowest-child
/// critical path under each root span, and folded stacks; `--folded`
/// restricts the output to the folded lines so it pipes straight into
/// `inferno-flamegraph` / speedscope.
fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    use hotwire::obs::spantree::SpanTrace;

    let mut file: Option<&str> = None;
    let mut folded_only = false;
    let mut root = "coupled.iteration";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--folded" => {
                folded_only = true;
                i += 1;
            }
            "--critical-path" => {
                root = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::usage("--critical-path needs a span name"))?;
                i += 2;
            }
            // Already consumed by the subscriber setup in main().
            "--log-level" | "--log-format" => i += 2,
            other if other.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag `{other}` (trace takes --folded, --critical-path <name>)"
                )));
            }
            other => {
                if file.is_some() {
                    return Err(CliError::usage("trace takes exactly one capture file"));
                }
                file = Some(other);
                i += 1;
            }
        }
    }
    let path = file.ok_or_else(|| {
        CliError::usage("usage: hotwire trace <capture> [--folded] [--critical-path <name>]")
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::context(format!("cannot read {path}"), e))?;
    let trace = SpanTrace::parse(&text)
        .map_err(|e| CliError::usage(format!("{path} is not a span trace: {e}")))?;
    if trace.spans.is_empty() {
        return Err(CliError::usage(format!(
            "{path}: no spans captured{} — nothing to analyze",
            if trace.telemetry {
                ""
            } else {
                " (written by a no-telemetry build)"
            }
        )));
    }

    if folded_only {
        for (stack, us) in trace.folded() {
            println!("{stack} {us}");
        }
        return Ok(());
    }

    if !trace.telemetry {
        println!("(captured by a no-telemetry build: no spans recorded)");
    }
    let threads = {
        let mut tids: Vec<u64> = trace.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    };
    let wall_us = trace
        .spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .fold(0.0_f64, f64::max);
    println!(
        "{}: {} span(s) on {} thread(s), {:.2} ms wall",
        path,
        trace.spans.len(),
        threads,
        wall_us / 1e3
    );

    let summary = trace.self_time();
    if !summary.is_empty() {
        println!(
            "\n{:<34}{:>8}{:>14}{:>14}{:>8}",
            "span", "count", "total [ms]", "self [ms]", "self %"
        );
        let grand_self: f64 = summary.iter().map(|r| r.self_us).sum();
        for r in &summary {
            println!(
                "{:<34}{:>8}{:>14.3}{:>14.3}{:>8.1}",
                r.name,
                r.count,
                r.total_us / 1e3,
                r.self_us / 1e3,
                if grand_self > 0.0 {
                    100.0 * r.self_us / grand_self
                } else {
                    0.0
                }
            );
        }
    }

    let paths = trace.critical_paths(root);
    if paths.is_empty() {
        println!("\nno `{root}` spans for critical-path extraction");
    } else {
        println!("\ncritical path per `{root}` span (slowest child chain):");
        for p in &paths {
            let mut line = format!("  {} {:.3} ms", p.root.name, p.root.dur_us / 1e3);
            for (k, v) in &p.root.args {
                line.push_str(&format!(" [{k}={v}]"));
            }
            for s in &p.steps {
                line.push_str(&format!(" -> {} {:.3} ms", s.name, s.dur_us / 1e3));
            }
            println!("{line}");
        }
    }

    let folded = trace.folded();
    if !folded.is_empty() {
        println!("\nfolded stacks (pipe `hotwire trace <capture> --folded` into inferno):");
        for (stack, us) in folded {
            println!("{stack} {us}");
        }
    }
    Ok(())
}

/// `hotwire doctor <bundle>`: renders a diagnostic bundle written by
/// `--bundle-dir` (error exits, panics, serve 500s, SIGUSR1 snapshots)
/// as a human-readable post-mortem — header, health summary, event
/// timeline, failure classification, remediation hints.
fn cmd_doctor(args: &[String]) -> Result<(), CliError> {
    use hotwire::obs::health::ConvergenceClass;
    use hotwire::obs::HealthReport;

    let mut file: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Already consumed by the subscriber setup in main().
            "--log-level" | "--log-format" => i += 2,
            other if other.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag `{other}` (doctor takes one bundle file)"
                )));
            }
            other => {
                if file.is_some() {
                    return Err(CliError::usage("doctor takes exactly one bundle file"));
                }
                file = Some(other);
                i += 1;
            }
        }
    }
    let path = file.ok_or_else(|| CliError::usage("usage: hotwire doctor <bundle.json>"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::context(format!("cannot read {path}"), e))?;
    let doc = hotwire::obs::json::parse(&text)
        .map_err(|e| CliError::usage(format!("{path} is not a diagnostic bundle: {e}")))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != hotwire::obs::recorder::BUNDLE_SCHEMA {
        return Err(CliError::usage(format!(
            "{path}: schema `{schema}` is not `{}` — not a hotwire diagnostic bundle",
            hotwire::obs::recorder::BUNDLE_SCHEMA
        )));
    }

    let str_of = |key: &str| doc.get(key).and_then(Json::as_str).unwrap_or("?");
    let reason = str_of("reason");
    let detail = str_of("detail");
    println!("{path}: diagnostic bundle ({schema})");
    println!("  version:   hotwire {}", str_of("version"));
    println!("  reason:    {reason} — {detail}");
    if let Some(hash) = doc.get("spec_hash").and_then(Json::as_str) {
        println!("  spec hash: {hash}");
    }
    if let Some(ms) = doc.get("generated_unix_ms").and_then(Json::as_f64) {
        println!("  generated: {:.0} (unix ms)", ms);
    }
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .unwrap_or_default();
    let recorded = doc
        .get("recorded_events")
        .and_then(Json::as_u64)
        .unwrap_or(events.len() as u64);
    if recorded > events.len() as u64 {
        println!(
            "  events:    {} retained of {recorded} recorded (ring wrapped)",
            events.len()
        );
    } else {
        println!("  events:    {} recorded", events.len());
    }

    // The embedded health report, when the failing layer produced one.
    let health = doc
        .get("health")
        .and_then(|h| HealthReport::from_json(h).ok());
    if let Some(h) = &health {
        let opt = |v: Option<f64>| v.map_or_else(|| "—".to_owned(), |x| format!("{x:.3e}"));
        println!("\nnumerical health:");
        println!(
            "  picard:        {} (contraction {:.3}, {} iteration(s), last delta {:.3e} vs tolerance {:.3e})",
            h.picard.class.label(),
            h.picard.contraction,
            h.iterations,
            h.last_delta,
            h.tolerance
        );
        if let Some(n) = h.picard.predicted_iterations {
            println!("  predicted:     ~{n} more iteration(s) to converge at the fitted rate");
        }
        println!("  cond estimate: {}", opt(h.condition_estimate));
        println!("  residual:      {}", opt(h.residual_rel));
        println!("  kcl imbalance: {}", opt(h.kcl_imbalance_rel));
        println!("  pivot growth:  {}", opt(h.pivot_growth));
    }

    if !events.is_empty() {
        println!("\ntimeline (ms since first recorded event):");
        for e in events {
            let t = e.get("t_ms").and_then(Json::as_f64).unwrap_or(0.0);
            let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
            let d = e.get("detail").and_then(Json::as_str).unwrap_or("");
            println!("  [{t:>10.3}] {kind:<22} {d}");
        }
    }

    // Classification, most-specific signal first: a violation caused by
    // a diverging loop is a divergence, not "violation".
    let serve_errors = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.errors"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let class = health.as_ref().map(|h| h.picard.class);
    let ill_conditioned = health.as_ref().is_some_and(|h| {
        h.condition_estimate.is_some_and(|k| k > 1e12)
            || h.pivot_growth.is_some_and(|g| g > 1e8)
            || h.residual_rel.is_some_and(|r| r.is_nan() || r > 1e-6)
    });
    let (diagnosis, hints): (&str, Vec<String>) = if class == Some(ConvergenceClass::Diverging) {
        (
            "diverged",
            vec![
                "the Picard loop is moving away from its fixed point — the \
                 electro-thermal feedback is too strong for the current update"
                    .into(),
                "strengthen the damping: lower --damping (e.g. halve it) and rerun".into(),
                "if divergence persists at heavy damping, the operating point \
                 may be past thermal runaway — reduce --sink-ma or widen the grid"
                    .into(),
            ],
        )
    } else if ill_conditioned {
        (
            "ill-conditioned",
            vec![
                "the electrical system is near-singular: the condition estimate, \
                 pivot growth, or post-solve residual is far beyond healthy"
                    .into(),
                "grid is near-singular: check for floating nodes (sinks with no \
                 path to a pad) and zero-width straps"
                    .into(),
                "raise the gmin regularization or pin additional pads".into(),
            ],
        )
    } else if class == Some(ConvergenceClass::Oscillating) {
        (
            "oscillating",
            vec![
                "deltas alternate growth/shrink — the classic overshoot signature".into(),
                "lower --damping to suppress the overshoot".into(),
            ],
        )
    } else if class == Some(ConvergenceClass::Stagnated) {
        (
            "stagnated",
            vec![
                "deltas are flat; more iterations will not reach tolerance".into(),
                "relax --tol, or adjust --damping so the update makes progress".into(),
            ],
        )
    } else if reason == "violation" {
        let mut hints = vec![
            "the solve converged cleanly; the design itself fails its rules".into(),
            "this is a signoff result, not a numerical failure — see the \
             violation detail above"
                .into(),
        ];
        if let Some(h) = &health {
            if h.picard.class == ConvergenceClass::Converging {
                if let Some(n) = h.picard.predicted_iterations {
                    hints.push(format!(
                        "if the violation is `not converged`: raise --max-iters \
                         by at least {n} (the fitted rate predicts convergence)"
                    ));
                }
            }
        }
        ("signoff-violation", hints)
    } else if serve_errors > 0 && (reason == "sigusr1" || reason == "request-error") {
        (
            "load-shed",
            vec![
                format!("serve dropped or failed {serve_errors} request(s)"),
                "raise --threads, or slow the client; check the request \
                 timeline above for the failing endpoints"
                    .into(),
            ],
        )
    } else if reason == "sigusr1" {
        (
            "healthy-snapshot",
            vec!["operator-requested snapshot; no failure signal in the bundle".into()],
        )
    } else {
        (
            "internal",
            vec![
                "no numerical-health signal explains the failure".into(),
                "rerun with --log-level debug --log-format json and compare the \
                 stderr events against the timeline above"
                    .into(),
            ],
        )
    };
    println!("\ndiagnosis: {diagnosis}");
    for hint in &hints {
        println!("  - {hint}");
    }
    Ok(())
}
